//! Offline stand-in for the `serde` crate.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing actually serializes through serde (exports are
//! hand-rolled CSV in `spider-harness`). This stub therefore provides the
//! two traits as markers with blanket implementations, plus re-exports of
//! the no-op derive macros, so the annotations compile unchanged and the
//! real crate can be swapped back in by repointing the workspace
//! dependency.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::DeserializeOwned;
}
