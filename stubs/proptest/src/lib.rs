//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`any`],
//! integer/float range strategies, tuple strategies, the
//! `prop::collection::{vec, btree_map, hash_set}` combinators, and the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! per-case RNG; there is **no shrinking** — a failing case panics with
//! the case number so it can be replayed by re-running the test.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values; mirrors `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy; mirrors
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                rng.gen::<u64>() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`; mirrors `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::collections::{BTreeMap, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a size drawn from `size`.
    ///
    /// Key collisions may make the map smaller than the drawn size, as in
    /// real proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Strategy for `HashSet<T>` with a size drawn from `size`.
    ///
    /// Element collisions may make the set smaller than the drawn size.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut set = HashSet::new();
            for _ in 0..n {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// The glob-import surface; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the `proptest::prelude::prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> SmallRng {
    // Deterministic but test- and case-specific: hash the test name into
    // the seed so distinct properties explore distinct sequences.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Defines property tests; mirrors `proptest::proptest!` without
/// shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                let ($($arg,)+) = {
                    use $crate::Strategy as _;
                    ($(($strat).generate(&mut rng),)+)
                };
                $body
            }
        }
    )*};
}

/// Asserts a condition inside [`proptest!`]; panics on failure (no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside [`proptest!`]; panics on failure (no
/// shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside [`proptest!`]; panics on failure (no
/// shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..9),
            m in prop::collection::btree_map(0u32..50, any::<bool>(), 0..6),
            s in prop::collection::hash_set(0u32..50, 0..6),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(m.len() < 6);
            prop_assert!(s.len() < 6);
        }

        #[test]
        fn tuples_compose((a, b) in (0u8..10, any::<bool>()), c in any::<u64>()) {
            prop_assert!(a < 10);
            let _ = (b, c);
        }
    }

    // No `#![proptest_config]` — exercises the default-config macro arm.
    proptest! {
        #[test]
        fn default_macro_arm_without_config(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }
}
