//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`any`],
//! integer/float range strategies, tuple strategies, the
//! `prop::collection::{vec, btree_map, hash_set}` combinators, and the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! per-case RNG. When a case fails, a greedy halving shrinker reduces it
//! (bounded by an evaluation budget) and the test panics with the minimal
//! counterexample it found.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values; mirrors `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    /// Candidates strictly simpler than `value` that this strategy could
    /// itself have generated, in preference order (simplest first). The
    /// default is no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
            // Halve the distance to the range start; the greedy runner
            // re-halves from each failing candidate, so convergence is
            // O(log n) like real proptest's binary-search shrinker. The
            // `v - 1` candidate then walks to the exact failure boundary.
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let (lo, v) = (self.start as i128, *value as i128);
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let mid = lo + (v - lo) / 2;
                if mid > lo && mid < v {
                    out.push(mid as $ty);
                }
                if v - 1 > mid {
                    out.push((v - 1) as $ty);
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let (lo, v) = (self.start, *value);
        // partial_cmp so NaN (never greater) shrinks to nothing.
        if v.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        let mut out = vec![lo];
        let mid = lo + (v - lo) / 2.0;
        if mid > lo && mid < v {
            out.push(mid);
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            // Shrinks one component at a time, holding the others fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut tup = value.clone();
                        tup.$idx = cand;
                        out.push(tup);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy; mirrors
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut SmallRng) -> $ty {
                rng.gen::<u64>() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`; mirrors `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies; mirrors `proptest::collection`.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::collections::{BTreeMap, HashSet};
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        // Prefix-halving first (the cheapest big win), then dropping the
        // last element, then per-element shrinks with the length fixed.
        // All candidates respect the configured minimum length.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            if value.len() > self.len.start {
                let half = (value.len() / 2).max(self.len.start);
                if half < value.len() - 1 {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut smaller = value.clone();
                    smaller[i] = cand;
                    out.push(smaller);
                }
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a size drawn from `size`.
    ///
    /// Key collisions may make the map smaller than the drawn size, as in
    /// real proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Strategy for `HashSet<T>` with a size drawn from `size`.
    ///
    /// Element collisions may make the set smaller than the drawn size.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut set = HashSet::new();
            for _ in 0..n {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// The glob-import surface; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the `proptest::prelude::prop` re-export.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> SmallRng {
    // Deterministic but test- and case-specific: hash the test name into
    // the seed so distinct properties explore distinct sequences.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Identity helper that anchors the property closure's argument type to
/// the strategy's `Value` so the closure body type-checks (a bare
/// `|vals: &_| ...` would leave the parameter uninferred).
#[doc(hidden)]
pub fn __property<S: Strategy, F: Fn(&S::Value)>(_strat: &S, f: F) -> F {
    f
}

/// Greedy shrink: repeatedly replace the counterexample with its first
/// still-failing shrink candidate until none fails or the evaluation
/// budget runs out. Each candidate runs under `catch_unwind`, so "fails"
/// means "the property body panics on it".
#[doc(hidden)]
pub fn __shrink<S, F>(strat: &S, mut current: S::Value, run: &F) -> S::Value
where
    S: Strategy,
    F: Fn(&S::Value),
{
    let mut budget = 256u32;
    loop {
        let mut progressed = false;
        for cand in strat.shrink(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            let failed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&cand))).is_err();
            if failed {
                current = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Defines property tests; mirrors `proptest::proptest!`, including
/// shrinking of failing cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cfg: $crate::ProptestConfig = $cfg;
            let strat = ($(($strat),)+);
            let run = $crate::__property(&strat, |__vals| {
                let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                $body
            });
            for case in 0..cfg.cases {
                let mut rng = $crate::__case_rng(stringify!($name), case);
                let vals = strat.generate(&mut rng);
                let failed = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| run(&vals)),
                )
                .is_err();
                if failed {
                    let minimal = $crate::__shrink(&strat, vals, &run);
                    panic!(
                        "property {} failed on case {case}; minimal counterexample: {minimal:?}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside [`proptest!`]; a failure triggers
/// shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside [`proptest!`]; a failure triggers shrinking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside [`proptest!`]; a failure triggers
/// shrinking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..9),
            m in prop::collection::btree_map(0u32..50, any::<bool>(), 0..6),
            s in prop::collection::hash_set(0u32..50, 0..6),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(m.len() < 6);
            prop_assert!(s.len() < 6);
        }

        #[test]
        fn tuples_compose((a, b) in (0u8..10, any::<bool>()), c in any::<u64>()) {
            prop_assert!(a < 10);
            let _ = (b, c);
        }
    }

    // No `#![proptest_config]` — exercises the default-config macro arm.
    proptest! {
        #[test]
        fn default_macro_arm_without_config(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn int_shrink_converges_to_the_failure_boundary() {
        // Property "x < 17" first fails at 17; halving from 93 plus the
        // v-1 walk must land exactly on the boundary.
        let strat = (0u32..100,);
        let run = |v: &(u32,)| assert!(v.0 < 17);
        assert_eq!(crate::__shrink(&strat, (93,), &run).0, 17);
    }

    #[test]
    fn vec_shrink_minimises_length_then_elements() {
        // Any length-3 vec fails, so the minimal counterexample is the
        // shortest failing length with every element shrunk to zero.
        let strat = (prop::collection::vec(0u32..10, 0..20),);
        let run = |v: &(Vec<u32>,)| assert!(v.0.len() < 3);
        let minimal = crate::__shrink(&strat, (vec![9, 8, 7, 6, 5, 4],), &run).0;
        assert_eq!(minimal, vec![0, 0, 0]);
    }

    #[test]
    fn shrink_keeps_the_original_when_no_candidate_fails() {
        let strat = (0u32..100,);
        let run = |_: &(u32,)| {};
        assert_eq!(crate::__shrink(&strat, (42,), &run).0, 42);
    }

    // Deliberately failing property (no #[test] attribute, invoked
    // manually below): fails whenever x >= 5, so both components must
    // shrink — x to the boundary 5, the irrelevant pad to 0.
    proptest! {
        fn shrink_target(x in 0u64..1000, pad in 0u64..1000) {
            prop_assert!(x < 5 || pad > 10_000);
        }
    }

    #[test]
    fn failing_property_reports_minimal_counterexample() {
        let err = std::panic::catch_unwind(shrink_target).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload is a formatted String");
        assert!(msg.contains("minimal counterexample: (5, 0)"), "unexpected message: {msg}");
    }
}
