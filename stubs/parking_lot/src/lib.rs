//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (guards come back directly, not inside a `Result`). Poisoned locks are
//! unwrapped: a panic while holding a lock propagates on the next access,
//! which matches how the workspace uses locks (never across panics).

#![forbid(unsafe_code)]

use std::sync;

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned RwLock")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("poisoned RwLock")
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("poisoned RwLock")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("poisoned RwLock")
    }
}

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("poisoned Mutex")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("poisoned Mutex")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("poisoned Mutex")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }
}
