//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `bytes`: the cheaply
//! cloneable [`Bytes`] buffer, the growable [`BytesMut`] builder, and the
//! big-endian cursor traits [`Buf`] / [`BufMut`] — exactly the surface the
//! Spider crates use. Swap in the real crate by pointing the workspace
//! dependency at crates.io; no source changes are required.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(slice: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(slice) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Creates `Bytes` by copying a slice.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes { data: Arc::from(slice) }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Bytes {
        Bytes::from_static(slice)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes { data: Arc::from(b) }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; all integer accessors are big-endian and
/// advance the cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Current readable chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a byte sink; all integer writers are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xdead_beef);
        assert_eq!(cur.get_u64(), 42);
        assert_eq!(cur, b"xyz");
    }

    #[test]
    fn bytes_equality_and_clone_share() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, &[1, 2, 3][..]);
        assert_eq!(Bytes::from_static(b"ok").len(), 2);
    }
}
