//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API the workspace uses —
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen_bool` / `gen` — backed by
//! xoshiro256++ seeded through SplitMix64. Deterministic across platforms,
//! which the simulator relies on. Swap in the real crate by repointing the
//! workspace dependency; no source changes are required.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for generating typed values; mirrors rand 0.8.
pub trait Rng: RngCore {
    /// Generates a value uniformly distributed in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        distributions::unit_f64(self.next_u64()) < p
    }

    /// Generates a value via [`distributions::Standard`].
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform-range plumbing behind [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;
    use std::ops::Range;

    /// Maps a random word to `[0, 1)`.
    pub(crate) fn unit_f64(word: u64) -> f64 {
        // 53 high-quality mantissa bits.
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_sample_range {
        ($($ty:ty),*) => {$(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }
        )*};
    }

    int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "gen_range: empty range");
            self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
        }
    }

    /// Types producible by [`super::Rng::gen`].
    pub trait Standard {
        /// Samples a value with the standard distribution for the type.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
