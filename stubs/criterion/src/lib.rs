//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple wall-clock measurement loop
//! instead of criterion's statistical machinery. Results print as
//! `name    time: [median per iteration]` so `cargo bench` remains
//! useful; `cargo bench --no-run` compiles targets identically to the
//! real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, None, f);
        self
    }
}

/// A named group of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::with_capacity(samples), target: samples };
    f(&mut bencher);
    let mut per_iter: Vec<Duration> = bencher.samples;
    if per_iter.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median.as_nanos() > 0 => {
            let gib = b as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib:>8.3} GiB/s")
        }
        Some(Throughput::Elements(e)) if median.as_nanos() > 0 => {
            let meps = e as f64 / median.as_secs_f64() / 1e6;
            format!("  {meps:>8.3} Melem/s")
        }
        _ => String::new(),
    };
    println!("  {name:<40} time: [{median:>12.3?}]{rate}");
}

/// Times a closure; mirrors `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Measures `routine`, recording one timed sample per configured
    /// sample-count after a single warm-up call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a runnable group; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags such as `--bench`;
            // accept and ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_records() {
        benches();
    }
}
