//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` stub gives `Serialize` / `Deserialize` blanket
//! implementations for every type, so these derives have nothing to
//! generate — they only need to *exist* so `#[derive(Serialize)]` and
//! `#[derive(serde::Deserialize)]` attributes on workspace types parse and
//! expand. Each emits an empty token stream.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` stub's blanket impl covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` stub's blanket impl covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
