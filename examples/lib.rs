//! Shared helpers for the example binaries.
//!
//! The runnable examples live next to this file:
//!
//! * `quickstart` — smallest possible Spider deployment, a few writes,
//!   printed latencies.
//! * `paper_figures` — regenerates every figure of the paper's evaluation
//!   (set `SPIDER_QUICK=1` for a fast pass).
//! * `geo_kvstore` — a realistic geo-replicated key-value store with a
//!   mixed read/write workload and a runtime-added region.
//! * `fault_drill` — crashes the consensus leader, partitions a replica,
//!   and unleashes a Byzantine client, showing that service continues.

#![forbid(unsafe_code)]

use spider::Sample;
use spider_types::SimTime;

/// Formats a latency list as `p50/p90 (n)` for example output.
pub fn fmt_latencies(samples: &[Sample]) -> String {
    if samples.is_empty() {
        return "no samples".to_owned();
    }
    let mut lats: Vec<SimTime> = samples.iter().map(Sample::latency).collect();
    lats.sort();
    let p50 = lats[lats.len() / 2];
    let p90 = lats[(lats.len() * 9 / 10).min(lats.len() - 1)];
    format!(
        "p50 {:.1}ms  p90 {:.1}ms  ({} requests)",
        p50.as_millis_f64(),
        p90.as_millis_f64(),
        lats.len()
    )
}
