//! A realistic geo-replicated key-value store on Spider.
//!
//! Four regions serve a mixed workload (50 % writes, 30 % weak reads,
//! 20 % strong reads). Mid-run, business expands to São Paulo: an
//! execution group is added at runtime (§3.6) and new clients get local
//! read latency immediately.
//!
//! Run with: `cargo run -p spider_examples --example geo_kvstore`

use spider::execution::ExecutionReplica;
use spider::{DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_examples::fmt_latencies;
use spider_harness::ec2_topology;
use spider_sim::Simulation;
use spider_types::{OpKind, SimTime};

fn main() {
    let mut sim = Simulation::new(ec2_topology(), 7);
    let mut dep = DeploymentBuilder::new(SpiderConfig::default())
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("oregon")
        .execution_group("ireland")
        .execution_group("tokyo")
        .build(&mut sim);

    let mixed = WorkloadSpec {
        rate_per_sec: 3.0,
        payload_bytes: 200,
        write_fraction: 0.5,
        strong_read_fraction: 0.2,
        max_ops: 0,
        start_delay: SimTime::from_millis(200),
        op_factory: kv_op_factory(500),
    };
    let mut mixed_capped = mixed.clone();
    mixed_capped.max_ops = 60;
    for gi in 0..4 {
        dep.spawn_clients(&mut sim, gi, 3, mixed_capped.clone());
    }

    // Expansion: São Paulo goes live at t = 20s.
    dep.add_execution_group(&mut sim, "saopaulo", SimTime::from_secs(18));
    let sp = dep.groups.len() - 1;
    dep.spawn_clients(
        &mut sim,
        sp,
        3,
        WorkloadSpec { start_delay: SimTime::from_secs(20), max_ops: 40, ..mixed },
    );

    sim.run_until_quiescent(SimTime::from_secs(120));

    println!("geo_kvstore — per-region, per-operation latencies\n");
    let samples = dep.collect_samples(&sim);
    for gi in 0..dep.groups.len() {
        let (group, region, _) = dep.groups[gi].clone();
        let all: Vec<spider::Sample> = samples
            .iter()
            .filter(|(_, g, _)| *g == group)
            .flat_map(|(_, _, s)| s.iter().copied())
            .collect();
        println!("{region:>9}:");
        for (label, kind) in [
            ("writes", OpKind::Write),
            ("strong reads", OpKind::StrongRead),
            ("weak reads", OpKind::WeakRead),
        ] {
            let of_kind: Vec<spider::Sample> =
                all.iter().filter(|s| s.kind == kind).copied().collect();
            println!("  {label:>13}: {}", fmt_latencies(&of_kind));
        }
    }

    // Consistency check: replicas of one group agree bit-for-bit; across
    // groups the *map contents* agree (executed-ops counters may differ
    // because strong reads run only at their target group, §3.3).
    let mut group_ok = true;
    let mut map_digests = Vec::new();
    for gi in 0..4 {
        let digests: Vec<_> = dep
            .group_nodes(gi)
            .iter()
            .map(|n| sim.actor::<ExecutionReplica<KvStore>>(*n).app_digest())
            .collect();
        group_ok &= digests.windows(2).all(|w| w[0] == w[1]);
        map_digests.push(
            sim.actor::<ExecutionReplica<KvStore>>(dep.group_nodes(gi)[0]).app().map_digest(),
        );
    }
    let consistent = group_ok && map_digests.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nstate convergence across 12 replicas in 4 regions: {}",
        if consistent { "OK" } else { "DIVERGED (bug!)" }
    );
    let store = sim.actor::<ExecutionReplica<KvStore>>(dep.group_nodes(0)[0]).app();
    println!("keys stored: {}, operations applied: {}", store.len(), store.ops_applied);
    assert!(consistent);
}
