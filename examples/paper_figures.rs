//! Regenerates every figure of the paper's evaluation section and prints
//! the data as text tables/series.
//!
//! Run with: `cargo run --release -p spider_examples --example paper_figures`
//!
//! Environment:
//! * `SPIDER_QUICK=1` — small scale (~1 minute total).
//! * `SPIDER_OUT=<dir>` — additionally write one CSV per figure.
//! * default — moderate scale (a few minutes), closer to the paper's
//!   client counts.

use spider_harness::experiments::{fig10, fig11, fig7, fig8, fig9a, fig9bcd};
use spider_harness::scenarios::ScenarioCfg;
use spider_types::SimTime;

fn scale() -> (ScenarioCfg, fig10::Config, fig9bcd::Config) {
    let quick = std::env::var("SPIDER_QUICK").is_ok();
    if quick {
        (
            ScenarioCfg {
                clients_per_region: 3,
                rate_per_client: 2.0,
                duration: SimTime::from_secs(12),
                warmup: SimTime::from_secs(2),
                ..ScenarioCfg::default()
            },
            fig10::Config {
                clients_per_region: 3,
                duration: SimTime::from_secs(40),
                join_at: SimTime::from_secs(25),
                bucket: SimTime::from_secs(5),
                ..fig10::Config::default()
            },
            fig9bcd::Config { duration: SimTime::from_secs(3), ..fig9bcd::Config::default() },
        )
    } else {
        (
            ScenarioCfg {
                clients_per_region: 12,
                rate_per_client: 2.0,
                duration: SimTime::from_secs(30),
                warmup: SimTime::from_secs(4),
                ..ScenarioCfg::default()
            },
            fig10::Config::default(),
            fig9bcd::Config::default(),
        )
    }
}

fn main() {
    let (scenario, fig10_cfg, fig9bcd_cfg) = scale();
    let out_dir = std::env::var("SPIDER_OUT").ok();
    let write = |name: &str, csv: String| {
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create SPIDER_OUT dir");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, csv).expect("write csv");
            println!("wrote {path}");
        }
    };
    println!("Regenerating the paper's evaluation figures (simulated EC2)…\n");

    let rows = fig7::run(&fig7::Config { scenario: scenario.clone(), only: None });
    println!("{}", fig7::render(&rows));
    write("fig7_writes", spider_harness::export::latency_rows_to_csv(&rows));

    let result = fig8::run(&fig8::Config { scenario: scenario.clone() });
    println!("{}", fig8::render(&result));
    write("fig8a_strong_reads", spider_harness::export::latency_rows_to_csv(&result.strong));
    write("fig8b_weak_reads", spider_harness::export::latency_rows_to_csv(&result.weak));

    let rows = fig9a::run(&fig9a::Config { scenario: scenario.clone() });
    println!("{}", fig9a::render(&rows));
    write("fig9a_modularity", spider_harness::export::latency_rows_to_csv(&rows));

    let rows = fig9bcd::run(&fig9bcd_cfg);
    println!("{}", fig9bcd::render(&rows));
    write("fig9bcd_irmc", spider_harness::export::irmc_rows_to_csv(&rows));

    let result = fig10::run(&fig10_cfg);
    println!("{}", fig10::render(&result));
    write("fig10a_writes", spider_harness::export::series_to_csv(&result.writes));
    write("fig10b_weak_reads", spider_harness::export::series_to_csv(&result.weak_reads));

    let mut f11_scenario = scenario;
    f11_scenario.clients_per_region = f11_scenario.clients_per_region.min(6);
    let rows = fig11::run(&fig11::Config { scenario: f11_scenario });
    println!("{}", fig11::render(&rows));
    write("fig11_f2", spider_harness::export::latency_rows_to_csv(&rows));
}
