//! Runs the full disaster suite and prints the availability table:
//! correlated two-region outage, WAN partition with back-pressure and
//! drain, view-change storm, and the placement frontier (agreement host
//! × backup spread vs a region failure).
//!
//! Run with: `cargo run --release -p spider_examples --example disaster_suite`
//!
//! Environment:
//! * `SPIDER_QUICK=1` — the CI-scale clock (fault at 6 s, heal at 14 s,
//!   24 s of offered load).
//! * default — the full clock (fault at 8 s, heal at 18 s, 30 s of
//!   load), a few minutes of wall time.

use spider_harness::experiments::disaster;
use spider_types::SimTime;

fn scale() -> disaster::Config {
    if std::env::var("SPIDER_QUICK").is_ok() {
        disaster::Config {
            clients_per_region: 2,
            rate_per_client: 3.0,
            fault_at: SimTime::from_secs(6),
            heal_at: SimTime::from_secs(14),
            duration: SimTime::from_secs(24),
            ..disaster::Config::default()
        }
    } else {
        disaster::Config::default()
    }
}

fn main() {
    let cfg = scale();
    let rows = disaster::run(&cfg);
    println!("{}", disaster::render(&rows));
    println!(
        "reading the frontier: `unavl` is the longest gap in completed client \
         operations over the fault window; `recov` is how long after the heal \
         goodput took to return to 90% of pre-fault; `lost`/`dup` must be 0."
    );
}
