//! Fault drill: Spider under fire.
//!
//! While clients keep writing, this example
//! 1. crashes the consensus leader of the agreement group (view change
//!    happens entirely inside the Virginia region, §3.1),
//! 2. partitions an execution replica long enough that it misses the
//!    commit-channel window and must recover via checkpoint (§3.4),
//! 3. runs a Byzantine client that equivocates between replicas —
//!    blocked by the request channel without hurting anyone else (§3.7),
//! 4. takes the whole Tokyo region offline for six seconds (a
//!    correlated outage) and lets it catch back up.
//!
//! The drill is declared up front as a deterministic [`FaultPlan`]; the
//! run below merely narrates it as the scripted faults fire.
//!
//! Run with: `cargo run -p spider_examples --example fault_drill`

use spider::agreement::AgreementReplica;
use spider::execution::ExecutionReplica;
use spider::{ClientFault, DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_examples::fmt_latencies;
use spider_harness::ec2_topology;
use spider_sim::{FaultPlan, Simulation};
use spider_types::SimTime;

fn main() {
    let cfg = SpiderConfig {
        ke: 8,
        ka: 8,
        ag_win: 16,
        commit_capacity: 16,
        view_change_timeout: SimTime::from_millis(400),
        ..SpiderConfig::default()
    };

    let mut sim = Simulation::new(ec2_topology(), 99);
    let mut dep = DeploymentBuilder::new(cfg)
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(&mut sim);

    let workload = WorkloadSpec::writes_per_sec(5.0, 200)
        .with_max_ops(120)
        .with_op_factory(kv_op_factory(100));
    dep.spawn_clients(&mut sim, 0, 2, workload.clone());
    dep.spawn_clients(&mut sim, 1, 2, workload.clone());
    let byzantine = dep.spawn_clients_with_fault(
        &mut sim,
        0,
        1,
        WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(20),
        ClientFault::ConflictingRequests,
    );

    let leader = dep.agreement[0];
    let victim = dep.group_nodes(1)[1];
    sim.install_fault_plan(
        FaultPlan::new()
            .crash_replica(leader, SimTime::from_secs(2))
            .isolate_replica(victim, SimTime::from_secs(4), SimTime::from_secs(12))
            .region_outage("tokyo", SimTime::from_secs(14), SimTime::from_secs(20)),
    );

    sim.run_until(SimTime::from_secs(2));
    println!("t=2s   crashed agreement leader {leader:?}");
    sim.run_until(SimTime::from_secs(4));
    println!("t=4s   partitioned execution replica {victim:?} until t=12s");
    sim.run_until(SimTime::from_secs(14));
    println!("t=14s  tokyo region offline until t=20s (correlated outage)");

    sim.run_until_quiescent(SimTime::from_secs(90));

    println!("\nresults after the drill:");
    let view = sim.actor::<AgreementReplica>(dep.agreement[1]).view();
    println!("  consensus view: {view} (>= v1 means the leader was replaced)");
    for (id, group, samples) in dep.collect_samples(&sim) {
        if byzantine.contains(&dep.directory.client_node(id).unwrap()) {
            println!(
                "  byzantine client {id}: {} completed (expected 0 — isolated by the request channel)",
                samples.len()
            );
            continue;
        }
        let region = &dep.groups[group.0 as usize].1;
        println!("  client {id} ({region:>8}): {}", fmt_latencies(&samples));
    }

    // Convergence including the recovered victim.
    let reference = sim.actor::<ExecutionReplica<KvStore>>(dep.group_nodes(0)[0]).app_digest();
    let victim_digest = sim.actor::<ExecutionReplica<KvStore>>(victim).app_digest();
    println!(
        "  partitioned replica state: {}",
        if victim_digest == reference {
            "recovered via checkpoint, consistent"
        } else {
            "STILL DIVERGED"
        }
    );
    let victim_replica = sim.actor::<ExecutionReplica<KvStore>>(victim);
    println!(
        "  victim executed {} of {} requests (rest skipped via checkpoint)",
        victim_replica.executed,
        victim_replica.app().ops_applied
    );
    assert_eq!(victim_digest, reference);
}
