//! Quickstart: the smallest useful Spider deployment.
//!
//! Two cloud regions; the agreement group and one execution group live in
//! Virginia, a second execution group in Tokyo. One client per region
//! issues writes against a replicated key-value store.
//!
//! Run with: `cargo run -p spider_examples --example quickstart`

use spider::{DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_examples::fmt_latencies;
use spider_sim::{Simulation, Topology};
use spider_types::SimTime;

fn main() {
    // 1. Describe the world: regions, zones, link latencies.
    let topology = Topology::builder()
        .region("virginia", 4)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
        .build();
    let mut sim = Simulation::new(topology, 42);

    // 2. Deploy Spider: 4 agreement replicas (PBFT) in Virginia zones,
    //    3-replica execution groups in Virginia and Tokyo.
    let mut deployment = DeploymentBuilder::new(SpiderConfig::default())
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(&mut sim);

    // 3. Clients: one per region, 5 writes/s, 200-byte requests.
    let workload =
        WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(50).with_op_factory(kv_op_factory(100));
    deployment.spawn_clients(&mut sim, 0, 1, workload.clone());
    deployment.spawn_clients(&mut sim, 1, 1, workload);

    // 4. Run 30 simulated seconds.
    sim.run_until_quiescent(SimTime::from_secs(30));

    // 5. Report.
    println!("spider quickstart — write latencies\n");
    for (client, group, samples) in deployment.collect_samples(&sim) {
        let region = &deployment.groups[group.0 as usize].1;
        println!("  client {client} ({region:>8}): {}", fmt_latencies(&samples));
    }
    println!(
        "\nRequests ordered by the agreement group: {}",
        sim.actor::<spider::agreement::AgreementReplica>(deployment.agreement[0]).ordered
    );
    println!("Total simulated events processed: {}", sim.stats().total_events);
}
