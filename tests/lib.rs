//! Shared fixtures for the workspace-level integration tests (the actual
//! tests live in `tests/tests/`).

#![forbid(unsafe_code)]

use spider::{DeploymentBuilder, SpiderConfig};
use spider_app::KvStore;
use spider_harness::ec2_topology;
use spider_sim::Simulation;

/// Builds the canonical four-region Spider deployment over the kv store.
pub fn standard_deployment(
    seed: u64,
    cfg: SpiderConfig,
) -> (Simulation<spider::SpiderMsg>, spider::Deployment) {
    let mut sim = Simulation::new(ec2_topology(), seed);
    let dep = DeploymentBuilder::new(cfg)
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("oregon")
        .execution_group("ireland")
        .execution_group("tokyo")
        .build(&mut sim);
    (sim, dep)
}
