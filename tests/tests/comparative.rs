//! Cross-system integration: the same workload against Spider and every
//! baseline, verifying that all four architectures serve the identical
//! application correctly — and that the paper's headline latency ordering
//! holds on the full EC2 topology.

use spider::{SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_baselines::{BftDeployment, StewardDeployment};
use spider_harness::ec2_topology;
use spider_harness::stats::LatencySummary;
use spider_sim::Simulation;
use spider_tests::standard_deployment;
use spider_types::SimTime;

const REGIONS: [&str; 4] = ["virginia", "oregon", "ireland", "tokyo"];

fn workload(max_ops: u64) -> WorkloadSpec {
    WorkloadSpec::writes_per_sec(3.0, 200).with_max_ops(max_ops).with_op_factory(kv_op_factory(100))
}

#[test]
fn all_four_architectures_serve_the_same_workload() {
    // Spider.
    let (mut sim, mut dep) = standard_deployment(11, SpiderConfig::default());
    for gi in 0..4 {
        dep.spawn_clients(&mut sim, gi, 1, workload(10));
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let spider_total: usize = dep.collect_samples(&sim).iter().map(|(_, _, s)| s.len()).sum();

    // BFT.
    let mut sim = Simulation::new(ec2_topology(), 11);
    let mut bft = BftDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, KvStore::new);
    for region in REGIONS {
        bft.spawn_clients(&mut sim, region, 1, workload(10));
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let bft_total: usize = bft.collect_samples(&sim).iter().map(|(_, s)| s.len()).sum();

    // BFT-WV.
    let mut sim = Simulation::new(ec2_topology(), 11);
    let regions5 = ["virginia", "oregon", "ireland", "tokyo", "saopaulo"];
    let mut wv = BftDeployment::build_weighted(
        &mut sim,
        SpiderConfig::default(),
        &regions5,
        1,
        &[0, 1],
        KvStore::new,
    );
    for region in REGIONS {
        wv.spawn_clients(&mut sim, region, 1, workload(10));
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let wv_total: usize = wv.collect_samples(&sim).iter().map(|(_, s)| s.len()).sum();

    // HFT.
    let mut sim = Simulation::new(ec2_topology(), 11);
    let mut hft =
        StewardDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, 0, KvStore::new);
    for (si, region) in REGIONS.iter().enumerate() {
        hft.spawn_clients(&mut sim, si as u16, region, 1, workload(10));
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let hft_total: usize = hft.collect_samples(&sim).iter().map(|(_, _, s)| s.len()).sum();

    assert_eq!(spider_total, 40);
    assert_eq!(bft_total, 40);
    assert_eq!(wv_total, 40);
    assert_eq!(hft_total, 40);
}

#[test]
fn headline_latency_ordering_holds_per_region() {
    // Spider write latency <= HFT <= ~BFT for every client region with
    // leaders in Virginia (the paper's summary claim).
    let cfg = spider_harness::scenarios::ScenarioCfg {
        clients_per_region: 3,
        rate_per_client: 2.0,
        duration: SimTime::from_secs(15),
        warmup: SimTime::from_secs(2),
        ..spider_harness::scenarios::ScenarioCfg::default()
    };
    use spider_harness::scenarios::{run_scenario, SystemKind};
    let spider = run_scenario(SystemKind::Spider { leader_zone: 0 }, &cfg);
    let hft = run_scenario(SystemKind::Hft { leader_site: 0 }, &cfg);
    let bft = run_scenario(SystemKind::Bft { leader: 0 }, &cfg);
    for region in REGIONS {
        let s = LatencySummary::of_samples(&spider[region]).unwrap().p50_ms;
        let h = LatencySummary::of_samples(&hft[region]).unwrap().p50_ms;
        let b = LatencySummary::of_samples(&bft[region]).unwrap().p50_ms;
        assert!(s < h, "{region}: spider {s:.0} !< hft {h:.0}");
        assert!(s < b, "{region}: spider {s:.0} !< bft {b:.0}");
    }
}
