//! Dynamic determinism regression: the same seed must produce the exact
//! same execution, twice.
//!
//! The static `spider-analyzer` pass forbids the usual *sources* of
//! nondeterminism (hash-ordered containers, ambient time/randomness), but
//! it cannot prove their *absence* — a stray iteration-order dependency or
//! an unseeded tiebreak would slip through. This test catches what the
//! lint can't: it runs a mid-size scenario twice with an identical seed
//! and asserts that the full sample traces and simulator statistics are
//! byte-identical. Any divergence between the two runs is a determinism
//! bug by definition, regardless of where it crept in.

use spider::{SpiderConfig, WorkloadSpec};
use spider_app::kv_op_factory;
use spider_harness::experiments::disaster;
use spider_harness::scenarios::{run_scenario, run_scenario_obs, ScenarioCfg, SystemKind};
use spider_obs::causal;
use spider_tests::standard_deployment;
use spider_types::SimTime;

/// FNV-1a over a string: a stable digest for Debug-rendered traces.
fn digest(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario_cfg() -> ScenarioCfg {
    ScenarioCfg {
        clients_per_region: 5,
        rate_per_client: 3.0,
        duration: SimTime::from_secs(8),
        warmup: SimTime::from_secs(1),
        seed: 42,
        ..ScenarioCfg::default()
    }
}

/// Renders every (region, sample) pair of a scenario run.
fn render_run(kind: SystemKind) -> String {
    let samples = run_scenario(kind, &scenario_cfg());
    let mut out = String::new();
    for (region, samples) in &samples {
        for s in samples {
            out.push_str(region);
            out.push_str(&format!("{s:?}\n"));
        }
    }
    assert!(!out.is_empty(), "scenario produced no samples; the digest would be vacuous");
    out
}

#[test]
fn same_seed_same_sample_trace() {
    let a = render_run(SystemKind::Spider { leader_zone: 0 });
    let b = render_run(SystemKind::Spider { leader_zone: 0 });
    assert_eq!(digest(&a), digest(&b), "same seed, same scenario, different sample traces");
}

#[test]
fn same_seed_same_sim_stats() {
    // Lower-level double run over the raw deployment: compares the
    // simulator's own event/network/CPU counters, which cover everything
    // that happened — not only the client-visible samples.
    let run = || {
        let (mut sim, mut dep) = standard_deployment(1_117, SpiderConfig::default());
        let workload = WorkloadSpec::writes_per_sec(4.0, 200)
            .with_max_ops(40)
            .with_op_factory(kv_op_factory(100));
        for gi in 0..4 {
            dep.spawn_clients(&mut sim, gi, 2, workload.clone());
        }
        sim.run_until_quiescent(SimTime::from_secs(60));
        let samples: Vec<_> = dep.collect_samples(&sim);
        (format!("{:?}", sim.stats()), format!("{samples:?}"), sim.now())
    };
    let (stats_a, samples_a, now_a) = run();
    let (stats_b, samples_b, now_b) = run();
    assert_eq!(now_a, now_b, "same seed, different quiescence time");
    assert_eq!(digest(&samples_a), digest(&samples_b), "same seed, different samples");
    assert_eq!(digest(&stats_a), digest(&stats_b), "same seed, different sim stats");
}

#[test]
fn same_seed_same_obs_trace_digest() {
    // The observability recorder is itself part of the determinism
    // contract: two traced runs with the same seed must produce
    // byte-identical span streams, metrics, and CPU attribution. This is
    // what makes a recorded trace usable as a regression artifact.
    let traced = || {
        let (samples, obs) =
            run_scenario_obs(SystemKind::Spider { leader_zone: 0 }, &scenario_cfg());
        (format!("{samples:?}"), spider_obs::export::digest_render(&obs))
    };
    let (samples_a, trace_a) = traced();
    let (samples_b, trace_b) = traced();
    assert!(trace_a.contains("span "), "traced run recorded no spans; the digest would be vacuous");
    assert_eq!(digest(&trace_a), digest(&trace_b), "same seed, different observability traces");
    assert_eq!(
        digest(&samples_a),
        digest(&samples_b),
        "same seed, different samples under tracing"
    );

    // Tracing must observe, not participate: the client-visible samples
    // of a traced run match an untraced run of the same seed exactly.
    let plain = run_scenario(SystemKind::Spider { leader_zone: 0 }, &scenario_cfg());
    assert_eq!(
        digest(&format!("{plain:?}")),
        digest(&samples_a),
        "enabling the recorder changed the execution"
    );
}

#[test]
fn same_seed_same_forensics_artifacts() {
    // The derived forensics pipeline — causal DAG assembly, critical-path
    // extraction, differential cohort profiles, the exemplar reservoir,
    // and the health watchdog's typed event stream — must all be
    // deterministic functions of the run, or a recorded tail profile
    // could not be compared against a baseline. A shortened WAN-partition
    // disaster run exercises every one of them (the partition guarantees
    // at least one stall/recover pair in the watchdog stream).
    let cfg = disaster::Config {
        warmup: SimTime::from_secs(1),
        fault_at: SimTime::from_secs(4),
        heal_at: SimTime::from_secs(9),
        duration: SimTime::from_secs(16),
        ..disaster::Config::default()
    };
    let forensics = || {
        let (row, trace) = disaster::run_wan_partition_traced(&cfg);
        let paths = causal::assemble(&trace);
        let profiles = causal::differential_profile(&paths);
        (
            format!("{row:?}"),
            format!("{paths:?}\n{profiles:?}"),
            format!("{:?}", trace.exemplars),
            format!("{:?}", trace.health),
        )
    };
    let (row_a, paths_a, exemplars_a, health_a) = forensics();
    let (row_b, paths_b, exemplars_b, health_b) = forensics();
    assert!(paths_a.contains("RequestPath"), "traced run assembled no request paths");
    assert!(
        health_a.contains("IrmcWindowStall") && health_a.contains("IrmcWindowRecover"),
        "partition run produced no stall/recover pair; the watchdog digest would be vacuous"
    );
    assert_eq!(digest(&paths_a), digest(&paths_b), "same seed, different critical paths");
    assert_eq!(
        digest(&exemplars_a),
        digest(&exemplars_b),
        "same seed, different exemplar reservoir"
    );
    assert_eq!(digest(&health_a), digest(&health_b), "same seed, different watchdog events");
    assert_eq!(digest(&row_a), digest(&row_b), "same seed, different availability row");

    // The watchdog and causal recorder stay pure observers under fault
    // injection too: the untraced partition run's availability row is
    // byte-identical to the traced one.
    let plain = disaster::run_wan_partition(&cfg);
    assert_eq!(
        format!("{plain:?}"),
        row_a,
        "enabling the recorder changed the disaster run's outcome"
    );
}

#[test]
fn different_seed_actually_changes_the_trace() {
    // Sanity check that the digest is sensitive at all: two *different*
    // seeds must not collide on the full rendered trace (jitter and
    // client arrival times depend on the seed).
    let cfg_a = scenario_cfg();
    let cfg_b = ScenarioCfg { seed: 43, ..scenario_cfg() };
    let a = run_scenario(SystemKind::Spider { leader_zone: 0 }, &cfg_a);
    let b = run_scenario(SystemKind::Spider { leader_zone: 0 }, &cfg_b);
    assert_ne!(format!("{a:?}"), format!("{b:?}"), "seed change produced an identical trace");
}
