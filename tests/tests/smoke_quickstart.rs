//! Workspace smoke test: the `quickstart` example deployment, end to end.
//!
//! Mirrors `examples/quickstart.rs` — two regions, a Virginia agreement
//! group, execution groups in Virginia and Tokyo, one writing client per
//! region — and asserts the deployment actually completes requests. This
//! keeps the examples' deployment shape compiling and correct even though
//! the example binaries themselves are only built, not run, by CI.

use spider::{DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_examples::fmt_latencies;
use spider_sim::{Simulation, Topology};
use spider_types::SimTime;

#[test]
fn quickstart_deployment_completes_writes() {
    let topology = Topology::builder()
        .region("virginia", 4)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
        .build();
    let mut sim = Simulation::new(topology, 42);

    let mut deployment = DeploymentBuilder::new(SpiderConfig::default())
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(&mut sim);

    let workload =
        WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(50).with_op_factory(kv_op_factory(100));
    deployment.spawn_clients(&mut sim, 0, 1, workload.clone());
    deployment.spawn_clients(&mut sim, 1, 1, workload);

    sim.run_until_quiescent(SimTime::from_secs(30));

    let per_client = deployment.collect_samples(&sim);
    assert_eq!(per_client.len(), 2, "one sample set per client");
    for (client, group, samples) in &per_client {
        assert!(!samples.is_empty(), "client {client} of group {group:?} completed no requests");
        // Writes from the quickstart workload cross at most one WAN hop
        // chain; sanity-bound the latencies so a scheduling regression
        // (e.g. requests only completing at quiescence) is caught.
        for s in samples {
            let lat = s.latency();
            assert!(lat > SimTime::ZERO, "zero latency sample");
            assert!(lat < SimTime::from_secs(10), "implausible latency {lat}");
        }
        // The helper the examples use must render these samples.
        let rendered = fmt_latencies(samples);
        assert!(rendered.contains("requests"), "unexpected rendering: {rendered}");
    }

    let ordered = sim.actor::<spider::agreement::AgreementReplica>(deployment.agreement[0]).ordered;
    assert!(ordered >= 100, "agreement group ordered only {ordered} of 100 writes");
}
