//! Reconfiguration across the whole stack (§3.6): groups added and
//! removed at runtime while a kv workload runs.

use spider::execution::ExecutionReplica;
use spider::messages::{AdminCommand, SpiderMsg};
use spider::{Application, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_tests::standard_deployment;
use spider_types::{GroupId, SimTime};

#[test]
fn add_then_remove_group_mid_workload() {
    let (mut sim, mut dep) = standard_deployment(21, SpiderConfig::default());
    let workload =
        WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(60).with_op_factory(kv_op_factory(100));
    dep.spawn_clients(&mut sim, 0, 2, workload.clone());

    // Add a São Paulo group at t = 3s.
    let new_group = dep.add_execution_group(&mut sim, "saopaulo", SimTime::from_secs(3));
    sim.run_until(SimTime::from_secs(8));
    assert!(dep.directory.is_active(new_group));

    // New clients served locally.
    let gi = dep.groups.len() - 1;
    dep.spawn_clients(
        &mut sim,
        gi,
        1,
        WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(10).with_op_factory(kv_op_factory(100)),
    );
    sim.run_until(SimTime::from_secs(15));

    // Remove the group again: the admin submits RemoveGroup directly.
    let admin_zone = sim.zone_of(dep.agreement[0]);
    struct OneShotAdmin {
        directory: spider::Directory,
        group: GroupId,
    }
    impl spider_sim::Actor<SpiderMsg> for OneShotAdmin {
        fn on_start(&mut self, ctx: &mut spider_sim::Context<'_, SpiderMsg>) {
            ctx.set_timer(SimTime::from_millis(10), 1);
        }
        fn on_message(
            &mut self,
            _: &mut spider_sim::Context<'_, SpiderMsg>,
            _: spider_types::NodeId,
            _: SpiderMsg,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut spider_sim::Context<'_, SpiderMsg>, _: spider_sim::Timer) {
            for node in self.directory.agreement() {
                ctx.send(node, SpiderMsg::Admin(AdminCommand::RemoveGroup { group: self.group }));
            }
        }
    }
    sim.add_node(admin_zone, OneShotAdmin { directory: dep.directory.clone(), group: new_group });
    sim.run_until(SimTime::from_secs(18));
    assert!(!dep.directory.is_active(new_group), "RemoveGroup ordered and applied");

    // The original groups keep serving to completion.
    sim.run_until_quiescent(SimTime::from_secs(90));
    let samples = dep.collect_samples(&sim);
    let virginia_total: usize =
        samples.iter().filter(|(_, g, _)| g.0 == 0).map(|(_, _, s)| s.len()).sum();
    assert_eq!(virginia_total, 120, "both Virginia clients finished all writes");

    // Remaining groups stay convergent.
    let reference = sim.actor::<ExecutionReplica<KvStore>>(dep.group_nodes(0)[0]).app_digest();
    for gi in 0..4 {
        for node in dep.group_nodes(gi) {
            assert_eq!(sim.actor::<ExecutionReplica<KvStore>>(*node).app_digest(), reference);
        }
    }
}

#[test]
fn late_joining_group_converges_to_full_history() {
    let cfg =
        SpiderConfig { ke: 8, ka: 8, ag_win: 16, commit_capacity: 16, ..SpiderConfig::default() };
    let (mut sim, mut dep) = standard_deployment(22, cfg);
    let workload = WorkloadSpec::writes_per_sec(10.0, 200)
        .with_max_ops(80)
        .with_op_factory(kv_op_factory(100));
    dep.spawn_clients(&mut sim, 1, 2, workload);

    // Let a lot of history accumulate, then join.
    let new_group = dep.add_execution_group(&mut sim, "saopaulo", SimTime::from_secs(10));
    sim.run_until_quiescent(SimTime::from_secs(120));

    let reference = sim.actor::<ExecutionReplica<KvStore>>(dep.group_nodes(0)[0]).app_digest();
    let gi = dep.groups.iter().position(|(g, _, _)| *g == new_group).unwrap();
    for node in dep.group_nodes(gi) {
        let replica = sim.actor::<ExecutionReplica<Box<dyn Application>>>(*node);
        assert_eq!(
            replica.app_digest(),
            reference,
            "late group caught up via cross-group checkpoint + commit stream"
        );
        assert!(replica.executed < 160, "the late group must not re-execute the full history");
    }
}
