//! Workspace-level integration: Spider + key-value store + EC2 topology,
//! checking cross-crate behaviour the per-crate tests cannot: application
//! semantics through the full replication pipeline.

use bytes::Bytes;
use spider::execution::ExecutionReplica;
use spider::{SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvOp, KvStore};
use spider_tests::standard_deployment;
use spider_types::{OpKind, SimTime};

type ExecReplica = ExecutionReplica<KvStore>;

#[test]
fn kv_writes_survive_replication_and_all_groups_agree() {
    let (mut sim, mut dep) = standard_deployment(1, SpiderConfig::default());
    let workload =
        WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(25).with_op_factory(kv_op_factory(50));
    for gi in 0..4 {
        dep.spawn_clients(&mut sim, gi, 2, workload.clone());
    }
    sim.run_until_quiescent(SimTime::from_secs(60));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 8 * 25);

    // Twelve replicas in four regions converged to an identical store.
    let mut digests = Vec::new();
    for gi in 0..4 {
        for node in dep.group_nodes(gi) {
            digests.push(sim.actor::<ExecReplica>(*node).app_digest());
        }
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    let store = sim.actor::<ExecReplica>(dep.group_nodes(0)[0]).app();
    assert!(store.len() <= 50, "keys bounded by the key space");
    assert!(!store.is_empty());
}

#[test]
fn weak_reads_see_previously_acknowledged_writes() {
    // One client writes a key, then weak-reads it from the same group:
    // the read must return the written value (the group executed the
    // write before replying, so its replicas are up to date).
    let (mut sim, mut dep) = standard_deployment(2, SpiderConfig::default());
    let key = b"account-7";
    let value = vec![9u8; 32];
    let value_for_factory = value.clone();
    let workload = WorkloadSpec {
        rate_per_sec: 2.0,
        payload_bytes: 200,
        write_fraction: 0.0,
        strong_read_fraction: 0.0,
        max_ops: 5,
        start_delay: SimTime::from_secs(5), // reads start after the write
        op_factory: std::sync::Arc::new(move |_seq, _kind, _payload| {
            KvOp::get(b"account-7").encode()
        }),
    };
    // The writer: a single write at t ~= 0.2s.
    let writer = WorkloadSpec {
        rate_per_sec: 2.0,
        payload_bytes: 200,
        write_fraction: 1.0,
        strong_read_fraction: 0.0,
        max_ops: 1,
        start_delay: SimTime::from_millis(200),
        op_factory: std::sync::Arc::new(move |_seq, _kind, _payload| {
            KvOp::put(b"account-7", value_for_factory.clone()).encode()
        }),
    };
    dep.spawn_clients(&mut sim, 2, 1, writer);
    dep.spawn_clients(&mut sim, 2, 1, workload);
    sim.run_until_quiescent(SimTime::from_secs(30));

    let samples = dep.collect_samples(&sim);
    let reads: usize =
        samples.iter().flat_map(|(_, _, s)| s).filter(|s| s.kind == OpKind::WeakRead).count();
    assert_eq!(reads, 5);
    // And the value is in every replica of the reading group.
    for node in dep.group_nodes(2) {
        let store = sim.actor::<ExecReplica>(*node).app();
        assert_eq!(store.get(key), Some(&value[..]));
    }
}

#[test]
fn mixed_workload_with_strong_reads_completes() {
    let (mut sim, mut dep) = standard_deployment(3, SpiderConfig::default());
    let mixed = WorkloadSpec {
        rate_per_sec: 3.0,
        payload_bytes: 200,
        write_fraction: 0.4,
        strong_read_fraction: 0.3,
        max_ops: 20,
        start_delay: SimTime::from_millis(200),
        op_factory: kv_op_factory(20),
    };
    for gi in 0..4 {
        dep.spawn_clients(&mut sim, gi, 1, mixed.clone());
    }
    sim.run_until_quiescent(SimTime::from_secs(90));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 80);
    // All three kinds actually occurred.
    for kind in [OpKind::Write, OpKind::StrongRead, OpKind::WeakRead] {
        let n = samples.iter().flat_map(|(_, _, s)| s).filter(|s| s.kind == kind).count();
        assert!(n > 0, "no {kind} completed");
    }
}

#[test]
fn acknowledged_write_is_present_in_final_state() {
    // Linearizability spot check: any write a client saw acknowledged
    // must be reflected in the final converged state.
    let (mut sim, mut dep) = standard_deployment(4, SpiderConfig::default());
    let marker: Bytes = KvOp::put(b"marker", vec![1, 2, 3]).encode();
    let workload = WorkloadSpec {
        rate_per_sec: 5.0,
        payload_bytes: 200,
        write_fraction: 1.0,
        strong_read_fraction: 0.0,
        max_ops: 1,
        start_delay: SimTime::from_millis(100),
        op_factory: std::sync::Arc::new(move |_, _, _| marker.clone()),
    };
    dep.spawn_clients(&mut sim, 3, 1, workload); // from Tokyo
    sim.run_until_quiescent(SimTime::from_secs(30));
    let samples = dep.collect_samples(&sim);
    assert_eq!(samples[0].2.len(), 1, "write acknowledged");
    for gi in 0..4 {
        for node in dep.group_nodes(gi) {
            let store = sim.actor::<ExecReplica>(*node).app();
            assert_eq!(store.get(b"marker"), Some(&[1u8, 2, 3][..]), "write durable everywhere");
        }
    }
}
