//! Disaster-suite gates: scripted WAN disasters must never lose or
//! duplicate operations, must recover within a bounded time after the
//! heal, and must replay byte-identically under the same seed.
//!
//! These are the claims the paper's robustness story rests on (§3.4,
//! §3.5): commit channels stall instead of dropping, back-pressure
//! propagates instead of shedding load, and checkpoints repair lagging
//! groups after the network heals. The CI `disaster` job runs exactly
//! this file.

use spider_harness::experiments::disaster::{
    run_correlated_outage, run_placement, run_view_change_storm, run_wan_partition, Config,
};
use spider_types::SimTime;

/// Scaled-down scenario clock: fault at 6 s, heal at 14 s, offered load
/// for 24 s, then drain to quiescence.
fn test_cfg() -> Config {
    Config {
        clients_per_region: 2,
        rate_per_client: 3.0,
        fault_at: SimTime::from_secs(6),
        heal_at: SimTime::from_secs(14),
        duration: SimTime::from_secs(24),
        seed: 42,
        ..Config::default()
    }
}

/// FNV-1a over a string: a stable digest for Debug-rendered rows.
fn digest(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The CI-gated scenario: severing the agreement side from half the
/// execution groups at `z = 0` stalls everyone (back-pressure), yet
/// after the heal the backlog drains with zero lost ops, zero
/// duplicated ops, identical stores, and bounded recovery time.
#[test]
fn wan_partition_stalls_then_recovers_without_losing_ops() {
    let row = run_wan_partition(&test_cfg());
    assert_eq!(row.lost_ops, 0, "completed writes missing from the store: {row:?}");
    assert_eq!(row.duplicated_ops, 0, "operations executed twice: {row:?}");
    assert_eq!(row.diverged_replicas, 0, "stores did not converge: {row:?}");
    assert!(
        row.unavailability_ms >= 3_000.0,
        "z = 0 back-pressure should stall all clients for most of the \
         8 s partition, saw {} ms",
        row.unavailability_ms
    );
    let recovery = row.recovery_ms.expect("goodput never returned to 90% of pre-fault");
    assert!(recovery <= 10_000.0, "recovery took {recovery} ms (gate: 10 s)");
}

/// Two regions dark at once with `z = 2`: the surviving regions keep
/// committing through the outage, and the dead groups catch up after
/// the restore.
#[test]
fn correlated_outage_survivors_keep_committing() {
    let row = run_correlated_outage(&test_cfg());
    assert_eq!(row.lost_ops, 0, "{row:?}");
    assert_eq!(row.duplicated_ops, 0, "{row:?}");
    assert_eq!(row.diverged_replicas, 0, "dead groups failed to catch up: {row:?}");
    assert!(
        row.unavailability_ms < 4_000.0,
        "survivors should commit through the 8 s outage (z = 2), \
         but stalled for {} ms",
        row.unavailability_ms
    );
}

/// Repeated leader isolation at sub-timeout intervals: every act forces
/// a view change, and the system still drains cleanly.
#[test]
fn view_change_storm_rotates_leaders_and_drains() {
    let cfg = test_cfg();
    let row = run_view_change_storm(&cfg);
    assert!(
        row.final_view >= cfg.storm_acts as u64,
        "expected >= {} view changes, reached view {}",
        cfg.storm_acts,
        row.final_view
    );
    assert_eq!(row.lost_ops, 0, "{row:?}");
    assert_eq!(row.duplicated_ops, 0, "{row:?}");
    assert_eq!(row.diverged_replicas, 0, "{row:?}");
}

/// The placement frontier's headline shape: spreading execution-group
/// backups into neighbor regions keeps the system available through a
/// region failure that stalls the concentrated placement entirely.
#[test]
fn placement_spread_backups_dominate_concentrated_on_availability() {
    let cfg = test_cfg();
    let concentrated = run_placement(&cfg, 0, false);
    let spread = run_placement(&cfg, 0, true);
    for row in [&concentrated, &spread] {
        assert_eq!(row.lost_ops, 0, "{row:?}");
        assert_eq!(row.duplicated_ops, 0, "{row:?}");
        assert_eq!(row.diverged_replicas, 0, "{row:?}");
    }
    assert!(
        concentrated.unavailability_ms >= 4_000.0,
        "killing a concentrated group at z = 0 should stall everyone, \
         saw {} ms",
        concentrated.unavailability_ms
    );
    assert!(
        spread.unavailability_ms < concentrated.unavailability_ms,
        "spread ({} ms) should beat concentrated ({} ms)",
        spread.unavailability_ms,
        concentrated.unavailability_ms
    );
    assert!(
        spread.unavailability_ms < 2_000.0,
        "with fe + 1 surviving replicas the victim group's channel \
         advances and nobody stalls, saw {} ms",
        spread.unavailability_ms
    );
}

/// Determinism under fire: the same seed replays a full disaster
/// scenario to byte-identical rows.
#[test]
fn disaster_scenario_is_deterministic_across_runs() {
    let a = format!("{:?}", run_wan_partition(&test_cfg()));
    let b = format!("{:?}", run_wan_partition(&test_cfg()));
    assert!(!a.is_empty());
    assert_eq!(digest(&a), digest(&b), "same seed, different disaster: {a} vs {b}");
}
