//! Adaptive request batching for the consensus leader.
//!
//! The leader's batching policy is a first-order latency/throughput knob
//! (the paper's batch-size ablation): proposing every request in its own
//! instance wastes per-instance agreement work (n² votes, MAC vectors) at
//! high load, while waiting for large batches adds queueing delay at low
//! load. The [`Batcher`] closes a batch on whichever cap fires first:
//!
//! * **size cap** — at most `max_batch` payloads per batch,
//! * **byte cap** — at most `max_bytes` of payload wire bytes (a single
//!   oversized payload still ships alone),
//! * **delay cap** — no payload lingers more than `delay` past its
//!   enqueue time (the leader arms a linger timer for the oldest entry).
//!
//! With `delay == 0` the batcher degenerates to the legacy greedy cut
//! (`pending.len().min(max_batch)`, proposed immediately) — the default,
//! so existing deployments keep the legacy cut rule. (The replica still
//! gains propose-on-delivery pipelining on top, which only differs from
//! the legacy loop when the pipeline saturates.)
//!
//! In **adaptive** mode the batcher additionally tracks the request
//! arrival rate (an EWMA over inter-arrival gaps) and closes a batch as
//! soon as it reaches the *expected* number of arrivals within one linger
//! window (`rate · delay`, clamped to `[1, max_batch]`). At low load the
//! target collapses to 1 and requests propose immediately (minimal
//! latency); at high load it grows toward `max_batch` so instances
//! amortize their fixed agreement cost (maximal throughput). The linger
//! timer bounds the worst case either way.

use spider_types::{SimTime, WireSize};
use std::collections::VecDeque;

/// Policy knobs of a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatcherConfig {
    /// Maximum payloads per batch.
    pub max_batch: usize,
    /// Maximum payload wire bytes per batch (an oversized single payload
    /// still ships alone).
    pub max_bytes: usize,
    /// Maximum time a payload may linger in the queue before it is
    /// proposed. Zero = propose immediately (legacy greedy batching).
    pub delay: SimTime,
    /// Rate-adaptive target sizing (see [`Batcher`]).
    pub adaptive: bool,
}

/// Smoothing factor of the inter-arrival EWMA (dimensionless, `0..1`;
/// larger = faster adaptation).
const RATE_ALPHA: f64 = 0.2;

/// Headroom multiplier on the adaptive size target. Cutting at exactly
/// the expected arrivals-per-linger-window would race the linger timer
/// (and lose: batches would close one request early); 2× headroom lets
/// the linger bound the common case while backlog bursts — e.g. the queue
/// that builds while the pipeline is full — still cut immediately.
const TARGET_HEADROOM: f64 = 2.0;

#[derive(Debug)]
struct Entry<P> {
    payload: P,
    bytes: usize,
    enqueued: SimTime,
}

/// Leader-side payload queue with size/byte/delay-capped batch cuts.
///
/// Sans-IO like the rest of the crate: the owner asks [`Batcher::ready`]
/// whether a batch should close now, [`Batcher::take`] to cut one, and
/// [`Batcher::deadline`] for the instant at which the oldest queued
/// payload must be flushed (to arm a linger timer).
#[derive(Debug)]
pub struct Batcher<P> {
    cfg: BatcherConfig,
    queue: VecDeque<Entry<P>>,
    queued_bytes: usize,
    /// EWMA of inter-arrival gaps in nanoseconds (`None` until two
    /// arrivals have been observed).
    ewma_gap_ns: Option<f64>,
    last_arrival: Option<SimTime>,
}

impl<P: WireSize> Batcher<P> {
    /// Creates an empty batcher with the given policy.
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.max_bytes >= 1, "max_bytes must be at least 1");
        Batcher {
            cfg,
            queue: VecDeque::new(),
            queued_bytes: 0,
            ewma_gap_ns: None,
            last_arrival: None,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &BatcherConfig {
        &self.cfg
    }

    /// Number of queued payloads.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total wire bytes of all queued payloads.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Enqueues a payload at `now` and updates the arrival-rate estimate.
    pub fn push(&mut self, now: SimTime, payload: P) {
        if let Some(last) = self.last_arrival {
            // Same-instant bursts count as a (near) zero gap, which pulls
            // the estimated rate up sharply — exactly what a burst means.
            let gap = now.saturating_sub(last).as_nanos() as f64;
            self.ewma_gap_ns = Some(match self.ewma_gap_ns {
                Some(ewma) => (1.0 - RATE_ALPHA) * ewma + RATE_ALPHA * gap,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
        self.requeue(now, payload);
    }

    /// Enqueues a payload *without* touching the arrival-rate estimate.
    /// For re-queuing requests that were already counted when they first
    /// arrived — e.g. re-proposal after a view change, which would
    /// otherwise look like a same-instant burst and inflate the adaptive
    /// target.
    pub fn requeue(&mut self, now: SimTime, payload: P) {
        let bytes = payload.wire_size();
        self.queued_bytes += bytes;
        self.queue.push_back(Entry { payload, bytes, enqueued: now });
    }

    /// Estimated arrival rate in payloads per second (0 until measurable).
    pub fn arrival_rate_per_sec(&self) -> f64 {
        match self.ewma_gap_ns {
            Some(gap) if gap > 0.0 => 1e9 / gap,
            Some(_) => f64::INFINITY,
            None => 0.0,
        }
    }

    /// The batch size the policy currently aims for: `max_batch` when not
    /// adaptive, else the expected number of arrivals within one linger
    /// window, clamped to `[1, max_batch]`.
    pub fn target_len(&self) -> usize {
        if !self.cfg.adaptive {
            return self.cfg.max_batch;
        }
        let expected = self.arrival_rate_per_sec() * self.cfg.delay.as_secs_f64() * TARGET_HEADROOM;
        if !expected.is_finite() {
            return self.cfg.max_batch;
        }
        (expected.ceil() as usize).clamp(1, self.cfg.max_batch)
    }

    /// The instant at which the oldest queued payload must be flushed
    /// (`None` when empty).
    pub fn deadline(&self) -> Option<SimTime> {
        self.queue.front().map(|e| e.enqueued + self.cfg.delay)
    }

    /// Whether a batch should close at `now`: any of the size, byte, or
    /// delay caps (or the adaptive target) has been reached.
    pub fn ready(&self, now: SimTime) -> bool {
        let Some(front) = self.queue.front() else {
            return false;
        };
        if self.cfg.delay == SimTime::ZERO {
            return true;
        }
        self.queue.len() >= self.target_len()
            || self.queued_bytes >= self.cfg.max_bytes
            || now >= front.enqueued + self.cfg.delay
    }

    /// Cuts one batch off the queue front, respecting the size and byte
    /// caps. Returns an empty batch when the queue is empty.
    pub fn take(&mut self) -> Vec<P> {
        let mut batch = Vec::new();
        let mut bytes = 0usize;
        while let Some(front) = self.queue.front() {
            if batch.len() >= self.cfg.max_batch {
                break;
            }
            if !batch.is_empty() && bytes + front.bytes > self.cfg.max_bytes {
                break;
            }
            let e = self.queue.pop_front().expect("front checked");
            bytes += e.bytes;
            self.queued_bytes -= e.bytes;
            batch.push(e.payload);
        }
        batch
    }

    /// Drops all queued payloads (used when a view change supersedes the
    /// leader's queue). The rate estimate survives — load did not change
    /// just because leadership did.
    pub fn clear(&mut self) {
        self.queue.clear();
        self.queued_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Sized(usize);

    impl WireSize for Sized {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    fn cfg(max_batch: usize, max_bytes: usize, delay_ms: u64, adaptive: bool) -> BatcherConfig {
        BatcherConfig { max_batch, max_bytes, delay: SimTime::from_millis(delay_ms), adaptive }
    }

    #[test]
    fn zero_delay_is_greedy() {
        let mut b = Batcher::new(cfg(8, 1 << 20, 0, false));
        assert!(!b.ready(SimTime::ZERO));
        b.push(SimTime::ZERO, Sized(10));
        assert!(b.ready(SimTime::ZERO), "greedy mode proposes immediately");
        assert_eq!(b.take().len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn size_cap_closes_batch() {
        let mut b = Batcher::new(cfg(3, 1 << 20, 50, false));
        let t = SimTime::from_millis(1);
        for _ in 0..2 {
            b.push(t, Sized(10));
        }
        assert!(!b.ready(t), "below size cap and before deadline");
        b.push(t, Sized(10));
        assert!(b.ready(t), "size cap reached");
        assert_eq!(b.take().len(), 3);
    }

    #[test]
    fn byte_cap_closes_and_splits_batches() {
        let mut b = Batcher::new(cfg(100, 100, 50, false));
        let t = SimTime::from_millis(1);
        for _ in 0..4 {
            b.push(t, Sized(40));
        }
        assert!(b.ready(t), "byte cap reached");
        let batch = b.take();
        assert_eq!(batch.len(), 2, "40 + 40 fits, third would exceed 100");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn oversized_payload_ships_alone() {
        let mut b = Batcher::new(cfg(8, 100, 50, false));
        b.push(SimTime::ZERO, Sized(500));
        b.push(SimTime::ZERO, Sized(10));
        assert!(b.ready(SimTime::ZERO));
        let batch = b.take();
        assert_eq!(batch, vec![Sized(500)]);
        assert_eq!(b.take(), vec![Sized(10)]);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let mut b = Batcher::new(cfg(8, 1 << 20, 10, false));
        let t0 = SimTime::from_millis(5);
        b.push(t0, Sized(10));
        assert_eq!(b.deadline(), Some(SimTime::from_millis(15)));
        assert!(!b.ready(SimTime::from_millis(14)));
        assert!(b.ready(SimTime::from_millis(15)), "delay cap fires");
        assert_eq!(b.take().len(), 1);
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn adaptive_target_tracks_rate() {
        // 1 request per ms, linger 8 ms -> 8 expected arrivals per linger
        // window, times the 2x headroom -> target 16.
        let mut b = Batcher::new(cfg(64, 1 << 20, 8, true));
        for k in 0..50u64 {
            b.push(SimTime::from_millis(k), Sized(10));
            let _ = b.take(); // keep the queue short; we only train the rate
        }
        let rate = b.arrival_rate_per_sec();
        assert!((rate - 1000.0).abs() < 1.0, "rate ≈ 1000/s, got {rate}");
        assert_eq!(b.target_len(), 16);
    }

    #[test]
    fn adaptive_low_load_proposes_immediately() {
        // One request every 100 ms, linger 5 ms -> expected arrivals < 1,
        // so a single request is already a full batch.
        let mut b = Batcher::new(cfg(64, 1 << 20, 5, true));
        for k in 0..10u64 {
            b.push(SimTime::from_millis(k * 100), Sized(10));
            assert!(b.ready(SimTime::from_millis(k * 100)), "target is 1 at low load");
            let _ = b.take();
        }
    }

    #[test]
    fn adaptive_high_load_waits_for_target() {
        let mut b = Batcher::new(cfg(64, 1 << 20, 8, true));
        // Train: 1 req/ms.
        for k in 0..50u64 {
            b.push(SimTime::from_millis(k), Sized(10));
            let _ = b.take();
        }
        // Now a single queued request is NOT ready before its deadline…
        let t = SimTime::from_millis(60);
        b.push(t, Sized(10));
        assert!(!b.ready(t), "target is {} at high load", b.target_len());
        // …but the linger deadline still bounds its wait.
        assert!(b.ready(t + SimTime::from_millis(8)));
    }

    #[test]
    fn requeue_does_not_train_the_rate_estimate() {
        let mut b = Batcher::new(cfg(64, 1 << 20, 5, true));
        // Train a low rate: one arrival every 100 ms.
        for k in 0..10u64 {
            b.push(SimTime::from_millis(k * 100), Sized(10));
            let _ = b.take();
        }
        let rate = b.arrival_rate_per_sec();
        // A view change dumps a backlog in at one instant…
        for _ in 0..10 {
            b.requeue(SimTime::from_secs(2), Sized(10));
        }
        // …without making the batcher believe load spiked.
        assert_eq!(b.arrival_rate_per_sec(), rate);
        assert_eq!(b.len(), 10);
    }

    #[test]
    fn clear_empties_queue_but_keeps_rate() {
        let mut b = Batcher::new(cfg(8, 1 << 20, 10, true));
        b.push(SimTime::from_millis(0), Sized(10));
        b.push(SimTime::from_millis(1), Sized(10));
        let rate = b.arrival_rate_per_sec();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.queued_bytes(), 0);
        assert_eq!(b.arrival_rate_per_sec(), rate);
    }
}
