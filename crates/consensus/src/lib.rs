//! PBFT consensus: the agreement black-box of the Spider architecture.
//!
//! The paper treats consensus as a replaceable black-box with a small
//! interface (`order`, `deliver`, `gc` — appendix Fig 12) and four required
//! properties: A-Safety, A-Liveness, A-Validity, and A-Order (§A.4.2). This
//! crate implements that black-box with PBFT [Castro & Liskov, OSDI '99]:
//!
//! * three-phase normal operation (pre-prepare / prepare / commit) with
//!   request batching and pipelining — the leader's [`Batcher`] closes
//!   batches on size, byte, or linger-delay caps and can adapt its batch
//!   size to the measured arrival rate (see the [`batcher`](Batcher)
//!   docs), while up to `pipeline_depth` instances run concurrently,
//! * view changes with prepared-certificate carryover, so a faulty leader
//!   is replaced without losing agreed requests,
//! * external garbage collection: the host's checkpoint component calls
//!   [`Pbft::gc`], matching the paper's design where checkpointing lives
//!   outside the consensus black-box,
//! * **weighted voting**: quorums are weight sums, enabling the BFT-WV
//!   baseline (WHEAT-style weights) with the exact same code path.
//!
//! The implementation is *sans-IO*: a [`Pbft`] consumes `(now, input)` and
//! appends [`Output`]s (sends, deliveries, timer ops, CPU charges) to a
//! caller-provided buffer. Hosts decide how outputs reach the network —
//! in this workspace, via `spider-sim` actors.
//!
//! # Authentication
//!
//! Replica-to-replica messages are authenticated with HMAC MAC vectors in
//! the paper; the CPU and byte costs of those MACs are charged via
//! [`Output::Charge`] and the message [`WireSize`]s. Validating *client*
//! authentication is the host's job before ordering a payload
//! (A-Validity) — in Spider the request channel has already enforced that
//! `fe + 1` execution replicas vouch for each request.
//!
//! # Examples
//!
//! Driving a four-replica group to order one payload (see
//! `tests/cluster.rs` for the full in-memory harness):
//!
//! ```
//! use spider_consensus::{Pbft, PbftConfig, Input, Output, TestPayload};
//! use spider_types::SimTime;
//!
//! let cfg = PbftConfig::new(1); // f = 1 -> n = 4
//! let mut replicas: Vec<Pbft<TestPayload>> =
//!     (0..4).map(|i| Pbft::new(cfg.clone(), i)).collect();
//! let mut out = Vec::new();
//! let now = SimTime::ZERO;
//! for r in &mut replicas {
//!     r.handle(now, Input::Order(TestPayload(7)), &mut out);
//! }
//! // The leader (replica 0) has broadcast a PrePrepare.
//! assert!(out.iter().any(|o| matches!(o, Output::Send { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod config;
mod messages;
mod replica;

pub use batcher::{Batcher, BatcherConfig};
pub use config::PbftConfig;
pub use messages::{Msg, NewViewMsg, PreparedCert, ViewChangeMsg};
pub use replica::{Input, Output, Pbft, TimerToken};

use spider_crypto::{Digest, Digestible};
use spider_types::WireSize;

/// A unit of content the agreement black-box can order.
///
/// Payloads must be cheaply cloneable (wrap big content in `Arc`/`Bytes`),
/// comparable, sized for the wire, and hashable to a content [`Digest`]
/// (via [`Digestible`]). Implemented automatically for any type with those
/// capabilities.
pub trait Payload: Digestible + Clone + PartialEq + std::fmt::Debug + WireSize + 'static {}

impl<T: Digestible + Clone + PartialEq + std::fmt::Debug + WireSize + 'static> Payload for T {}

/// Minimal payload for tests and examples: a `u64` op identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TestPayload(pub u64);

impl WireSize for TestPayload {
    fn wire_size(&self) -> usize {
        spider_types::wire::HEADER_BYTES + 8
    }
}

impl Digestible for TestPayload {
    fn digest(&self) -> Digest {
        Digest::builder().str("test-payload").u64(self.0).finish()
    }
}

/// Computes the digest of a batch of payloads (order-sensitive).
pub fn batch_digest<P: Payload>(batch: &[P]) -> Digest {
    let mut b = Digest::builder().str("batch").u64(batch.len() as u64);
    for p in batch {
        b = b.digest(&p.digest());
    }
    b.finish()
}
