//! The PBFT replica state machine (sans-IO).

use crate::batcher::Batcher;
use crate::config::PbftConfig;
use crate::messages::{Msg, NewViewMsg, PreparedCert, ViewChangeMsg};
use crate::{batch_digest, Payload};
use spider_crypto::Digest;
use spider_types::{SeqNr, SimTime, ViewNr};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Identifies one of a replica's logical timers.
///
/// Setting a timer with a token that is already armed *replaces* the
/// previous deadline (the host implements the replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Periodic leader-progress check.
pub const TOKEN_PROGRESS: TimerToken = TimerToken(0);
/// View-change completion timeout.
pub const TOKEN_VIEW_CHANGE: TimerToken = TimerToken(1);
/// Batch linger: fires when the oldest queued payload reaches the
/// configured `batch_delay` and must be proposed.
pub const TOKEN_BATCH: TimerToken = TimerToken(2);

/// Inputs the host feeds into the state machine.
#[derive(Debug, Clone)]
pub enum Input<P> {
    /// Request ordering of a payload (Fig 12 `order`). Call on **every**
    /// correct replica: the leader proposes it, followers use it to monitor
    /// the leader.
    Order(P),
    /// A protocol message from group member `from`.
    Message {
        /// Sender's index within the group.
        from: usize,
        /// The message.
        msg: Msg<P>,
    },
    /// A previously set timer fired.
    Timer(TimerToken),
}

/// Effects the state machine asks the host to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum Output<P> {
    /// Send `msg` to group member `to`.
    Send {
        /// Destination replica index.
        to: usize,
        /// The message.
        msg: Msg<P>,
    },
    /// Deliver an ordered batch (Fig 12 `deliver`): in instance order,
    /// without gaps except across [`Pbft::gc`] boundaries.
    Deliver {
        /// Consensus instance number.
        seq: SeqNr,
        /// The ordered batch; empty = no-op instance.
        batch: Vec<P>,
    },
    /// (Re-)arm the timer identified by `token`.
    SetTimer {
        /// Timer identity.
        token: TimerToken,
        /// Delay from now.
        delay: SimTime,
    },
    /// Disarm a timer.
    CancelTimer {
        /// Timer identity.
        token: TimerToken,
    },
    /// Charge CPU cost to the hosting node.
    Charge(SimTime),
    /// The view changed; emitted after a new view is installed.
    ViewChanged {
        /// The newly installed view.
        view: ViewNr,
        /// Its leader's replica index.
        leader: usize,
    },
    /// The replica had to skip instances up to and including `to` during a
    /// view change because a quorum had already garbage-collected them.
    /// The host must fetch an agreement checkpoint covering `to`.
    Skipped {
        /// Highest skipped instance.
        to: SeqNr,
    },
}

#[derive(Debug)]
struct Instance<P> {
    view: ViewNr,
    digest: Option<Digest>,
    /// The proposed batch, shared with the PrePrepare broadcast so the
    /// hot path never copies payloads.
    batch: Option<Arc<Vec<P>>>,
    /// Prepare-phase votes: replica index -> digest voted for. The leader's
    /// pre-prepare counts as its prepare vote.
    prepares: BTreeMap<usize, Digest>,
    commits: BTreeMap<usize, Digest>,
    prepared: bool,
    committed: bool,
}

impl<P> Instance<P> {
    fn new() -> Self {
        Instance {
            view: ViewNr(0),
            digest: None,
            batch: None,
            prepares: BTreeMap::new(),
            commits: BTreeMap::new(),
            prepared: false,
            committed: false,
        }
    }
}

/// A PBFT replica: the paper's agreement black-box (appendix Fig 12).
///
/// See the [crate documentation](crate) for the interface contract and an
/// example.
pub struct Pbft<P> {
    cfg: PbftConfig,
    me: usize,
    view: ViewNr,
    /// Instances `<= h` are forgotten (decided & garbage-collected).
    h: u64,
    /// Next instance number the leader will propose.
    next_seq: u64,
    /// Next instance to deliver.
    next_deliver: u64,
    instances: BTreeMap<u64, Instance<P>>,
    /// Leader-side queue of payloads awaiting proposal, with the
    /// size/byte/delay-capped (optionally rate-adaptive) cut policy.
    batcher: Batcher<P>,
    /// Digests of everything queued in the batcher (dedup).
    pending_digests: BTreeSet<Digest>,
    /// Deadline of the armed batch linger timer, if any.
    batch_timer_deadline: Option<SimTime>,
    /// All undelivered payloads this replica has seen, for re-proposal
    /// after a view change.
    pool: BTreeMap<Digest, P>,
    /// Digest -> time first seen; used to monitor leader progress.
    watching: BTreeMap<Digest, SimTime>,
    /// Recently delivered digests (suppresses re-ordering). Bounded FIFO:
    /// old entries age out instead of being dropped wholesale at gc, so a
    /// retried request cannot be ordered twice right after a gc.
    recently_delivered: BTreeSet<Digest>,
    recently_delivered_order: VecDeque<Digest>,
    in_view_change: bool,
    vc_target: ViewNr,
    vc_attempts: u32,
    /// View-change votes per target view, per sender.
    vc_msgs: BTreeMap<u64, BTreeMap<usize, ViewChangeMsg<P>>>,
    /// Highest view for which this replica already announced a NewView.
    announced_new_view: Option<ViewNr>,
    progress_timer_armed: bool,
    /// Normal-case messages buffered during a view change / for future
    /// views, drained after installation.
    stashed: VecDeque<(usize, Msg<P>)>,
}

impl<P: Payload> Pbft<P> {
    /// Creates replica `me` of a fresh group.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the configured group size.
    pub fn new(cfg: PbftConfig, me: usize) -> Self {
        assert!(me < cfg.n(), "replica index out of range");
        let batcher = Batcher::new(cfg.batcher_config());
        Pbft {
            cfg,
            me,
            view: ViewNr(0),
            h: 0,
            next_seq: 1,
            next_deliver: 1,
            instances: BTreeMap::new(),
            batcher,
            pending_digests: BTreeSet::new(),
            batch_timer_deadline: None,
            pool: BTreeMap::new(),
            watching: BTreeMap::new(),
            recently_delivered: BTreeSet::new(),
            recently_delivered_order: VecDeque::new(),
            in_view_change: false,
            vc_target: ViewNr(0),
            vc_attempts: 0,
            vc_msgs: BTreeMap::new(),
            announced_new_view: None,
            progress_timer_armed: false,
            stashed: VecDeque::new(),
        }
    }

    /// Current view.
    pub fn view(&self) -> ViewNr {
        self.view
    }

    /// Index of the current leader.
    pub fn leader(&self) -> usize {
        self.cfg.leader_of(self.view.0)
    }

    /// Whether this replica currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me && !self.in_view_change
    }

    /// Whether a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Next instance number that will be delivered.
    pub fn next_deliver(&self) -> SeqNr {
        SeqNr(self.next_deliver)
    }

    /// Garbage-collect all state for instances `< before` (Fig 12 `gc`).
    /// After this call no instance `< before` will be delivered.
    pub fn gc(&mut self, before: SeqNr) {
        let keep_from = before.0;
        if keep_from == 0 {
            return;
        }
        self.h = self.h.max(keep_from - 1);
        self.instances.retain(|&s, _| s >= keep_from);
        self.next_deliver = self.next_deliver.max(keep_from);
        self.next_seq = self.next_seq.max(keep_from);
    }

    /// Feeds one input; effects are appended to `out`.
    pub fn handle(&mut self, now: SimTime, input: Input<P>, out: &mut Vec<Output<P>>) {
        let mut charge = self.cfg.cost.msg_overhead();
        match input {
            Input::Order(p) => self.on_order(now, p, out, &mut charge),
            Input::Message { from, msg } => {
                if from >= self.cfg.n() || from == self.me {
                    // Malformed sender index: drop.
                } else {
                    self.on_message(now, from, msg, out, &mut charge);
                }
            }
            Input::Timer(token) => self.on_timer(now, token, out, &mut charge),
        }
        if charge > SimTime::ZERO {
            out.push(Output::Charge(charge));
        }
    }

    fn on_order(&mut self, now: SimTime, p: P, out: &mut Vec<Output<P>>, charge: &mut SimTime) {
        let d = p.digest();
        *charge += self.cfg.cost.hmac(p.wire_size());
        if self.recently_delivered.contains(&d) || self.pool.contains_key(&d) {
            return;
        }
        self.pool.insert(d, p.clone());
        self.watching.entry(d).or_insert(now);
        self.arm_progress_timer(out);
        if self.is_leader() {
            if self.pending_digests.insert(d) {
                self.batcher.push(now, p);
            }
            self.try_propose(now, out, charge);
        }
    }

    /// Whether another instance may be proposed: the pipelining window
    /// (`pipeline_depth` proposed-but-undelivered instances) has a free
    /// slot and the watermark window is not exhausted.
    fn has_pipeline_slot(&self) -> bool {
        self.next_seq - self.next_deliver < self.cfg.pipeline_depth as u64
            && self.next_seq <= self.h + self.cfg.window
    }

    /// Proposes as many batches as the batching policy releases and the
    /// pipelining window admits, then (re-)arms the batch linger timer.
    fn try_propose(&mut self, now: SimTime, out: &mut Vec<Output<P>>, charge: &mut SimTime) {
        if self.is_leader() {
            while self.has_pipeline_slot() && self.batcher.ready(now) {
                let mut batch = self.batcher.take();
                // A payload queued here before a demotion may have been
                // ordered by another leader in the meantime; proposing it
                // again would deliver it twice.
                batch.retain(|p| {
                    let d = p.digest();
                    self.pending_digests.remove(&d);
                    !self.recently_delivered.contains(&d)
                });
                if batch.is_empty() {
                    continue;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                let digest = batch_digest(&batch);
                let batch = Arc::new(batch);
                *charge += self.cfg.cost.hmac(batch.iter().map(|p| p.wire_size()).sum());
                *charge +=
                    self.cfg.cost.mac_vector(self.cfg.n() - 1, spider_types::wire::DIGEST_BYTES);

                let inst = self.instances.entry(seq).or_insert_with(Instance::new);
                inst.view = self.view;
                inst.digest = Some(digest);
                inst.batch = Some(batch.clone());
                inst.prepares.insert(self.me, digest);

                self.broadcast(out, Msg::PrePrepare { view: self.view, seq: SeqNr(seq), batch });
            }
        }
        self.update_batch_timer(now, out);
    }

    /// Keeps the linger timer aligned with the oldest queued payload's
    /// flush deadline. Armed only while proposing is actually possible;
    /// when the pipeline is full, delivery of an instance re-triggers
    /// proposing (and re-arming) instead.
    fn update_batch_timer(&mut self, now: SimTime, out: &mut Vec<Output<P>>) {
        let want = if self.is_leader()
            && self.has_pipeline_slot()
            && !self.batcher.is_empty()
            && !self.batcher.ready(now)
        {
            // !ready implies the deadline is in the future.
            self.batcher.deadline()
        } else {
            None
        };
        if want == self.batch_timer_deadline {
            return;
        }
        self.batch_timer_deadline = want;
        match want {
            Some(d) => {
                out.push(Output::SetTimer { token: TOKEN_BATCH, delay: d.saturating_sub(now) })
            }
            None => out.push(Output::CancelTimer { token: TOKEN_BATCH }),
        }
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: usize,
        msg: Msg<P>,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        // MAC verification cost for every received protocol message.
        *charge += self.cfg.cost.hmac(spider_types::wire::DIGEST_BYTES);
        match msg {
            Msg::PrePrepare { view, seq, batch } => {
                self.on_pre_prepare(now, from, view, seq, batch, out, charge)
            }
            Msg::Prepare { view, seq, digest } => {
                self.on_vote(now, from, view, seq, digest, false, out, charge)
            }
            Msg::Commit { view, seq, digest } => {
                self.on_vote(now, from, view, seq, digest, true, out, charge)
            }
            Msg::ViewChange(vc) => self.on_view_change_msg(now, from, vc, out, charge),
            Msg::NewView(nv) => self.on_new_view(now, from, nv, out, charge),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_pre_prepare(
        &mut self,
        now: SimTime,
        from: usize,
        view: ViewNr,
        seq: SeqNr,
        batch: Arc<Vec<P>>,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if self.should_stash(view) {
            self.stash(from, Msg::PrePrepare { view, seq, batch });
            return;
        }
        if view != self.view || from != self.leader() {
            return;
        }
        let seq = seq.0;
        if seq <= self.h || seq > self.h + self.cfg.window {
            return;
        }
        let digest = batch_digest(batch.as_slice());
        *charge += self.cfg.cost.hmac(batch.iter().map(|p| p.wire_size()).sum());

        let me = self.me;
        let inst = self.instances.entry(seq).or_insert_with(Instance::new);
        if inst.digest.is_some() && inst.view == view {
            // Duplicate or equivocating pre-prepare: keep the first.
            return;
        }
        inst.view = view;
        inst.digest = Some(digest);
        inst.batch = Some(batch);
        inst.prepares.insert(from, digest);
        inst.prepares.insert(me, digest);

        // Watch the proposal so a leader that stalls before commit is
        // still detected.
        self.watching.entry(digest).or_insert(now);
        self.arm_progress_timer(out);

        *charge += self.cfg.cost.mac_vector(self.cfg.n() - 1, spider_types::wire::DIGEST_BYTES);
        self.broadcast(out, Msg::Prepare { view, seq: SeqNr(seq), digest });
        self.check_progress(now, seq, out, charge);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_vote(
        &mut self,
        now: SimTime,
        from: usize,
        view: ViewNr,
        seq: SeqNr,
        digest: Digest,
        is_commit: bool,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if self.should_stash(view) {
            let msg = if is_commit {
                Msg::Commit { view, seq, digest }
            } else {
                Msg::Prepare { view, seq, digest }
            };
            self.stash(from, msg);
            return;
        }
        if view != self.view {
            return;
        }
        let seq = seq.0;
        if seq <= self.h || seq > self.h + self.cfg.window {
            return;
        }
        let inst = self.instances.entry(seq).or_insert_with(Instance::new);
        if is_commit {
            inst.commits.insert(from, digest);
        } else {
            inst.prepares.insert(from, digest);
        }
        self.check_progress(now, seq, out, charge);
    }

    /// Advances an instance through prepared -> committed -> delivered.
    fn check_progress(
        &mut self,
        now: SimTime,
        seq: u64,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        let quorum = self.cfg.quorum_weight;
        let me = self.me;
        let view = self.view;
        let Some(inst) = self.instances.get_mut(&seq) else {
            return;
        };
        let Some(digest) = inst.digest else {
            return;
        };
        if inst.view != view {
            return;
        }

        if !inst.prepared {
            let weight: u32 = inst
                .prepares
                .iter()
                .filter(|(_, d)| **d == digest)
                .map(|(i, _)| self.cfg.weight(*i))
                .sum();
            if weight >= quorum {
                inst.prepared = true;
                inst.commits.insert(me, digest);
                *charge +=
                    self.cfg.cost.mac_vector(self.cfg.n() - 1, spider_types::wire::DIGEST_BYTES);
                self.broadcast(out, Msg::Commit { view, seq: SeqNr(seq), digest });
            }
        }

        let Some(inst) = self.instances.get_mut(&seq) else {
            return;
        };
        if inst.prepared && !inst.committed {
            let weight: u32 = inst
                .commits
                .iter()
                .filter(|(_, d)| **d == digest)
                .map(|(i, _)| self.cfg.weight(*i))
                .sum();
            if weight >= quorum {
                inst.committed = true;
            }
        }
        self.try_deliver(now, out, charge);
    }

    fn try_deliver(&mut self, now: SimTime, out: &mut Vec<Output<P>>, charge: &mut SimTime) {
        let mut delivered_any = false;
        while let Some(inst) = self.instances.get(&self.next_deliver) {
            if !inst.committed {
                break;
            }
            let batch: Vec<P> = inst.batch.as_ref().map(|b| (**b).clone()).unwrap_or_default();
            for p in &batch {
                let d = p.digest();
                self.pool.remove(&d);
                self.watching.remove(&d);
                if self.recently_delivered.insert(d) {
                    self.recently_delivered_order.push_back(d);
                    const RECENT_CAP: usize = 16_384;
                    if self.recently_delivered_order.len() > RECENT_CAP {
                        if let Some(old) = self.recently_delivered_order.pop_front() {
                            self.recently_delivered.remove(&old);
                        }
                    }
                }
            }
            if let Some(d) = inst.digest {
                self.watching.remove(&d);
            }
            out.push(Output::Deliver { seq: SeqNr(self.next_deliver), batch });
            self.next_deliver += 1;
            delivered_any = true;
        }
        if self.watching.is_empty() && self.progress_timer_armed {
            self.progress_timer_armed = false;
            out.push(Output::CancelTimer { token: TOKEN_PROGRESS });
        }
        // Delivery frees pipeline slots: keep the pipeline saturated
        // instead of waiting for the next Order input.
        if delivered_any && self.is_leader() && !self.batcher.is_empty() {
            self.try_propose(now, out, charge);
        }
    }

    // ------------------------------------------------------------------
    // View changes
    // ------------------------------------------------------------------

    fn arm_progress_timer(&mut self, out: &mut Vec<Output<P>>) {
        if !self.progress_timer_armed && !self.watching.is_empty() {
            self.progress_timer_armed = true;
            out.push(Output::SetTimer {
                token: TOKEN_PROGRESS,
                delay: self.cfg.view_change_timeout / 2,
            });
        }
    }

    fn on_timer(
        &mut self,
        now: SimTime,
        token: TimerToken,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        match token {
            TOKEN_PROGRESS => {
                self.progress_timer_armed = false;
                if self.in_view_change {
                    return;
                }
                let timeout = self.cfg.view_change_timeout;
                let stalled = self
                    .watching
                    .values()
                    .any(|first_seen| now.saturating_sub(*first_seen) >= timeout);
                if stalled {
                    let target = self.view.next();
                    self.start_view_change(now, target, out, charge);
                } else if !self.watching.is_empty() {
                    self.progress_timer_armed = true;
                    out.push(Output::SetTimer { token: TOKEN_PROGRESS, delay: timeout / 2 });
                }
            }
            TOKEN_VIEW_CHANGE if self.in_view_change => {
                // The view change itself stalled: escalate.
                let target = self.vc_target.next();
                self.start_view_change(now, target, out, charge);
            }
            TOKEN_BATCH => {
                self.batch_timer_deadline = None;
                if !self.in_view_change {
                    // Linger expired: flush whatever is queued.
                    self.try_propose(now, out, charge);
                }
            }
            _ => {}
        }
    }

    fn prepared_certs(&self) -> Vec<PreparedCert<P>> {
        self.instances
            .iter()
            .filter(|(_, inst)| inst.prepared)
            .filter_map(|(&seq, inst)| {
                Some(PreparedCert {
                    seq: SeqNr(seq),
                    view: inst.view,
                    digest: inst.digest?,
                    batch: inst.batch.as_ref().map(|b| (**b).clone())?,
                })
            })
            .collect()
    }

    fn start_view_change(
        &mut self,
        now: SimTime,
        target: ViewNr,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if target <= self.view {
            return;
        }
        self.in_view_change = true;
        self.vc_target = target;
        self.vc_attempts += 1;
        // Signed message: expensive.
        *charge += self.cfg.cost.rsa_sign();
        let vc = ViewChangeMsg {
            new_view: target,
            h: SeqNr(self.h),
            prepared: self.prepared_certs(),
            sender: self.me,
        };
        self.vc_msgs.entry(target.0).or_default().insert(self.me, vc.clone());
        self.broadcast(out, Msg::ViewChange(vc.clone()));
        let backoff = self.cfg.view_change_timeout * (1u64 << self.vc_attempts.min(10));
        out.push(Output::SetTimer { token: TOKEN_VIEW_CHANGE, delay: backoff });
        // The new leader processes its own view-change vote.
        self.maybe_announce_new_view(now, target, out, charge);
    }

    /// Sum of the `f` largest weights: the maximum voting weight Byzantine
    /// replicas can control.
    fn max_faulty_weight(&self) -> u32 {
        let mut w = self.cfg.weights.clone();
        w.sort_unstable_by(|a, b| b.cmp(a));
        w.iter().take(self.cfg.f).sum()
    }

    fn on_view_change_msg(
        &mut self,
        now: SimTime,
        from: usize,
        vc: ViewChangeMsg<P>,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if vc.sender != from || vc.new_view <= self.view {
            return;
        }
        // Signature verification on the view change message.
        *charge += self.cfg.cost.rsa_verify();
        let target = vc.new_view;
        let votes = self.vc_msgs.entry(target.0).or_default();
        votes.insert(from, vc);

        // Join rule: if more voting weight than the adversary can control
        // asks for a higher view, a correct replica must be among them.
        if !self.in_view_change || target > self.vc_target {
            let weight: u32 = votes.keys().map(|i| self.cfg.weight(*i)).sum();
            if weight > self.max_faulty_weight() {
                self.start_view_change(now, target, out, charge);
            }
        }
        self.maybe_announce_new_view(now, target, out, charge);
    }

    fn maybe_announce_new_view(
        &mut self,
        now: SimTime,
        target: ViewNr,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if self.cfg.leader_of(target.0) != self.me {
            return;
        }
        if self.announced_new_view.is_some_and(|v| v >= target) {
            return;
        }
        let Some(votes) = self.vc_msgs.get(&target.0) else {
            return;
        };
        let weight: u32 = votes.keys().map(|i| self.cfg.weight(*i)).sum();
        if weight < self.cfg.quorum_weight {
            return;
        }
        let vcs: Vec<ViewChangeMsg<P>> = votes.values().cloned().collect();
        self.announced_new_view = Some(target);
        *charge += self.cfg.cost.rsa_sign();
        self.broadcast(out, Msg::NewView(NewViewMsg { view: target, vcs: vcs.clone() }));
        self.install_new_view(now, target, &vcs, out, charge);
    }

    fn on_new_view(
        &mut self,
        now: SimTime,
        from: usize,
        nv: NewViewMsg<P>,
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        if nv.view <= self.view || from != self.cfg.leader_of(nv.view.0) {
            return;
        }
        // Verify the signatures of all carried view changes.
        *charge += self.cfg.cost.rsa_verify() * (nv.vcs.len() as u64 + 1);
        let mut seen = BTreeSet::new();
        let weight: u32 = nv
            .vcs
            .iter()
            .filter(|vc| vc.new_view == nv.view && seen.insert(vc.sender))
            .map(|vc| self.cfg.weight(vc.sender))
            .sum();
        if weight < self.cfg.quorum_weight {
            return;
        }
        self.install_new_view(now, nv.view, &nv.vcs, out, charge);
    }

    /// Deterministically computes re-proposals from a view-change quorum and
    /// installs the new view. Every correct replica computes the identical
    /// result, so the new leader does not need to send explicit
    /// pre-prepares for carried-over instances.
    fn install_new_view(
        &mut self,
        now: SimTime,
        view: ViewNr,
        vcs: &[ViewChangeMsg<P>],
        out: &mut Vec<Output<P>>,
        charge: &mut SimTime,
    ) {
        // Horizon: everything at or below the highest gc-horizon in the
        // quorum counts as decided system-wide.
        let start = vcs.iter().map(|vc| vc.h.0).max().unwrap_or(0);
        // Best prepared certificate per instance above the horizon.
        let mut best: BTreeMap<u64, &PreparedCert<P>> = BTreeMap::new();
        for vc in vcs {
            for cert in &vc.prepared {
                if cert.seq.0 <= start {
                    continue;
                }
                // Validate the certificate's internal consistency.
                if batch_digest(&cert.batch) != cert.digest {
                    continue;
                }
                let entry = best.entry(cert.seq.0);
                entry
                    .and_modify(|old| {
                        if cert.view > old.view {
                            *old = cert;
                        }
                    })
                    .or_insert(cert);
            }
        }
        let max_seq = best.keys().next_back().copied().unwrap_or(start);

        // If the quorum's horizon is ahead of us, we missed deliveries; the
        // host must fetch a checkpoint (Output::Skipped).
        if start >= self.next_deliver {
            self.instances.retain(|&s, _| s > start);
            self.h = self.h.max(start);
            self.next_deliver = start + 1;
            // Everything this replica was tracking predates the skip: the
            // requests were most likely decided in the skipped range.
            // Dropping them prevents (a) stale watching entries triggering
            // endless view changes and (b) re-proposing already-decided
            // requests if this replica later becomes leader. Liveness is
            // preserved by the other correct replicas' copies and client
            // retransmissions.
            self.pool.clear();
            self.batcher.clear();
            self.pending_digests.clear();
            self.watching.clear();
            out.push(Output::Skipped { to: SeqNr(start) });
        }
        self.h = self.h.max(start);

        self.view = view;
        self.in_view_change = false;
        self.vc_attempts = 0;
        self.vc_msgs.retain(|&v, _| v > view.0);
        out.push(Output::CancelTimer { token: TOKEN_VIEW_CHANGE });
        out.push(Output::ViewChanged { view, leader: self.cfg.leader_of(view.0) });

        // Re-propose carried-over instances (and no-ops for gaps) in the
        // new view, as if fresh pre-prepares had arrived.
        let leader = self.cfg.leader_of(view.0);
        let me = self.me;
        for seq in (start + 1)..=max_seq {
            let (digest, batch) = match best.get(&seq) {
                Some(cert) => (cert.digest, cert.batch.clone()),
                None => {
                    let empty: Vec<P> = Vec::new();
                    (batch_digest(&empty), empty)
                }
            };
            let inst = self.instances.entry(seq).or_insert_with(Instance::new);
            if inst.committed && inst.view < view {
                // Already committed in an earlier view; keep it (safety
                // guarantees the digest matches).
                continue;
            }
            inst.view = view;
            inst.digest = Some(digest);
            inst.batch = Some(Arc::new(batch));
            inst.prepared = false;
            inst.committed = false;
            inst.prepares = BTreeMap::from([(leader, digest), (me, digest)]);
            inst.commits = BTreeMap::new();
            self.broadcast(out, Msg::Prepare { view, seq: SeqNr(seq), digest });
        }
        self.next_seq = self.next_seq.max(max_seq + 1).max(self.next_deliver);
        for seq in (start + 1)..=max_seq {
            self.check_progress(now, seq, out, charge);
        }

        // Requests still in the pool go back into the proposal pipeline.
        if self.cfg.leader_of(view.0) == self.me {
            let mut pool: Vec<(Digest, P)> =
                self.pool.iter().map(|(d, p)| (*d, p.clone())).collect();
            // Deterministic order for reproducibility.
            pool.sort_by_key(|(d, _)| *d);
            for (d, p) in pool {
                let proposed = self
                    .instances
                    .values()
                    .any(|i| i.batch.as_ref().is_some_and(|b| b.iter().any(|q| q.digest() == d)));
                if !proposed && self.pending_digests.insert(d) {
                    // Rate-neutral: these arrivals were already counted
                    // when they first entered the pool.
                    self.batcher.requeue(now, p);
                }
            }
            self.try_propose(now, out, charge);
        }
        // Followers (e.g. the demoted leader) must not keep a stale
        // linger timer armed.
        self.update_batch_timer(now, out);

        // Re-watch everything undelivered under the new regime.
        for d in self.pool.keys() {
            self.watching.entry(*d).or_insert(now);
        }
        self.arm_progress_timer(out);

        // Process messages that arrived for this view while it was being
        // installed.
        let stashed: Vec<(usize, Msg<P>)> = self.stashed.drain(..).collect();
        for (from, msg) in stashed {
            self.on_message(now, from, msg, out, charge);
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn should_stash(&self, msg_view: ViewNr) -> bool {
        msg_view > self.view || (self.in_view_change && msg_view == self.view)
    }

    fn stash(&mut self, from: usize, msg: Msg<P>) {
        const STASH_CAP: usize = 4096;
        if self.stashed.len() >= STASH_CAP {
            self.stashed.pop_front();
        }
        self.stashed.push_back((from, msg));
    }

    fn broadcast(&self, out: &mut Vec<Output<P>>, msg: Msg<P>) {
        for to in 0..self.cfg.n() {
            if to != self.me {
                // analyzer: allow(charge-coverage, "fan-out helper; every caller charges for the op that produced msg")
                out.push(Output::Send { to, msg: msg.clone() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestPayload;
    use spider_crypto::CostModel;

    fn cfg() -> PbftConfig {
        PbftConfig::new(1)
            .with_cost(CostModel::zero())
            .with_view_change_timeout(SimTime::from_millis(100))
    }

    /// Orders `p` on all replicas and pumps messages to quiescence.
    fn order_and_pump(
        replicas: &mut [Pbft<TestPayload>],
        p: TestPayload,
        now: SimTime,
    ) -> Vec<Vec<(SeqNr, Vec<TestPayload>)>> {
        let n = replicas.len();
        let mut inbox: VecDeque<(usize, usize, Msg<TestPayload>)> = VecDeque::new();
        let mut delivered = vec![Vec::new(); n];
        for i in 0..n {
            let mut out = Vec::new();
            replicas[i].handle(now, Input::Order(p), &mut out);
            for o in out {
                match o {
                    Output::Send { to, msg } => inbox.push_back((i, to, msg)),
                    Output::Deliver { seq, batch } => delivered[i].push((seq, batch)),
                    _ => {}
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            let mut out = Vec::new();
            replicas[to].handle(now, Input::Message { from, msg }, &mut out);
            for o in out {
                match o {
                    Output::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Output::Deliver { seq, batch } => delivered[to].push((seq, batch)),
                    _ => {}
                }
            }
        }
        delivered
    }

    #[test]
    fn four_replicas_order_one_payload() {
        let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg(), i)).collect();
        let delivered = order_and_pump(&mut replicas, TestPayload(7), SimTime::ZERO);
        for d in &delivered {
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].0, SeqNr(1));
            assert_eq!(d[0].1, vec![TestPayload(7)]);
        }
    }

    #[test]
    fn ordering_is_identical_across_replicas() {
        let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg(), i)).collect();
        let mut all: Vec<Vec<(SeqNr, Vec<TestPayload>)>> = vec![Vec::new(); 4];
        for k in 0..20 {
            let d = order_and_pump(&mut replicas, TestPayload(k), SimTime::ZERO);
            for (i, di) in d.into_iter().enumerate() {
                all[i].extend(di);
            }
        }
        for i in 1..4 {
            assert_eq!(all[0], all[i], "replica {i} diverged");
        }
        assert_eq!(all[0].len(), 20);
    }

    #[test]
    fn duplicate_order_is_not_delivered_twice() {
        let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg(), i)).collect();
        let d1 = order_and_pump(&mut replicas, TestPayload(1), SimTime::ZERO);
        let d2 = order_and_pump(&mut replicas, TestPayload(1), SimTime::ZERO);
        assert_eq!(d1[0].len(), 1);
        assert!(d2[0].is_empty(), "second order of same payload is a no-op");
    }

    #[test]
    fn gc_forgets_and_blocks_redelivery() {
        let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg(), i)).collect();
        let _ = order_and_pump(&mut replicas, TestPayload(1), SimTime::ZERO);
        for r in replicas.iter_mut() {
            r.gc(SeqNr(2));
            assert_eq!(r.next_deliver(), SeqNr(2));
        }
        // Ordering a new payload lands at seq 2.
        let d = order_and_pump(&mut replicas, TestPayload(2), SimTime::ZERO);
        assert_eq!(d[0][0].0, SeqNr(2));
    }

    #[test]
    fn silent_leader_triggers_view_change_and_new_leader_delivers() {
        let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg(), i)).collect();
        let t0 = SimTime::ZERO;

        // Followers (1..4) learn of a payload; leader 0 is silent/faulty:
        // we simply never call handle on replica 0.
        let p = TestPayload(42);
        let mut sink = Vec::new();
        for r in replicas.iter_mut().skip(1) {
            r.handle(t0, Input::Order(p), &mut sink);
        }
        // Progress timers fire after the timeout on the followers.
        let t1 = SimTime::from_millis(200);
        let mut inbox: VecDeque<(usize, usize, Msg<TestPayload>)> = VecDeque::new();
        for (i, replica) in replicas.iter_mut().enumerate().skip(1) {
            let mut out = Vec::new();
            replica.handle(t1, Input::Timer(TOKEN_PROGRESS), &mut out);
            for o in out {
                if let Output::Send { to, msg } = o {
                    inbox.push_back((i, to, msg));
                }
            }
        }
        // Pump everything among replicas 1..4 (0 stays dead).
        let mut delivered = vec![Vec::new(); 4];
        while let Some((from, to, msg)) = inbox.pop_front() {
            if to == 0 {
                continue;
            }
            let mut out = Vec::new();
            replicas[to].handle(t1, Input::Message { from, msg }, &mut out);
            for o in out {
                match o {
                    Output::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Output::Deliver { seq, batch } => delivered[to].push((seq, batch)),
                    _ => {}
                }
            }
        }
        for i in 1..4 {
            assert_eq!(replicas[i].view(), ViewNr(1), "replica {i} moved to view 1");
            assert_eq!(
                delivered[i],
                vec![(SeqNr(1), vec![p])],
                "replica {i} delivered after view change"
            );
        }
    }

    #[test]
    fn batching_groups_payloads() {
        let mut replicas: Vec<Pbft<TestPayload>> =
            (0..4).map(|i| Pbft::new(cfg().with_max_batch(4), i)).collect();
        // Feed 4 payloads to the leader only first (no message exchange in
        // between), then to followers, then pump.
        let mut inbox: VecDeque<(usize, usize, Msg<TestPayload>)> = VecDeque::new();
        let mut delivered = vec![Vec::new(); 4];
        for k in 0..4 {
            for i in 0..4 {
                let mut out = Vec::new();
                replicas[i].handle(SimTime::ZERO, Input::Order(TestPayload(k)), &mut out);
                for o in out {
                    match o {
                        Output::Send { to, msg } => inbox.push_back((i, to, msg)),
                        Output::Deliver { seq, batch } => delivered[i].push((seq, batch)),
                        _ => {}
                    }
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            let mut out = Vec::new();
            replicas[to].handle(SimTime::ZERO, Input::Message { from, msg }, &mut out);
            for o in out {
                match o {
                    Output::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Output::Deliver { seq, batch } => delivered[to].push((seq, batch)),
                    _ => {}
                }
            }
        }
        // The first payload ships alone (pipeline empty), the remaining
        // three arrive while instance 1 is in flight and batch together or
        // ship individually — but every replica sees the same sequence.
        let total: usize = delivered[0].iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
        for i in 1..4 {
            assert_eq!(delivered[i], delivered[0]);
        }
    }

    #[test]
    fn weighted_quorum_requires_vmax_holders() {
        // n = 5, weights [2,2,1,1,1], quorum 5: the three Vmin replicas
        // alone (weight 3) cannot prepare anything.
        let wcfg = PbftConfig::weighted(1, 1, &[0, 1])
            .with_cost(CostModel::zero())
            .with_view_change_timeout(SimTime::from_millis(100));
        let mut replicas: Vec<Pbft<TestPayload>> =
            (0..5).map(|i| Pbft::new(wcfg.clone(), i)).collect();
        let p = TestPayload(9);
        // Order on leader 0 and pump messages, but drop everything to and
        // from replica 1 (the other Vmax holder): quorum needs 2+2+1 and
        // without replica 1 the reachable weight is 2+1+1+1 = 5 — exactly
        // enough, so delivery happens. Now drop replica 0's *commit* path…
        // Simplest meaningful check: full pump delivers on all replicas.
        let delivered = order_and_pump(&mut replicas, p, SimTime::ZERO);
        for d in delivered.iter() {
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn equivocating_preprepare_cannot_commit_two_values() {
        // A Byzantine leader sends different batches to different
        // followers for the same (view, seq). No value may reach commit
        // quorum on any correct replica.
        let mut r1: Pbft<TestPayload> = Pbft::new(cfg(), 1);
        let mut r2: Pbft<TestPayload> = Pbft::new(cfg(), 2);
        let mut r3: Pbft<TestPayload> = Pbft::new(cfg(), 3);
        let a = Msg::PrePrepare {
            view: ViewNr(0),
            seq: SeqNr(1),
            batch: Arc::new(vec![TestPayload(1)]),
        };
        let b = Msg::PrePrepare {
            view: ViewNr(0),
            seq: SeqNr(1),
            batch: Arc::new(vec![TestPayload(2)]),
        };
        let mut out: Vec<Output<TestPayload>> = Vec::new();
        r1.handle(SimTime::ZERO, Input::Message { from: 0, msg: a.clone() }, &mut out);
        r2.handle(SimTime::ZERO, Input::Message { from: 0, msg: a }, &mut out);
        r3.handle(SimTime::ZERO, Input::Message { from: 0, msg: b }, &mut out);
        out.clear();

        // The decisive assertion: pairwise exchange of prepares between
        // r1/r2 (digest A) and r3 (digest B) cannot commit B anywhere, and
        // A reaches prepare weight 3 only with votes {0(leader),1,2} — the
        // leader's vote counts, so A *can* prepare, but B cannot.
        let mut out12 = Vec::new();
        let d_a = batch_digest(&[TestPayload(1)]);
        let d_b = batch_digest(&[TestPayload(2)]);
        r1.handle(
            SimTime::ZERO,
            Input::Message {
                from: 2,
                msg: Msg::Prepare { view: ViewNr(0), seq: SeqNr(1), digest: d_a },
            },
            &mut out12,
        );
        r1.handle(
            SimTime::ZERO,
            Input::Message {
                from: 3,
                msg: Msg::Prepare { view: ViewNr(0), seq: SeqNr(1), digest: d_b },
            },
            &mut out12,
        );
        // r1 now has prepares: leader(A), self(A), r2(A), r3(B) -> A
        // prepared (weight 3), commit broadcast for A.
        assert!(out12.iter().any(
            |o| matches!(o, Output::Send { msg: Msg::Commit { digest, .. }, .. } if *digest == d_a)
        ));
        // r3 has leader(B), self(B) and receives A votes from r1, r2: B
        // never prepares.
        let mut out3 = Vec::new();
        r3.handle(
            SimTime::ZERO,
            Input::Message {
                from: 1,
                msg: Msg::Prepare { view: ViewNr(0), seq: SeqNr(1), digest: d_a },
            },
            &mut out3,
        );
        r3.handle(
            SimTime::ZERO,
            Input::Message {
                from: 2,
                msg: Msg::Prepare { view: ViewNr(0), seq: SeqNr(1), digest: d_a },
            },
            &mut out3,
        );
        assert!(
            !out3.iter().any(|o| matches!(o, Output::Send { msg: Msg::Commit { .. }, .. })),
            "equivocated value must not prepare on r3"
        );
    }
}
