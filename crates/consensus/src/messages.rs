//! PBFT wire messages.

use crate::Payload;
use spider_crypto::Digest;
use spider_types::wire::{mac_vector_bytes, DIGEST_BYTES, HEADER_BYTES};
use spider_types::{SeqNr, ViewNr, WireSize};
use std::sync::Arc;

/// A prepared certificate: proof that a batch was prepared at `(view, seq)`.
///
/// Carried inside view-change messages so a new leader can re-propose
/// everything that might already have committed somewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedCert<P> {
    /// Instance number.
    pub seq: SeqNr,
    /// View in which the batch prepared.
    pub view: ViewNr,
    /// Digest of the batch.
    pub digest: Digest,
    /// The batch itself (so re-proposal needs no extra fetch round).
    pub batch: Vec<P>,
}

impl<P: Payload> WireSize for PreparedCert<P> {
    fn wire_size(&self) -> usize {
        HEADER_BYTES + DIGEST_BYTES + self.batch.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// A view-change vote: "I want to move to `new_view`".
#[derive(Debug, Clone, PartialEq)]
pub struct ViewChangeMsg<P> {
    /// The view the sender wants to enter.
    pub new_view: ViewNr,
    /// The sender's garbage-collection horizon (last forgotten instance).
    pub h: SeqNr,
    /// All instances prepared above `h` at the sender.
    pub prepared: Vec<PreparedCert<P>>,
    /// Index of the sending replica within the group.
    pub sender: usize,
}

impl<P: Payload> WireSize for ViewChangeMsg<P> {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + 16
            + self.prepared.iter().map(WireSize::wire_size).sum::<usize>()
            // View changes are signed in PBFT.
            + spider_types::wire::SIG_BYTES
    }
}

/// New-view announcement from the leader of `view`, carrying the
/// view-change quorum it collected. Receivers deterministically recompute
/// the set of re-proposals from `vcs` (see `compute_new_view_proposals`).
#[derive(Debug, Clone, PartialEq)]
pub struct NewViewMsg<P> {
    /// The view being started.
    pub view: ViewNr,
    /// The quorum of view-change messages justifying it.
    pub vcs: Vec<ViewChangeMsg<P>>,
}

impl<P: Payload> WireSize for NewViewMsg<P> {
    fn wire_size(&self) -> usize {
        HEADER_BYTES + self.vcs.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// Messages exchanged between the replicas of one PBFT group.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg<P> {
    /// Leader proposal of a batch at `(view, seq)`.
    PrePrepare {
        /// Proposal view.
        view: ViewNr,
        /// Instance number.
        seq: SeqNr,
        /// Proposed batch (possibly empty = no-op). Shared via [`Arc`] so
        /// the leader's broadcast and log entry reference one allocation
        /// instead of cloning the payloads per recipient.
        batch: Arc<Vec<P>>,
    },
    /// Follower echo of a proposal digest.
    Prepare {
        /// Vote view.
        view: ViewNr,
        /// Instance number.
        seq: SeqNr,
        /// Batch digest being voted for.
        digest: Digest,
    },
    /// Second-phase vote: the sender has a prepared certificate.
    Commit {
        /// Vote view.
        view: ViewNr,
        /// Instance number.
        seq: SeqNr,
        /// Batch digest being committed.
        digest: Digest,
    },
    /// View-change vote.
    ViewChange(ViewChangeMsg<P>),
    /// New-view announcement.
    NewView(NewViewMsg<P>),
}

impl<P: Payload> WireSize for Msg<P> {
    fn wire_size(&self) -> usize {
        match self {
            Msg::PrePrepare { batch, .. } => {
                HEADER_BYTES
                    + 16
                    + batch.iter().map(WireSize::wire_size).sum::<usize>()
                    + mac_vector_bytes(4)
            }
            Msg::Prepare { .. } | Msg::Commit { .. } => {
                HEADER_BYTES + 16 + DIGEST_BYTES + mac_vector_bytes(4)
            }
            Msg::ViewChange(vc) => vc.wire_size(),
            Msg::NewView(nv) => nv.wire_size(),
        }
    }

    fn trace_kind(&self) -> &'static str {
        "consensus"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        // Only the leader's proposal carries request payloads; votes and
        // view-change traffic are digest-only (per-request propose→commit
        // time is attributed through the consensus spans instead).
        if let Msg::PrePrepare { batch, .. } = self {
            for p in batch.iter() {
                p.trace_reqs(visit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestPayload;

    #[test]
    fn preprepare_size_includes_batch() {
        let small: Msg<TestPayload> = Msg::PrePrepare {
            view: ViewNr(0),
            seq: SeqNr(1),
            batch: Arc::new(vec![TestPayload(1)]),
        };
        let big: Msg<TestPayload> = Msg::PrePrepare {
            view: ViewNr(0),
            seq: SeqNr(1),
            batch: Arc::new(vec![TestPayload(1); 10]),
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn preprepare_clone_shares_the_batch() {
        let msg: Msg<TestPayload> = Msg::PrePrepare {
            view: ViewNr(0),
            seq: SeqNr(1),
            batch: Arc::new(vec![TestPayload(1); 64]),
        };
        let copy = msg.clone();
        let (Msg::PrePrepare { batch: a, .. }, Msg::PrePrepare { batch: b, .. }) = (&msg, &copy)
        else {
            unreachable!()
        };
        assert!(Arc::ptr_eq(a, b), "broadcast clones must not copy payloads");
    }

    #[test]
    fn votes_are_fixed_size() {
        let p: Msg<TestPayload> =
            Msg::Prepare { view: ViewNr(0), seq: SeqNr(1), digest: Digest::ZERO };
        let c: Msg<TestPayload> =
            Msg::Commit { view: ViewNr(0), seq: SeqNr(1), digest: Digest::ZERO };
        assert_eq!(p.wire_size(), c.wire_size());
    }

    #[test]
    fn view_change_size_includes_certs_and_signature() {
        let empty: Msg<TestPayload> = Msg::ViewChange(ViewChangeMsg {
            new_view: ViewNr(1),
            h: SeqNr(0),
            prepared: vec![],
            sender: 2,
        });
        let full: Msg<TestPayload> = Msg::ViewChange(ViewChangeMsg {
            new_view: ViewNr(1),
            h: SeqNr(0),
            prepared: vec![PreparedCert {
                seq: SeqNr(1),
                view: ViewNr(0),
                digest: Digest::ZERO,
                batch: vec![TestPayload(9)],
            }],
            sender: 2,
        });
        assert!(full.wire_size() > empty.wire_size());
        assert!(empty.wire_size() >= spider_types::wire::SIG_BYTES);
    }
}
