//! PBFT configuration, including weighted-voting quorums.

use crate::batcher::BatcherConfig;
use spider_crypto::CostModel;
use spider_types::SimTime;

/// Configuration of a PBFT group.
///
/// The default quorum rule is classic PBFT: `n = 3f + 1` replicas, every
/// vote weighs 1, quorums need weight `2f + 1`. The BFT-WV baseline uses
/// [`PbftConfig::weighted`] to construct a WHEAT-style configuration with
/// `n = 3f + 1 + Δ` replicas where `2f` replicas carry weight
/// `Vmax = 1 + Δ/f` and quorums need weight `2f · Vmax + 1`.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Fault threshold.
    pub f: usize,
    /// Vote weight per replica (length = group size `n`).
    pub weights: Vec<u32>,
    /// Weight a prepare/commit/view-change quorum must reach.
    pub quorum_weight: u32,
    /// Maximum number of payloads per proposed batch.
    pub max_batch: usize,
    /// Maximum payload wire bytes per proposed batch (an oversized single
    /// payload still ships alone).
    pub batch_max_bytes: usize,
    /// Maximum time a payload may linger in the leader's queue before it
    /// is proposed. Zero = propose immediately (legacy greedy batching).
    pub batch_delay: SimTime,
    /// Rate-adaptive batch sizing: the leader targets the expected number
    /// of arrivals within one `batch_delay` window instead of always
    /// waiting for `max_batch` (see [`crate::Batcher`]). Requires a
    /// non-zero `batch_delay` to have any effect.
    pub adaptive_batching: bool,
    /// Maximum number of concurrently active (proposed, undelivered)
    /// instances the leader keeps in flight.
    pub pipeline_depth: usize,
    /// Watermark window: instances may be proposed in
    /// `(last_gc, last_gc + window]`.
    pub window: u64,
    /// Base timeout before a replica suspects the leader and starts a view
    /// change; doubles per consecutive failed view change.
    pub view_change_timeout: SimTime,
    /// CPU cost model for authentication work.
    pub cost: CostModel,
}

impl PbftConfig {
    /// Classic PBFT configuration for fault threshold `f` (`n = 3f + 1`).
    pub fn new(f: usize) -> Self {
        assert!(f >= 1, "f must be at least 1");
        let n = 3 * f + 1;
        PbftConfig {
            f,
            weights: vec![1; n],
            quorum_weight: (2 * f + 1) as u32,
            max_batch: 8,
            batch_max_bytes: 1 << 20,
            batch_delay: SimTime::ZERO,
            adaptive_batching: false,
            pipeline_depth: 32,
            window: 256,
            view_change_timeout: SimTime::from_millis(500),
            cost: CostModel::default(),
        }
    }

    /// WHEAT-style weighted configuration: `n = 3f + 1 + delta` replicas;
    /// the replicas listed in `vmax_holders` carry weight `Vmax = 1 + Δ/f`
    /// (Δ must be a multiple of f), everyone else weight 1. Quorums need
    /// `2f · Vmax + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a positive multiple of `f`, or if
    /// `vmax_holders` does not name exactly `2f` distinct replicas.
    pub fn weighted(f: usize, delta: usize, vmax_holders: &[usize]) -> Self {
        assert!(f >= 1, "f must be at least 1");
        assert!(delta >= 1 && delta.is_multiple_of(f), "delta must be a positive multiple of f");
        let n = 3 * f + 1 + delta;
        let vmax = (1 + delta / f) as u32;
        assert_eq!(vmax_holders.len(), 2 * f, "exactly 2f replicas hold Vmax");
        let mut weights = vec![1u32; n];
        for &i in vmax_holders {
            assert!(i < n, "vmax holder out of range");
            assert_eq!(weights[i], 1, "duplicate vmax holder");
            weights[i] = vmax;
        }
        PbftConfig {
            quorum_weight: 2 * f as u32 * vmax + 1,
            ..PbftConfig::new_with_n(f, n, weights)
        }
    }

    fn new_with_n(f: usize, n: usize, weights: Vec<u32>) -> Self {
        let mut cfg = PbftConfig::new(f);
        assert_eq!(weights.len(), n);
        cfg.weights = weights;
        cfg
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Vote weight of replica `i`.
    pub fn weight(&self, i: usize) -> u32 {
        self.weights[i]
    }

    /// Leader of a view (round-robin).
    pub fn leader_of(&self, view: u64) -> usize {
        (view % self.n() as u64) as usize
    }

    /// Sets the batch size (builder-style).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch >= 1);
        self.max_batch = max_batch;
        self
    }

    /// Sets the batch byte cap (builder-style).
    #[must_use]
    pub fn with_batch_max_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1);
        self.batch_max_bytes = bytes;
        self
    }

    /// Sets the batch linger cap (builder-style). Zero = propose
    /// immediately.
    #[must_use]
    pub fn with_batch_delay(mut self, delay: SimTime) -> Self {
        self.batch_delay = delay;
        self
    }

    /// Enables or disables rate-adaptive batch sizing (builder-style).
    #[must_use]
    pub fn with_adaptive_batching(mut self, adaptive: bool) -> Self {
        self.adaptive_batching = adaptive;
        self
    }

    /// Sets the pipelining window: how many proposed-but-undelivered
    /// instances the leader keeps in flight (builder-style).
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1);
        self.pipeline_depth = depth;
        self
    }

    /// The batching policy induced by this configuration.
    pub fn batcher_config(&self) -> BatcherConfig {
        BatcherConfig {
            max_batch: self.max_batch,
            max_bytes: self.batch_max_bytes,
            delay: self.batch_delay,
            adaptive: self.adaptive_batching,
        }
    }

    /// Sets the view-change timeout (builder-style).
    #[must_use]
    pub fn with_view_change_timeout(mut self, t: SimTime) -> Self {
        self.view_change_timeout = t;
        self
    }

    /// Sets the cost model (builder-style).
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the watermark window (builder-style).
    #[must_use]
    pub fn with_window(mut self, window: u64) -> Self {
        assert!(window >= 1);
        self.window = window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_config_has_pbft_quorums() {
        let c = PbftConfig::new(1);
        assert_eq!(c.n(), 4);
        assert_eq!(c.quorum_weight, 3);
        assert_eq!(c.leader_of(0), 0);
        assert_eq!(c.leader_of(5), 1);
    }

    #[test]
    fn weighted_config_matches_wheat() {
        // n = 5, f = 1, delta = 1: Vmax = 2 on two replicas, quorum 5.
        let c = PbftConfig::weighted(1, 1, &[0, 1]);
        assert_eq!(c.n(), 5);
        assert_eq!(c.weights, vec![2, 2, 1, 1, 1]);
        assert_eq!(c.quorum_weight, 5);
        // Safety sanity: two quorums of weight 5 out of total 7 intersect
        // in weight >= 3 > Vmax, i.e. in at least one correct replica.
        let total: u32 = c.weights.iter().sum();
        assert!(2 * c.quorum_weight > total + c.weights.iter().copied().max().unwrap());
    }

    #[test]
    fn batching_knobs_flow_into_batcher_config() {
        let c = PbftConfig::new(1)
            .with_max_batch(16)
            .with_batch_max_bytes(4096)
            .with_batch_delay(SimTime::from_millis(2))
            .with_adaptive_batching(true)
            .with_pipeline_depth(4);
        assert_eq!(c.pipeline_depth, 4);
        let b = c.batcher_config();
        assert_eq!(b.max_batch, 16);
        assert_eq!(b.max_bytes, 4096);
        assert_eq!(b.delay, SimTime::from_millis(2));
        assert!(b.adaptive);
    }

    #[test]
    fn default_batching_is_legacy_greedy() {
        let b = PbftConfig::new(1).batcher_config();
        assert_eq!(b.delay, SimTime::ZERO);
        assert!(!b.adaptive);
        assert_eq!(b.max_batch, 8);
    }

    #[test]
    #[should_panic(expected = "exactly 2f replicas")]
    fn weighted_config_validates_holder_count() {
        let _ = PbftConfig::weighted(1, 1, &[0]);
    }

    #[test]
    #[should_panic(expected = "duplicate vmax holder")]
    fn weighted_config_rejects_duplicates() {
        let _ = PbftConfig::weighted(1, 1, &[0, 0]);
    }
}
