//! Property tests for the adaptive batcher and a regression test pinning
//! the legacy propose behavior.
//!
//! The batcher's contract (see `spider_consensus::Batcher`):
//!
//! 1. a cut batch never exceeds the size cap, and never exceeds the byte
//!    cap unless a single payload alone does,
//! 2. whenever the owner can propose, no payload lingers more than
//!    `batch_delay` past its enqueue time — the deadline is always
//!    `oldest enqueue + delay` and `ready` is true at (and after) it,
//! 3. with `pipeline_depth = 1`, `batch_delay = 0`, and adaptive sizing
//!    off, the replica reproduces the legacy cut rule byte-for-byte: the
//!    same `take = pending.len().min(max_batch)` batches at every
//!    propose opportunity, never more than one instance in flight. (The
//!    set of propose opportunities itself grew: the legacy loop only cut
//!    on an Order arrival, while the replica now also refills the
//!    pipeline when a delivery frees a slot — the reference model below
//!    pins the new, strictly-more-live discipline.)

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spider_consensus::{Batcher, BatcherConfig, Input, Msg, Output, Pbft, PbftConfig, TestPayload};
use spider_crypto::CostModel;
use spider_types::{SimTime, WireSize};
use std::collections::VecDeque;

/// Test payload with an explicit wire size and identity.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Item {
    id: usize,
    bytes: usize,
}

impl WireSize for Item {
    fn wire_size(&self) -> usize {
        self.bytes
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: size and byte caps hold for every cut, under random
    /// push/take interleavings, sizes, and timings.
    #[test]
    fn batches_never_exceed_caps(
        seed in 0u64..100_000,
        max_batch in 1usize..16,
        max_bytes in 40usize..400,
        delay_ms in 0u64..20,
        adaptive_sel in 0u8..2,
    ) {
        let cfg = BatcherConfig {
            max_batch,
            max_bytes,
            delay: SimTime::from_millis(delay_ms),
            adaptive: adaptive_sel == 1,
        };
        let mut b: Batcher<Item> = Batcher::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        let mut next_id = 0usize;
        for _ in 0..200 {
            now += SimTime::from_micros(rng.gen_range(0..5_000u64));
            if rng.gen_range(0..3u8) < 2 {
                b.push(now, Item { id: next_id, bytes: rng.gen_range(1..200usize) });
                next_id += 1;
            } else if b.ready(now) {
                let batch = b.take();
                prop_assert!(!batch.is_empty(), "ready implies a non-empty cut");
                prop_assert!(batch.len() <= max_batch, "size cap violated");
                let bytes: usize = batch.iter().map(|i| i.bytes).sum();
                prop_assert!(
                    bytes <= max_bytes || batch.len() == 1,
                    "byte cap violated by a multi-payload batch ({bytes} > {max_bytes})"
                );
            }
        }
        // Drain: caps must hold for the leftovers too.
        while !b.is_empty() {
            let batch = b.take();
            prop_assert!(batch.len() <= max_batch);
            let bytes: usize = batch.iter().map(|i| i.bytes).sum();
            prop_assert!(bytes <= max_bytes || batch.len() == 1);
        }
    }

    /// Contract 2: driving the batcher like a host (flush whenever it is
    /// ready, honor its deadline otherwise), every payload is flushed
    /// within `delay` of its enqueue time.
    #[test]
    fn flushes_within_delay_of_first_enqueue(
        seed in 0u64..100_000,
        max_batch in 1usize..16,
        delay_ms in 1u64..20,
        adaptive_sel in 0u8..2,
    ) {
        let delay = SimTime::from_millis(delay_ms);
        let cfg = BatcherConfig { max_batch, max_bytes: 1 << 20, delay, adaptive: adaptive_sel == 1 };
        let mut b: Batcher<Item> = Batcher::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut enqueued: Vec<SimTime> = Vec::new();
        let mut now = SimTime::ZERO;

        let flush = |b: &mut Batcher<Item>, now: SimTime, enq: &[SimTime]| {
            for item in b.take() {
                let waited = now.saturating_sub(enq[item.id]);
                assert!(
                    waited <= delay,
                    "payload {} waited {waited} (> {delay})",
                    item.id
                );
            }
        };

        for _ in 0..200 {
            let arrival = now + SimTime::from_micros(rng.gen_range(0..4_000u64));
            // Honor every deadline that falls before the next arrival.
            loop {
                match b.deadline() {
                    Some(dl) if dl <= arrival => {
                        now = now.max(dl);
                        assert!(b.ready(now), "deadline reached but not ready");
                        flush(&mut b, now, &enqueued);
                    }
                    _ => break,
                }
            }
            now = arrival;
            let id = enqueued.len();
            enqueued.push(now);
            b.push(now, Item { id, bytes: rng.gen_range(1..300usize) });
            // A host may also flush eagerly whenever the policy says so.
            while b.ready(now) {
                flush(&mut b, now, &enqueued);
            }
            if let Some(dl) = b.deadline() {
                // The deadline is exactly the oldest queued payload's
                // enqueue time plus the linger cap.
                prop_assert_eq!(dl, enqueued[enqueued.len() - b.len()] + delay);
            }
        }
        // Final drain at the remaining deadlines.
        while let Some(dl) = b.deadline() {
            now = now.max(dl);
            assert!(b.ready(now));
            flush(&mut b, now, &enqueued);
        }
    }
}

// ----------------------------------------------------------------------
// Legacy-behavior regression
// ----------------------------------------------------------------------

/// Reference model of the legacy leader's batching: a FIFO `pending`
/// queue cut with `take = pending.len().min(max_batch)` at every propose
/// opportunity (an Order arrival or — new in the pipelined replica — a
/// delivery), one instance in flight at a time.
struct LegacyLeader {
    pending: VecDeque<TestPayload>,
    in_flight: usize,
    max_batch: usize,
    cuts: Vec<Vec<TestPayload>>,
}

impl LegacyLeader {
    fn maybe_cut(&mut self) {
        while !self.pending.is_empty() && self.in_flight < 1 {
            let take = self.pending.len().min(self.max_batch);
            let batch: Vec<TestPayload> = self.pending.drain(..take).collect();
            self.cuts.push(batch);
            self.in_flight += 1;
        }
    }

    fn on_order(&mut self, p: TestPayload) {
        self.pending.push_back(p);
        self.maybe_cut();
    }

    fn on_deliver(&mut self) {
        self.in_flight -= 1;
        self.maybe_cut();
    }
}

#[test]
fn pipeline_depth_one_reproduces_legacy_cut_byte_for_byte() {
    const MAX_BATCH: usize = 3;
    let cfg = PbftConfig::new(1)
        .with_cost(CostModel::zero())
        .with_max_batch(MAX_BATCH)
        .with_pipeline_depth(1);
    assert_eq!(cfg.batch_delay, SimTime::ZERO, "legacy mode is the default");
    assert!(!cfg.adaptive_batching, "legacy mode is the default");
    let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg.clone(), i)).collect();
    let mut legacy = LegacyLeader {
        pending: VecDeque::new(),
        in_flight: 0,
        max_batch: MAX_BATCH,
        cuts: Vec::new(),
    };

    // Actual proposals observed on the wire: (seq, batch, wire bytes).
    let mut proposals: Vec<(u64, Vec<TestPayload>, usize)> = Vec::new();
    let mut inbox: VecDeque<(usize, usize, Msg<TestPayload>)> = VecDeque::new();
    let mut in_flight_high_water = 0usize;

    let absorb = |from: usize,
                  out: Vec<Output<TestPayload>>,
                  inbox: &mut VecDeque<(usize, usize, Msg<TestPayload>)>,
                  legacy: &mut LegacyLeader,
                  proposals: &mut Vec<(u64, Vec<TestPayload>, usize)>| {
        for o in out {
            match o {
                Output::Send { to, msg } => {
                    if from == 0 {
                        if let Msg::PrePrepare { seq, ref batch, .. } = msg {
                            if proposals.last().map(|(s, _, _)| *s) != Some(seq.0) {
                                proposals.push((seq.0, (**batch).clone(), msg.wire_size()));
                            }
                        }
                    }
                    inbox.push_back((from, to, msg));
                }
                Output::Deliver { .. } if from == 0 => legacy.on_deliver(),
                _ => {}
            }
        }
    };

    // Drive bursts of orders into the leader, pumping the network dry
    // between bursts (and not at all inside a burst, so the pipeline
    // fills and the pending queue builds up exactly as it would have
    // under the legacy loop).
    let mut next: u64 = 0;
    for burst in [1usize, 5, 2, 7, 1, 4] {
        for _ in 0..burst {
            let p = TestPayload(next);
            next += 1;
            legacy.on_order(p);
            let mut out = Vec::new();
            replicas[0].handle(SimTime::ZERO, Input::Order(p), &mut out);
            absorb(0, out, &mut inbox, &mut legacy, &mut proposals);
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            let mut out = Vec::new();
            replicas[to].handle(SimTime::ZERO, Input::Message { from, msg }, &mut out);
            absorb(to, out, &mut inbox, &mut legacy, &mut proposals);
            in_flight_high_water = in_flight_high_water.max(legacy.in_flight);
        }
    }

    // Every payload was proposed, one instance at a time.
    assert_eq!(proposals.len(), legacy.cuts.len(), "same number of instances");
    assert!(in_flight_high_water <= 1, "pipeline_depth = 1 means one instance in flight");
    for (i, ((seq, actual, actual_bytes), expected)) in
        proposals.iter().zip(&legacy.cuts).enumerate()
    {
        assert_eq!(*seq, i as u64 + 1, "instances are consecutive");
        assert_eq!(actual, expected, "instance {seq}: batch contents differ from legacy cut");
        let legacy_msg: Msg<TestPayload> = Msg::PrePrepare {
            view: spider_types::ViewNr(0),
            seq: spider_types::SeqNr(*seq),
            batch: std::sync::Arc::new(expected.clone()),
        };
        assert_eq!(
            *actual_bytes,
            legacy_msg.wire_size(),
            "instance {seq}: wire bytes differ from legacy proposal"
        );
    }
    let proposed: usize = proposals.iter().map(|(_, b, _)| b.len()).sum();
    assert_eq!(proposed as u64, next, "no payload lost or duplicated");
}

/// The same schedule with a deeper pipeline proposes *more* eagerly (the
/// whole point of pipelining) — guards against the depth knob being
/// wired backwards.
#[test]
fn deeper_pipeline_proposes_more_instances_concurrently() {
    let run = |depth: usize| -> usize {
        let cfg = PbftConfig::new(1)
            .with_cost(CostModel::zero())
            .with_max_batch(1)
            .with_pipeline_depth(depth);
        let mut leader: Pbft<TestPayload> = Pbft::new(cfg, 0);
        let mut proposed = 0;
        for k in 0..10u64 {
            let mut out = Vec::new();
            leader.handle(SimTime::ZERO, Input::Order(TestPayload(k)), &mut out);
            proposed += out
                .iter()
                .filter(|o| matches!(o, Output::Send { to: 1, msg: Msg::PrePrepare { .. } }))
                .count();
        }
        proposed
    };
    assert_eq!(run(1), 1, "depth 1: only the first order proposes");
    assert_eq!(run(4), 4, "depth 4: four instances in flight");
    assert_eq!(run(32), 10, "depth 32: everything proposes immediately");
}
