//! Cluster-level tests for the PBFT black-box: safety under adversarial
//! message schedules, liveness through view changes, garbage collection,
//! and weighted-voting configurations.
//!
//! The harness here is a miniature deterministic "network": messages go
//! into a pool, a seeded RNG picks delivery order (and may delay), and
//! virtual time advances to the earliest armed timer when the pool runs
//! dry. This is exactly the kind of schedule randomization the DES-based
//! integration tests use at system level, but focused on one group.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spider_consensus::{Input, Msg, Output, Pbft, PbftConfig, TestPayload};
use spider_crypto::CostModel;
use spider_types::{SeqNr, SimTime};
use std::collections::HashMap;

type Delivered = Vec<(SeqNr, Vec<TestPayload>)>;

struct Cluster {
    replicas: Vec<Option<Pbft<TestPayload>>>,
    /// (from, to, msg, earliest delivery time)
    pool: Vec<(usize, usize, Msg<TestPayload>, SimTime)>,
    timers: Vec<HashMap<u64, SimTime>>,
    delivered: Vec<Delivered>,
    now: SimTime,
    rng: SmallRng,
}

impl Cluster {
    fn new(cfg: PbftConfig, seed: u64) -> Self {
        let n = cfg.n();
        Cluster {
            replicas: (0..n).map(|i| Some(Pbft::new(cfg.clone(), i))).collect(),
            pool: Vec::new(),
            timers: vec![HashMap::new(); n],
            delivered: vec![Vec::new(); n],
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn crash(&mut self, i: usize) {
        self.replicas[i] = None;
    }

    fn order_on(&mut self, i: usize, p: TestPayload) {
        let mut out = Vec::new();
        if let Some(r) = self.replicas[i].as_mut() {
            r.handle(self.now, Input::Order(p), &mut out);
        }
        self.absorb(i, out);
    }

    fn order_everywhere(&mut self, p: TestPayload) {
        for i in 0..self.replicas.len() {
            self.order_on(i, p);
        }
    }

    fn absorb(&mut self, from: usize, out: Vec<Output<TestPayload>>) {
        for o in out {
            match o {
                Output::Send { to, msg } => {
                    // Random extra delay up to 5ms models reordering.
                    let delay = SimTime::from_micros(self.rng.gen_range(0..5_000));
                    self.pool.push((from, to, msg, self.now + delay));
                }
                Output::Deliver { seq, batch } => self.delivered[from].push((seq, batch)),
                Output::SetTimer { token, delay } => {
                    self.timers[from].insert(token.0, self.now + delay);
                }
                Output::CancelTimer { token } => {
                    self.timers[from].remove(&token.0);
                }
                _ => {}
            }
        }
    }

    /// Runs until neither messages nor timers remain, or `max_steps` hit.
    fn run(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not quiesce within {max_steps} steps");
    }

    fn step(&mut self) -> bool {
        // Deliverable messages: those whose time has come.
        let ready: Vec<usize> = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, (_, to, _, at))| *at <= self.now && self.replicas[*to].is_some())
            .map(|(i, _)| i)
            .collect();
        if !ready.is_empty() {
            let pick = ready[self.rng.gen_range(0..ready.len())];
            let (from, to, msg, _) = self.pool.swap_remove(pick);
            let mut out = Vec::new();
            if let Some(r) = self.replicas[to].as_mut() {
                r.handle(self.now, Input::Message { from, msg }, &mut out);
            }
            self.absorb(to, out);
            return true;
        }
        // Nothing ready: advance time to the next message or timer.
        let next_msg = self
            .pool
            .iter()
            .filter(|(_, to, _, _)| self.replicas[*to].is_some())
            .map(|(_, _, _, at)| *at)
            .min();
        let next_timer = self
            .timers
            .iter()
            .enumerate()
            .filter(|(i, _)| self.replicas[*i].is_some())
            .flat_map(|(_, t)| t.values().copied())
            .min();
        match (next_msg, next_timer) {
            (None, None) => false,
            (Some(m), None) => {
                self.now = m;
                true
            }
            (msg_at, Some(t)) if msg_at.is_none() || t <= msg_at.unwrap() => {
                self.now = t;
                // Fire every due timer.
                for i in 0..self.timers.len() {
                    if self.replicas[i].is_none() {
                        continue;
                    }
                    let due: Vec<u64> = self.timers[i]
                        .iter()
                        .filter(|(_, at)| **at <= self.now)
                        .map(|(tok, _)| *tok)
                        .collect();
                    for tok in due {
                        self.timers[i].remove(&tok);
                        let mut out = Vec::new();
                        if let Some(r) = self.replicas[i].as_mut() {
                            r.handle(
                                self.now,
                                Input::Timer(spider_consensus::TimerToken(tok)),
                                &mut out,
                            );
                        }
                        self.absorb(i, out);
                    }
                }
                true
            }
            (Some(m), Some(_)) => {
                self.now = m;
                true
            }
            (None, Some(_)) => unreachable!("covered by the timer arm above"),
        }
    }

    /// Asserts A-Safety: all correct replicas delivered identical
    /// sequences (up to prefix).
    fn assert_prefix_consistent(&self) {
        let seqs: Vec<&Delivered> = self
            .replicas
            .iter()
            .zip(&self.delivered)
            .filter(|(r, _)| r.is_some())
            .map(|(_, d)| d)
            .collect();
        for w in seqs.windows(2) {
            let (a, b) = (w[0], w[1]);
            let common = a.len().min(b.len());
            assert_eq!(&a[..common], &b[..common], "A-Safety violated");
        }
    }
}

fn fast_cfg(f: usize) -> PbftConfig {
    PbftConfig::new(f)
        .with_cost(CostModel::zero())
        .with_view_change_timeout(SimTime::from_millis(100))
}

#[test]
fn hundred_requests_totally_ordered() {
    let mut c = Cluster::new(fast_cfg(1), 1);
    for k in 0..100 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    let total: usize = c.delivered[0].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 100, "all payloads delivered");
    // Exactly once.
    let mut seen = std::collections::HashSet::new();
    for (_, b) in &c.delivered[0] {
        for p in b {
            assert!(seen.insert(p.0), "payload {} delivered twice", p.0);
        }
    }
}

#[test]
fn f2_cluster_orders_with_two_crashed_followers() {
    let mut c = Cluster::new(fast_cfg(2), 2); // n = 7
    c.crash(5);
    c.crash(6);
    for k in 0..20 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    let total: usize = c.delivered[0].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 20);
}

#[test]
fn crashed_leader_is_replaced_and_requests_survive() {
    let mut c = Cluster::new(fast_cfg(1), 3);
    c.crash(0); // leader of view 0
    for k in 0..5 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    for (i, r) in c.replicas.iter().enumerate().skip(1) {
        let r = r.as_ref().unwrap();
        assert!(r.view().0 >= 1, "replica {i} left view 0");
    }
    let total: usize = c.delivered[1].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 5, "requests survive the view change");
}

#[test]
fn leader_crash_mid_stream_loses_nothing() {
    let mut c = Cluster::new(fast_cfg(1), 4);
    for k in 0..10 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.crash(0);
    for k in 10..20 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    let all: Vec<u64> = c.delivered[1].iter().flat_map(|(_, b)| b).map(|p| p.0).collect();
    for k in 0..20 {
        assert!(all.contains(&k), "payload {k} lost across leader crash");
    }
}

#[test]
fn gc_mid_stream_keeps_replicas_aligned() {
    let mut c = Cluster::new(fast_cfg(1), 5);
    for k in 0..30 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    let cut = c.delivered[0].last().unwrap().0.next();
    for r in c.replicas.iter_mut().flatten() {
        r.gc(cut);
    }
    for k in 30..60 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    let total: usize = c.delivered[0].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 60);
}

#[test]
fn weighted_cluster_tolerates_vmin_crash() {
    // BFT-WV shape: 5 replicas, weights [2,2,1,1,1], quorum 5. Crashing a
    // Vmin replica leaves weight 6 >= 5: progress must continue.
    let cfg = PbftConfig::weighted(1, 1, &[0, 1])
        .with_cost(CostModel::zero())
        .with_view_change_timeout(SimTime::from_millis(100));
    let mut c = Cluster::new(cfg, 6);
    c.crash(4);
    for k in 0..15 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(2_000_000);
    c.assert_prefix_consistent();
    let total: usize = c.delivered[0].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 15);
}

#[test]
fn weighted_cluster_blocks_without_quorum_weight() {
    // Crashing both Vmax holders leaves weight 3 < 5: no progress, but
    // also no divergence.
    let cfg = PbftConfig::weighted(1, 1, &[0, 1])
        .with_cost(CostModel::zero())
        .with_view_change_timeout(SimTime::from_millis(100));
    let mut c = Cluster::new(cfg, 7);
    c.crash(0);
    c.crash(1);
    for k in 0..3 {
        c.order_everywhere(TestPayload(k));
    }
    // Bounded run: view changes will spin (weight 3 can never conclude
    // one), so cap steps rather than expecting quiescence.
    for _ in 0..50_000 {
        if !c.step() {
            break;
        }
        if c.now > SimTime::from_secs(30) {
            break;
        }
    }
    c.assert_prefix_consistent();
    for d in c.delivered.iter().skip(2) {
        assert!(d.is_empty(), "cannot commit below quorum weight");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A-Safety under arbitrary schedules: random seeds shuffle delivery
    /// order and inject up to 5ms reordering; replicas never diverge and
    /// every payload is delivered exactly once system-wide.
    #[test]
    fn safety_under_random_schedules(seed in 0u64..5_000, load in 1usize..40) {
        let mut c = Cluster::new(fast_cfg(1), seed);
        for k in 0..load {
            c.order_everywhere(TestPayload(k as u64));
        }
        c.run(4_000_000);
        c.assert_prefix_consistent();
        let total: usize = c.delivered[0].iter().map(|(_, b)| b.len()).sum();
        prop_assert_eq!(total, load);
    }

    /// Liveness + safety with one crashed replica chosen at random.
    #[test]
    fn safety_with_one_crash(seed in 0u64..5_000, victim in 0usize..4) {
        let mut c = Cluster::new(fast_cfg(1), seed);
        c.crash(victim);
        for k in 0..10u64 {
            c.order_everywhere(TestPayload(k));
        }
        c.run(4_000_000);
        c.assert_prefix_consistent();
        // The three survivors each delivered all 10.
        for (i, d) in c.delivered.iter().enumerate() {
            if i == victim { continue; }
            let total: usize = d.iter().map(|(_, b)| b.len()).sum();
            prop_assert_eq!(total, 10, "replica {} incomplete", i);
        }
    }
}

#[test]
fn cascading_leader_crashes_reach_the_third_leader() {
    // Leaders of views 0 and 1 both crash: the group must cascade into
    // view 2 and still deliver everything.
    let mut c = Cluster::new(fast_cfg(1), 8);
    c.crash(0);
    c.crash(1);
    // n = 4, f = 1: two crashes exceed f, but the two survivors can never
    // reach a 2f+1 quorum — so this *must not* make progress. Check that
    // instead (safety under over-failure).
    for k in 0..3 {
        c.order_everywhere(TestPayload(k));
    }
    for _ in 0..200_000 {
        if !c.step() {
            break;
        }
        if c.now > SimTime::from_secs(20) {
            break;
        }
    }
    c.assert_prefix_consistent();
    for d in c.delivered.iter() {
        assert!(d.is_empty(), "no quorum possible with 2 of 4 replicas");
    }

    // With f = 2 (n = 7), two leader crashes are tolerated: view >= 2 and
    // delivery completes.
    let mut c = Cluster::new(fast_cfg(2), 9);
    c.crash(0);
    c.crash(1);
    for k in 0..5 {
        c.order_everywhere(TestPayload(k));
    }
    c.run(4_000_000);
    c.assert_prefix_consistent();
    for (i, r) in c.replicas.iter().enumerate().skip(2) {
        let r = r.as_ref().unwrap();
        assert!(r.view().0 >= 2, "replica {i} should sit in view >= 2");
    }
    let total: usize = c.delivered[2].iter().map(|(_, b)| b.len()).sum();
    assert_eq!(total, 5, "requests survive cascading view changes");
}
