//! Scaled-down runs of every figure's experiment, asserting the *paper's
//! qualitative results* hold in the reproduction: who wins, by roughly
//! what factor, and where the crossovers are.

use spider_harness::experiments::{fig10, fig11, fig7, fig8, fig9a, fig9bcd};
use spider_harness::scenarios::{run_scenario, ScenarioCfg, SystemKind};
use spider_harness::stats::LatencySummary;
use spider_types::SimTime;

fn quick() -> ScenarioCfg {
    ScenarioCfg {
        clients_per_region: 3,
        rate_per_client: 2.0,
        duration: SimTime::from_secs(12),
        warmup: SimTime::from_secs(2),
        ..ScenarioCfg::default()
    }
}

fn p50(samples: &spider_harness::scenarios::RegionSamples, region: &str) -> f64 {
    LatencySummary::of_samples(&samples[region]).expect("samples").p50_ms
}

#[test]
fn fig7_spider_beats_bft_and_hft_everywhere() {
    let cfg = quick();
    let spider = run_scenario(SystemKind::Spider { leader_zone: 0 }, &cfg);
    let bft = run_scenario(SystemKind::Bft { leader: 0 }, &cfg);
    let hft = run_scenario(SystemKind::Hft { leader_site: 0 }, &cfg);
    for region in spider_harness::REGIONS4 {
        let (s, b, h) = (p50(&spider, region), p50(&bft, region), p50(&hft, region));
        assert!(s < b, "{region}: SPIDER {s:.1}ms !< BFT {b:.1}ms");
        assert!(s < h, "{region}: SPIDER {s:.1}ms !< HFT {h:.1}ms");
    }
    // Virginia clients enjoy intra-region writes (paper: ~13 ms).
    let sv = p50(&spider, "virginia");
    assert!(sv < 30.0, "virginia SPIDER p50 {sv:.1}ms");
    // The headline claim: up to ~95% lower than BFT somewhere.
    let best_gain = spider_harness::REGIONS4
        .iter()
        .map(|r| 1.0 - p50(&spider, r) / p50(&bft, r))
        .fold(0.0f64, f64::max);
    assert!(best_gain > 0.80, "best gain vs BFT only {best_gain:.2}");
}

#[test]
fn fig7_spider_latency_insensitive_to_leader_zone() {
    let cfg = quick();
    let z0 = run_scenario(SystemKind::Spider { leader_zone: 0 }, &cfg);
    let z5 = run_scenario(SystemKind::Spider { leader_zone: 5 }, &cfg);
    for region in spider_harness::REGIONS4 {
        let (a, b) = (p50(&z0, region), p50(&z5, region));
        assert!(
            (a - b).abs() < 6.0,
            "{region}: leader zone changed p50 by {:.1}ms ({a:.1} vs {b:.1})",
            (a - b).abs()
        );
    }
}

#[test]
fn fig7_bft_latency_depends_on_leader_location() {
    let cfg = quick();
    let leader_v = run_scenario(SystemKind::Bft { leader: 0 }, &cfg);
    let leader_t = run_scenario(SystemKind::Bft { leader: 3 }, &cfg);
    // Moving the leader from Virginia to Tokyo visibly shifts someone's
    // latency (the paper's point (3)).
    let shift = spider_harness::REGIONS4
        .iter()
        .map(|r| (p50(&leader_v, r) - p50(&leader_t, r)).abs())
        .fold(0.0f64, f64::max);
    assert!(shift > 20.0, "leader move shifted p50 by only {shift:.1}ms");
}

#[test]
fn fig8_read_paths_behave_as_reported() {
    let cfg = fig8::Config { scenario: quick() };
    let result = fig8::run(&cfg);
    let find = |rows: &[spider_harness::experiments::LatencyRow], sys: &str, region: &str| {
        rows.iter()
            .find(|r| r.system.starts_with(sys) && r.client_region == region)
            .map(|r| r.summary.p50_ms)
            .expect("row present")
    };
    // Weak reads: HFT and Spider are local (~2ms); BFT needs a remote
    // replica.
    assert!(find(&result.weak, "SPIDER", "tokyo") < 5.0);
    assert!(find(&result.weak, "HFT", "tokyo") < 5.0);
    assert!(find(&result.weak, "BFT", "tokyo") > 30.0);
    // Strong reads in Spider follow the write path: Virginia fast, Tokyo
    // pays the round trip to the agreement group.
    assert!(find(&result.strong, "SPIDER", "virginia") < 30.0);
    let spider_tokyo = find(&result.strong, "SPIDER", "tokyo");
    assert!(spider_tokyo > 140.0 && spider_tokyo < 220.0);
    // BFT serves Tokyo's strong reads slightly better than Spider (its
    // replicas answer optimized reads directly, §5 "Reads")…
    assert!(
        find(&result.strong, "BFT", "tokyo") < find(&result.strong, "SPIDER", "tokyo"),
        "paper: BFT beats Spider for Tokyo strong reads"
    );
    // …while Spider wins clearly everywhere else.
    assert!(find(&result.strong, "BFT", "virginia") > find(&result.strong, "SPIDER", "virginia"));
}

#[test]
fn fig9a_modularity_overhead_is_small() {
    let cfg = fig9a::Config { scenario: quick() };
    let rows = fig9a::run(&cfg);
    let find = |sys: &str, region: &str| {
        rows.iter()
            .find(|r| r.system == sys && r.client_region == region)
            .map(|r| r.summary.p50_ms)
            .expect("row present")
    };
    for region in spider_harness::REGIONS4 {
        let v0 = find("SPIDER-0E", region);
        let v1 = find("SPIDER-1E", region);
        let vf = find("SPIDER(leader=V-1)", region);
        // The paper: modularization adds < 14 ms.
        assert!(v1 - v0 < 14.0, "{region}: 1E adds {:.1}ms over 0E", v1 - v0);
        assert!(vf - v0 < 20.0, "{region}: full adds {:.1}ms over 0E", vf - v0);
    }
}

#[test]
fn fig9bcd_variant_tradeoffs_match_paper() {
    let cfg = fig9bcd::Config {
        sizes: vec![256, 4096],
        duration: SimTime::from_secs(3),
        ..fig9bcd::Config::default()
    };
    let rows = fig9bcd::run(&cfg);
    let find = |variant: &str, size: usize| {
        rows.iter().find(|r| r.variant == variant && r.msg_size == size).expect("row present")
    };
    for size in [256usize, 4096] {
        let rc = find("IRMC-RC", size);
        let sc = find("IRMC-SC", size);
        // 9b: RC reaches higher throughput.
        assert!(
            rc.throughput_rps > sc.throughput_rps,
            "size {size}: RC {:.0} !> SC {:.0}",
            rc.throughput_rps,
            sc.throughput_rps
        );
        // 9d: SC ships (much) less WAN data but uses LAN for shares.
        assert!(sc.wan_mbps < rc.wan_mbps);
        assert!(sc.lan_mbps > rc.lan_mbps);
        // 9c: the SC sender does extra verification work per message.
        assert!(sc.sender_cpu > 0.0 && rc.sender_cpu > 0.0);
    }
    // Throughput declines with message size (hashing + serialization).
    assert!(find("IRMC-RC", 256).throughput_rps > find("IRMC-RC", 4096).throughput_rps);
}

#[test]
fn fig10_only_spider_keeps_new_site_reads_local() {
    let cfg = fig10::Config {
        clients_per_region: 3,
        duration: SimTime::from_secs(40),
        join_at: SimTime::from_secs(25),
        bucket: SimTime::from_secs(5),
        ..fig10::Config::default()
    };
    let result = fig10::run(&cfg);
    let mean_after = |series: &fig10::Series| {
        let pts: Vec<f64> = series
            .points
            .iter()
            .filter(|(t, ..)| *t >= 30.0)
            .map(|&(_, ms, p99, p999, _)| {
                assert!(p999 >= p99 && p99 >= 0.0, "bucket tails must be ordered");
                ms
            })
            .collect();
        assert!(!pts.is_empty(), "{} has no post-join points", series.system);
        pts.iter().sum::<f64>() / pts.len() as f64
    };
    let find = |set: &[fig10::Series], sys: &str| {
        set.iter().find(|s| s.system == sys).expect("series").clone()
    };
    // Weak reads after the join: Spider stays low (local group in São
    // Paulo); the others read across the WAN.
    let spider_weak = mean_after(&find(&result.weak_reads, "SPIDER"));
    let bft_weak = mean_after(&find(&result.weak_reads, "BFT"));
    assert!(spider_weak < 10.0, "SPIDER weak reads after join: {spider_weak:.1}ms");
    assert!(bft_weak > spider_weak + 10.0, "BFT weak {bft_weak:.1}ms");
    // Writes: the average jumps for everyone (São Paulo is far), and
    // BFT-WV does not beat BFT (the paper's observation).
    let bft_writes = mean_after(&find(&result.writes, "BFT"));
    let wv_writes = mean_after(&find(&result.writes, "BFT-WV"));
    assert!(
        wv_writes > bft_writes * 0.6,
        "weighted voting should not dramatically beat BFT ({wv_writes:.1} vs {bft_writes:.1})"
    );
    let spider_writes = mean_after(&find(&result.writes, "SPIDER"));
    assert!(spider_writes < bft_writes, "SPIDER writes stay lowest");
}

#[test]
fn fig11_f2_increases_latency_moderately_and_spider_still_wins() {
    let mut scenario = quick();
    scenario.clients_per_region = 2;
    scenario.duration = SimTime::from_secs(10);
    let rows = fig11::run(&fig11::Config { scenario });
    let find = |sys_prefix: &str, region: &str| {
        rows.iter()
            .find(|r| r.system.starts_with(sys_prefix) && r.client_region == region)
            .map(|r| r.summary.p50_ms)
            .expect("row present")
    };
    for region in spider_harness::REGIONS4 {
        let s = find("SPIDER(f=2, leader=V-1)", region);
        let b = find("BFT(f=2", region);
        let h = find("HFT(f=2", region);
        assert!(s < b, "{region}: SPIDER {s:.1} !< BFT {b:.1}");
        assert!(s < h, "{region}: SPIDER {s:.1} !< HFT {h:.1}");
    }
    // Moderate increase vs f = 1 for Spider in Virginia (paper: up to
    // ~46ms increase; here: still far below 100ms).
    assert!(find("SPIDER(f=2, leader=V-1)", "virginia") < 100.0);
}

#[test]
fn fig7_render_produces_a_table() {
    let cfg = fig7::Config {
        scenario: ScenarioCfg {
            clients_per_region: 2,
            duration: SimTime::from_secs(6),
            warmup: SimTime::from_secs(1),
            ..ScenarioCfg::default()
        },
        only: Some("SPIDER"),
    };
    let rows = fig7::run(&cfg);
    let table = fig7::render(&rows);
    assert!(table.contains("Figure 7"));
    assert!(table.contains("SPIDER(leader=V-1)"));
    assert!(rows.len() >= 4, "one row per region at least");
}
