//! CSV export of regenerated figure data.
//!
//! The renderers in [`crate::experiments`] print human-readable tables;
//! these helpers produce machine-readable CSV so the figures can be
//! re-plotted (gnuplot, matplotlib, …) without parsing text tables. The
//! `paper_figures` example writes one file per figure when
//! `SPIDER_OUT=<dir>` is set.

use crate::experiments::fig10::Series;
use crate::experiments::fig9bcd::IrmcRow;
use crate::experiments::LatencyRow;

/// Escapes one CSV field (quotes only when needed).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Latency rows (Figures 7, 8a/b, 9a, 11) as CSV.
///
/// Columns: `system,client_region,p50_ms,p90_ms,p99_ms,p999_ms,mean_ms,samples`.
pub fn latency_rows_to_csv(rows: &[LatencyRow]) -> String {
    let mut out =
        String::from("system,client_region,p50_ms,p90_ms,p99_ms,p999_ms,mean_ms,samples\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{}\n",
            field(&r.system),
            field(&r.client_region),
            r.summary.p50_ms,
            r.summary.p90_ms,
            r.summary.p99_ms,
            r.summary.p999_ms,
            r.summary.mean_ms,
            r.summary.count
        ));
    }
    out
}

/// IRMC microbenchmark rows (Figures 9b–9d) as CSV.
///
/// Columns:
/// `variant,msg_size,throughput_rps,sender_cpu,receiver_cpu,wan_mbps,lan_mbps`.
pub fn irmc_rows_to_csv(rows: &[IrmcRow]) -> String {
    let mut out =
        String::from("variant,msg_size,throughput_rps,sender_cpu,receiver_cpu,wan_mbps,lan_mbps\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.1},{:.4},{:.4},{:.3},{:.3}\n",
            field(&r.variant),
            r.msg_size,
            r.throughput_rps,
            r.sender_cpu,
            r.receiver_cpu,
            r.wan_mbps,
            r.lan_mbps
        ));
    }
    out
}

/// Timeline series (Figure 10) as long-format CSV.
///
/// Columns: `system,t_seconds,mean_ms,p99_ms,p999_ms,samples`.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("system,t_seconds,mean_ms,p99_ms,p999_ms,samples\n");
    for s in series {
        for (t, ms, p99, p999, n) in &s.points {
            out.push_str(&format!("{},{t:.1},{ms:.3},{p99:.3},{p999:.3},{n}\n", field(&s.system)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LatencySummary;

    fn row(system: &str, region: &str) -> LatencyRow {
        LatencyRow {
            system: system.to_owned(),
            client_region: region.to_owned(),
            summary: LatencySummary {
                count: 3,
                p50_ms: 1.5,
                p90_ms: 2.5,
                p99_ms: 2.9,
                p999_ms: 2.99,
                mean_ms: 1.75,
            },
        }
    }

    #[test]
    fn latency_csv_has_header_and_rows() {
        let csv = latency_rows_to_csv(&[row("SPIDER(leader=V-1)", "tokyo")]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "system,client_region,p50_ms,p90_ms,p99_ms,p999_ms,mean_ms,samples"
        );
        assert_eq!(
            lines.next().unwrap(),
            "SPIDER(leader=V-1),tokyo,1.500,2.500,2.900,2.990,1.750,3"
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let csv = latency_rows_to_csv(&[row("BFT(a,b)", "x\"y")]);
        assert!(csv.contains("\"BFT(a,b)\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn series_csv_is_long_format() {
        let s = Series {
            system: "SPIDER".to_owned(),
            points: vec![(0.0, 1.7, 2.4, 2.9, 10), (2.0, 1.8, 2.5, 3.1, 12)],
        };
        let csv = series_to_csv(&[s]);
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "system,t_seconds,mean_ms,p99_ms,p999_ms,samples");
        assert!(csv.contains("SPIDER,0.0,1.700,2.400,2.900,10"));
        assert!(csv.contains("SPIDER,2.0,1.800,2.500,3.100,12"));
    }

    #[test]
    fn irmc_csv_roundtrips_fields() {
        let r = IrmcRow {
            variant: "IRMC-RC".to_owned(),
            msg_size: 256,
            throughput_rps: 1242.0,
            sender_cpu: 0.77,
            receiver_cpu: 0.19,
            wan_mbps: 6.9,
            lan_mbps: 0.0,
        };
        let csv = irmc_rows_to_csv(&[r]);
        assert!(csv.contains("IRMC-RC,256,1242.0,0.7700,0.1900,6.900,0.000"));
    }
}
