//! Figure 9a: modularity impact — Spider-0E (agreement group executes
//! directly), Spider-1E (one execution group co-located in Virginia), and
//! full Spider, for 200-byte writes.
//!
//! Paper result: wide-area client-replica distance dominates; the
//! IRMC/externalized-execution machinery adds less than 14 ms.

use super::LatencyRow;
use crate::scenarios::{run_scenario, ScenarioCfg, SystemKind};
use crate::stats::LatencySummary;

/// Scale configuration for Figure 9a.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Scenario scale.
    pub scenario: ScenarioCfg,
}

const SYSTEMS: [SystemKind; 3] =
    [SystemKind::Spider0E, SystemKind::Spider1E, SystemKind::Spider { leader_zone: 0 }];

/// Runs the three variants; one row per (variant, region).
pub fn run(cfg: &Config) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for kind in SYSTEMS {
        for (region, s) in run_scenario(kind, &cfg.scenario) {
            if let Some(summary) = LatencySummary::of_samples(&s) {
                rows.push(LatencyRow { system: kind.to_string(), client_region: region, summary });
            }
        }
    }
    rows
}

/// Renders the result table.
pub fn render(rows: &[LatencyRow]) -> String {
    super::render_rows(
        "Figure 9a — modularity impact: SPIDER-0E vs SPIDER-1E vs SPIDER (200-byte writes)",
        rows,
    )
}
