//! Figure 7: write latencies per client region for different leader
//! locations, across BFT, HFT, and Spider.
//!
//! Paper result: BFT/HFT latencies vary strongly with both the client's
//! region and the leader's region; Spider's depend only on the client's
//! distance to the agreement group, and moving the consensus leader
//! between Virginia availability zones changes nothing.

use super::LatencyRow;
use crate::scenarios::{run_scenario, ScenarioCfg, SystemKind};
use crate::stats::LatencySummary;

/// Scale configuration for the Figure 7 sweep.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Scenario scale (clients, rate, duration, seed).
    pub scenario: ScenarioCfg,
    /// Restrict to one system family for quick runs (`None` = all).
    pub only: Option<&'static str>,
}

/// The leader placements evaluated by the paper: every region for BFT and
/// HFT; Virginia zones 1, 2, 4, 6 for Spider.
pub fn systems() -> Vec<SystemKind> {
    let mut v = Vec::new();
    for leader in 0..4 {
        v.push(SystemKind::Bft { leader });
    }
    for leader_site in 0..4 {
        v.push(SystemKind::Hft { leader_site });
    }
    for leader_zone in [0u8, 1, 3, 5] {
        v.push(SystemKind::Spider { leader_zone });
    }
    v
}

/// Runs the sweep; one row per (system, client region).
pub fn run(cfg: &Config) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    for kind in systems() {
        if let Some(filter) = cfg.only {
            if !kind.to_string().starts_with(filter) {
                continue;
            }
        }
        let samples = run_scenario(kind, &cfg.scenario);
        for (region, s) in samples {
            if let Some(summary) = LatencySummary::of_samples(&s) {
                rows.push(LatencyRow { system: kind.to_string(), client_region: region, summary });
            }
        }
    }
    rows
}

/// Renders the result table.
pub fn render(rows: &[LatencyRow]) -> String {
    super::render_rows(
        "Figure 7 — write latency (p50/p90/p99/p99.9) by client region and leader location",
        rows,
    )
}
