//! Batching ablation: fixed vs adaptive consensus batching across
//! offered load.
//!
//! The paper's batch-size ablation shows consensus batch size is a
//! first-order latency/throughput knob. This experiment sweeps offered
//! load against three leader batching policies:
//!
//! * **greedy** — the legacy default: propose whatever is pending, at
//!   most `max_batch` per instance, immediately (`batch_delay = 0`),
//! * **fixed** — fixed-size batching: wait for a full `max_batch` (or
//!   the linger cap) before proposing,
//! * **adaptive** — rate-adaptive sizing within the same linger cap: the
//!   target batch size follows the measured arrival rate, so low load
//!   proposes immediately and high load fills large batches.
//!
//! The deployment is the two-execution-group shape (agreement +
//! Virginia group + Oregon group): with two commit channels, the
//! agreement replicas — not the execution replicas — are the saturating
//! resource, so the consensus batching policy is what the sweep actually
//! measures.
//!
//! Expected shape (and what the CI bench summary records): at low load
//! adaptive beats fixed on p50 (no pointless linger) and edges out
//! greedy (burst coalescing); at high load adaptive beats greedy on
//! throughput and latency (larger batches amortize the per-instance
//! agreement cost) while matching fixed, whose linger is what costs it
//! the low-load end. No static policy matches adaptive at both ends.

use crate::stats::LatencySummary;
use crate::topology::ec2_topology;
use spider::{DeploymentBuilder, Sample, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_sim::Simulation;
use spider_types::SimTime;

/// A leader batching policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Legacy greedy cut: `pending.len().min(max_batch)`, proposed
    /// immediately.
    Greedy,
    /// Fixed-size batching with a linger cap.
    Fixed,
    /// Rate-adaptive batching within the same linger cap.
    Adaptive,
}

impl Mode {
    /// All modes, sweep order.
    pub const ALL: [Mode; 3] = [Mode::Greedy, Mode::Fixed, Mode::Adaptive];
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Greedy => write!(f, "greedy"),
            Mode::Fixed => write!(f, "fixed"),
            Mode::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// One load point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Load {
    /// Number of (closed-loop) clients.
    pub clients: usize,
    /// Mean issue attempts per second per client.
    pub rate_per_client: f64,
}

impl Load {
    /// Offered load in requests per second.
    pub fn offered_rps(&self) -> f64 {
        self.clients as f64 * self.rate_per_client
    }
}

/// Scale configuration of the ablation sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Load points, low to high.
    pub loads: Vec<Load>,
    /// Measurement duration per point.
    pub duration: SimTime,
    /// Warm-up cut.
    pub warmup: SimTime,
    /// Linger cap used by the fixed and adaptive policies.
    pub linger: SimTime,
    /// Batch-size cap of the fixed policy (the paper's default).
    pub fixed_max_batch: usize,
    /// Batch-size ceiling the adaptive policy may grow into.
    pub adaptive_max_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            loads: vec![
                Load { clients: 4, rate_per_client: 2.0 },
                Load { clients: 24, rate_per_client: 8.0 },
                Load { clients: 96, rate_per_client: 20.0 },
            ],
            duration: SimTime::from_secs(10),
            warmup: SimTime::from_secs(2),
            linger: SimTime::from_millis(5),
            fixed_max_batch: 8,
            adaptive_max_batch: 64,
            seed: 11,
        }
    }
}

/// One measured `(mode, load)` cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Batching policy label.
    pub mode: String,
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Latency summary of the agreement-local (Virginia) clients, the
    /// clean consensus-latency signal (after warm-up).
    pub summary: LatencySummary,
    /// Completed requests per second across all clients (after warm-up).
    pub throughput_rps: f64,
}

/// The deployment configuration a mode induces.
pub fn spider_config(mode: Mode, cfg: &Config) -> SpiderConfig {
    let base = SpiderConfig { max_batch: cfg.fixed_max_batch, ..SpiderConfig::default() };
    match mode {
        Mode::Greedy => base,
        Mode::Fixed => SpiderConfig { batch_delay: cfg.linger, ..base },
        Mode::Adaptive => base.with_adaptive_batching(cfg.linger, cfg.adaptive_max_batch),
    }
}

fn run_point(mode: Mode, load: Load, cfg: &Config) -> Option<Row> {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut dep = DeploymentBuilder::new(spider_config(mode, cfg))
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("oregon")
        .build(&mut sim);
    let workload = WorkloadSpec {
        rate_per_sec: load.rate_per_client,
        payload_bytes: 200,
        write_fraction: 1.0,
        strong_read_fraction: 0.0,
        max_ops: 0,
        start_delay: SimTime::from_millis(200),
        op_factory: kv_op_factory(1000),
    };
    dep.spawn_clients(&mut sim, 0, load.clients / 2, workload.clone());
    dep.spawn_clients(&mut sim, 1, load.clients - load.clients / 2, workload);
    sim.run_until(cfg.duration);
    let collected = dep.collect_samples(&sim);
    let all: Vec<Sample> = collected
        .iter()
        .flat_map(|(_, _, s)| s.iter().copied())
        .filter(|s| s.completed >= cfg.warmup)
        .collect();
    let virginia: Vec<Sample> = collected
        .iter()
        .filter(|(_, g, _)| g.0 == 0)
        .flat_map(|(_, _, s)| s.iter().copied())
        .filter(|s| s.completed >= cfg.warmup)
        .collect();
    let summary = LatencySummary::of_samples(&virginia)?;
    let measured = (cfg.duration - cfg.warmup).as_secs_f64();
    Some(Row {
        mode: mode.to_string(),
        offered_rps: load.offered_rps(),
        summary,
        throughput_rps: all.len() as f64 / measured,
    })
}

/// Runs the full sweep: every mode at every load point.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &load in &cfg.loads {
        for mode in Mode::ALL {
            rows.extend(run_point(mode, load, cfg));
        }
    }
    rows
}

/// Renders the sweep as an aligned text table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "Batching ablation — fixed vs adaptive consensus batching across offered load\n",
    );
    out.push_str(&format!(
        "{:<10} {:>12} {:>9} {:>9} {:>12}\n",
        "mode", "offered[r/s]", "p50[ms]", "p90[ms]", "thruput[r/s]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>12.0} {:>9.1} {:>9.1} {:>12.0}\n",
            r.mode, r.offered_rps, r.summary.p50_ms, r.summary.p90_ms, r.throughput_rps
        ));
    }
    out
}
