//! Figure 11: write latencies when tolerating `f = 2` faults per group.
//!
//! Extra replicas go to nearby regions for additional fault domains
//! (Virginia+Ohio, Oregon+California, Ireland+London, Tokyo+Seoul).
//! Paper result: HFT and Spider pay a moderate increase (larger groups
//! communicate across neighboring regions), with Spider still clearly
//! below BFT and HFT.

use super::LatencyRow;
use crate::scenarios::ScenarioCfg;
use crate::stats::LatencySummary;
use crate::topology::{ec2_topology, NEIGHBORS4, REGIONS4};
use spider::{DeploymentBuilder, Sample, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_baselines::{BftDeployment, StewardDeployment};
use spider_sim::Simulation;
use spider_types::SimTime;

/// Scale configuration for Figure 11.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Scenario scale (the `f` field is overridden to 2).
    pub scenario: ScenarioCfg,
}

fn f2_config() -> SpiderConfig {
    SpiderConfig::default().with_faults(2, 2)
}

fn workload(cfg: &ScenarioCfg) -> WorkloadSpec {
    WorkloadSpec {
        rate_per_sec: cfg.rate_per_client,
        payload_bytes: cfg.payload,
        write_fraction: 1.0,
        strong_read_fraction: 0.0,
        max_ops: 0,
        start_delay: SimTime::from_millis(200),
        op_factory: kv_op_factory(1000),
    }
}

fn summarize(
    system: &str,
    samples: Vec<(String, Vec<Sample>)>,
    warmup: SimTime,
    rows: &mut Vec<LatencyRow>,
) {
    for (region, s) in samples {
        let kept: Vec<Sample> = s.into_iter().filter(|x| x.completed >= warmup).collect();
        if let Some(summary) = LatencySummary::of_samples(&kept) {
            rows.push(LatencyRow { system: system.to_owned(), client_region: region, summary });
        }
    }
}

fn run_bft_f2(cfg: &ScenarioCfg, rows: &mut Vec<LatencyRow>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    // Seven replicas: the four client regions plus three fault domains.
    let regions = ["virginia", "oregon", "ireland", "tokyo", "ohio", "california", "london"];
    let mut dep = BftDeployment::build(&mut sim, f2_config(), &regions, KvStore::new);
    let mut client_nodes = Vec::new();
    for region in REGIONS4 {
        let nodes = dep.spawn_clients(&mut sim, region, cfg.clients_per_region, workload(cfg));
        client_nodes.push((region.to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let samples = client_nodes
        .into_iter()
        .map(|(r, nodes)| {
            let s: Vec<Sample> = nodes
                .iter()
                .flat_map(|n| sim.actor::<spider_baselines::BaselineClient>(*n).samples.clone())
                .collect();
            (r, s)
        })
        .collect();
    summarize("BFT(f=2, leader=virginia)", samples, cfg.warmup, rows);
}

fn run_hft_f2(cfg: &ScenarioCfg, rows: &mut Vec<LatencyRow>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    // Each site: seven replicas cycling home region + neighbor.
    let spans: Vec<Vec<&str>> = REGIONS4
        .iter()
        .zip(NEIGHBORS4.iter())
        .map(|(home, neighbor)| vec![*home, *neighbor])
        .collect();
    let mut dep = StewardDeployment::build_span(&mut sim, f2_config(), &spans, 0, KvStore::new);
    let mut client_nodes = Vec::new();
    for (si, region) in REGIONS4.iter().enumerate() {
        let nodes =
            dep.spawn_clients(&mut sim, si as u16, region, cfg.clients_per_region, workload(cfg));
        client_nodes.push(((*region).to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let samples = client_nodes
        .into_iter()
        .map(|(r, nodes)| {
            let s: Vec<Sample> = nodes
                .iter()
                .flat_map(|n| sim.actor::<spider_baselines::BaselineClient>(*n).samples.clone())
                .collect();
            (r, s)
        })
        .collect();
    summarize("HFT(f=2, leader-site=virginia)", samples, cfg.warmup, rows);
}

fn run_spider_f2(leader_zone: u8, cfg: &ScenarioCfg, rows: &mut Vec<LatencyRow>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    // Agreement: 7 replicas over Virginia's six zones plus one in Ohio.
    // Execution groups: 5 replicas, three in the home region + two in the
    // neighbor.
    let ag_span = ["virginia", "virginia", "virginia", "virginia", "virginia", "virginia", "ohio"];
    let mut ordered = ag_span.to_vec();
    ordered.rotate_left(leader_zone as usize % 6);
    let mut builder =
        DeploymentBuilder::new(f2_config()).with_app(KvStore::new).agreement_span(&ordered);
    for (home, neighbor) in REGIONS4.iter().zip(NEIGHBORS4.iter()) {
        builder = builder.execution_group_span(&[home, home, home, neighbor, neighbor]);
    }
    let mut dep = builder.build(&mut sim);
    let mut client_nodes = Vec::new();
    for (gi, region) in REGIONS4.iter().enumerate() {
        let nodes = dep.spawn_clients(&mut sim, gi, cfg.clients_per_region, workload(cfg));
        client_nodes.push(((*region).to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let samples = client_nodes
        .into_iter()
        .map(|(r, nodes)| {
            let s: Vec<Sample> = nodes
                .iter()
                .flat_map(|n| sim.actor::<spider::SpiderClient>(*n).samples.clone())
                .collect();
            (r, s)
        })
        .collect();
    summarize(&format!("SPIDER(f=2, leader=V-{})", leader_zone + 1), samples, cfg.warmup, rows);
}

/// Runs the `f = 2` comparison.
pub fn run(cfg: &Config) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    run_bft_f2(&cfg.scenario, &mut rows);
    run_hft_f2(&cfg.scenario, &mut rows);
    for leader_zone in [0u8, 1, 3, 5] {
        run_spider_f2(leader_zone, &cfg.scenario, &mut rows);
    }
    rows
}

/// Renders the result table.
pub fn render(rows: &[LatencyRow]) -> String {
    super::render_rows("Figure 11 — write latency (p50/p90) when tolerating f = 2 faults", rows)
}
