//! Figure 10: adaptability — response time over time when a new client
//! site (São Paulo) joins a running system.
//!
//! Paper result: all systems see the *average* write latency jump when
//! the distant São Paulo clients join (their requests are slow
//! everywhere; existing clients are unaffected). Weighted voting does not
//! help (the São Paulo replica never improves quorums). Only Spider lets
//! the new clients read with local latency, by spinning up an execution
//! group in their region at runtime (§3.6).

use crate::stats::{timeline, LatencySummary};
use crate::topology::{ec2_topology, REGIONS4, REGIONS5};
use spider::{DeploymentBuilder, Sample, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_baselines::{BftDeployment, StewardDeployment};
use spider_sim::Simulation;
use spider_types::SimTime;

/// Scale configuration for Figure 10.
#[derive(Debug, Clone)]
pub struct Config {
    /// Clients per region.
    pub clients_per_region: usize,
    /// Mean requests/second per client.
    pub rate_per_client: f64,
    /// Total run length.
    pub duration: SimTime,
    /// When the São Paulo clients start (paper: t = 80 s).
    pub join_at: SimTime,
    /// Timeline bucket width.
    pub bucket: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            clients_per_region: 6,
            rate_per_client: 2.0,
            duration: SimTime::from_secs(110),
            join_at: SimTime::from_secs(80),
            bucket: SimTime::from_secs(2),
            seed: 42,
        }
    }
}

/// A response-time-over-time series for one system.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Series {
    /// System label.
    pub system: String,
    /// `(bucket start seconds, mean ms, p99 ms, p99.9 ms, samples)`
    /// points.
    pub points: Vec<(f64, f64, f64, f64, usize)>,
}

fn workload(cfg: &Config, weak_reads: bool, start: SimTime) -> WorkloadSpec {
    WorkloadSpec {
        rate_per_sec: cfg.rate_per_client,
        payload_bytes: 200,
        write_fraction: if weak_reads { 0.0 } else { 1.0 },
        strong_read_fraction: 0.0,
        max_ops: 0,
        start_delay: start,
        op_factory: kv_op_factory(1000),
    }
}

fn to_series(system: &str, samples: Vec<Sample>, cfg: &Config) -> Series {
    let points = timeline(&samples, cfg.bucket, cfg.duration)
        .into_iter()
        .map(|b| (b.start.as_secs_f64(), b.mean_ms, b.p99_ms, b.p999_ms, b.count))
        .collect();
    Series { system: system.to_owned(), points }
}

fn run_bft(cfg: &Config, weak: bool, weighted: bool) -> (String, Vec<Sample>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut dep = if weighted {
        // Five replicas including São Paulo; Vmax weights in Virginia and
        // Oregon (the paper's best-performing assignment).
        BftDeployment::build_weighted(
            &mut sim,
            SpiderConfig::default(),
            &REGIONS5,
            1,
            &[0, 1],
            KvStore::new,
        )
    } else {
        BftDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS4, KvStore::new)
    };
    for region in REGIONS4 {
        dep.spawn_clients(
            &mut sim,
            region,
            cfg.clients_per_region,
            workload(cfg, weak, SimTime::from_millis(200)),
        );
    }
    // The São Paulo clients exist from the start but stay silent until
    // `join_at` (their workload's start delay).
    dep.spawn_clients(
        &mut sim,
        "saopaulo",
        cfg.clients_per_region,
        workload(cfg, weak, cfg.join_at),
    );
    sim.run_until(cfg.duration);
    let samples: Vec<Sample> = dep.collect_samples(&sim).into_iter().flat_map(|(_, s)| s).collect();
    ((if weighted { "BFT-WV" } else { "BFT" }).to_owned(), samples)
}

fn run_hft(cfg: &Config, weak: bool) -> (String, Vec<Sample>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut dep =
        StewardDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS4, 0, KvStore::new);
    for (si, region) in REGIONS4.iter().enumerate() {
        dep.spawn_clients(
            &mut sim,
            si as u16,
            region,
            cfg.clients_per_region,
            workload(cfg, weak, SimTime::from_millis(200)),
        );
    }
    // New clients contact their nearest existing site: Virginia (site 0)
    // is closest to São Paulo in this matrix.
    dep.spawn_clients(
        &mut sim,
        0,
        "saopaulo",
        cfg.clients_per_region,
        workload(cfg, weak, cfg.join_at),
    );
    sim.run_until(cfg.duration);
    let samples: Vec<Sample> =
        dep.collect_samples(&sim).into_iter().flat_map(|(_, _, s)| s).collect();
    ("HFT".to_owned(), samples)
}

fn run_spider(cfg: &Config, weak: bool) -> (String, Vec<Sample>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut builder = DeploymentBuilder::new(SpiderConfig::default())
        .with_app(KvStore::new)
        .agreement_region("virginia");
    for r in REGIONS4 {
        builder = builder.execution_group(r);
    }
    let mut dep = builder.build(&mut sim);
    for gi in 0..REGIONS4.len() {
        dep.spawn_clients(
            &mut sim,
            gi,
            cfg.clients_per_region,
            workload(cfg, weak, SimTime::from_millis(200)),
        );
    }
    // A São Paulo execution group is added shortly before the clients
    // arrive (§3.6), then serves them locally.
    let lead_time = SimTime::from_secs(3);
    dep.add_execution_group(&mut sim, "saopaulo", cfg.join_at.saturating_sub(lead_time));
    let gi = dep.groups.len() - 1;
    dep.spawn_clients(&mut sim, gi, cfg.clients_per_region, workload(cfg, weak, cfg.join_at));
    sim.run_until(cfg.duration);
    let samples: Vec<Sample> =
        dep.collect_samples(&sim).into_iter().flat_map(|(_, _, s)| s).collect();
    ("SPIDER".to_owned(), samples)
}

/// Runs the four write-workload systems and returns raw samples per
/// system label.
fn run_write_systems(cfg: &Config) -> Vec<(String, Vec<Sample>)> {
    vec![
        run_bft(cfg, false, false),
        run_bft(cfg, false, true),
        run_hft(cfg, false),
        run_spider(cfg, false),
    ]
}

/// Whole-run latency summary + completion throughput of one system.
#[derive(Debug, Clone)]
pub struct SystemSummary {
    /// System label ("BFT", "BFT-WV", "HFT", "SPIDER").
    pub system: String,
    /// Latency distribution over the entire run.
    pub summary: LatencySummary,
    /// Completed requests per second over the entire run.
    pub throughput_rps: f64,
}

/// Runs the write workload of all four systems and summarizes each one
/// (p50/p90/throughput) — the headless counterpart of [`run`] used by the
/// `bench_summary` CI gate.
pub fn run_write_summaries(cfg: &Config) -> Vec<SystemSummary> {
    run_write_systems(cfg)
        .into_iter()
        .filter_map(|(system, samples)| {
            let summary = LatencySummary::of_samples(&samples)?;
            let throughput_rps = samples.len() as f64 / cfg.duration.as_secs_f64();
            Some(SystemSummary { system, summary, throughput_rps })
        })
        .collect()
}

/// Result of the adaptability experiment.
#[derive(Debug, Clone)]
pub struct Result {
    /// Figure 10a: write-latency series.
    pub writes: Vec<Series>,
    /// Figure 10b: weak-read-latency series.
    pub weak_reads: Vec<Series>,
}

/// Runs all four systems for writes and weak reads.
pub fn run(cfg: &Config) -> Result {
    let writes = run_write_systems(cfg)
        .into_iter()
        .map(|(system, samples)| to_series(&system, samples, cfg))
        .collect();
    let weak_reads = vec![
        run_bft(cfg, true, false),
        run_bft(cfg, true, true),
        run_hft(cfg, true),
        run_spider(cfg, true),
    ]
    .into_iter()
    .map(|(system, samples)| to_series(&system, samples, cfg))
    .collect();
    Result { writes, weak_reads }
}

fn render_series(title: &str, series: &[Series]) -> String {
    let mut out = String::from(title);
    out.push('\n');
    for s in series {
        out.push_str(&format!("  {}:\n", s.system));
        for (t, ms, p99, p999, n) in &s.points {
            out.push_str(&format!(
                "    t={t:>6.1}s  mean={ms:>7.1}ms  p99={p99:>7.1}ms  p99.9={p999:>7.1}ms  n={n}\n"
            ));
        }
    }
    out
}

/// Renders both sub-figures as text.
pub fn render(result: &Result) -> String {
    let mut out = render_series(
        "Figure 10a — average write latency over time (São Paulo clients join)",
        &result.writes,
    );
    out.push('\n');
    out.push_str(&render_series(
        "Figure 10b — average weakly consistent read latency over time",
        &result.weak_reads,
    ));
    out
}
