//! Figure 8: read latencies — strongly consistent (8a) and weakly
//! consistent (8b) — for BFT, HFT, and Spider with leaders in Virginia.
//!
//! Paper result: strong reads follow the write path everywhere. Weak
//! reads are ~2 ms in HFT and Spider (answered by the local cluster /
//! execution group) but require wide-area communication in BFT (a client
//! needs `f + 1` matching replies and only one replica is local).

use super::LatencyRow;
use crate::scenarios::{run_scenario, ScenarioCfg, SystemKind};
use crate::stats::LatencySummary;

/// Scale configuration for Figure 8.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Scenario scale.
    pub scenario: ScenarioCfg,
}

/// Result: rows for strong reads (8a) and weak reads (8b).
#[derive(Debug, Clone)]
pub struct Result {
    /// Figure 8a rows.
    pub strong: Vec<LatencyRow>,
    /// Figure 8b rows.
    pub weak: Vec<LatencyRow>,
}

const SYSTEMS: [SystemKind; 3] = [
    SystemKind::Bft { leader: 0 },
    SystemKind::Hft { leader_site: 0 },
    SystemKind::Spider { leader_zone: 0 },
];

/// Runs both read experiments.
pub fn run(cfg: &Config) -> Result {
    let mut strong_rows = Vec::new();
    let mut weak_rows = Vec::new();
    for kind in SYSTEMS {
        // Strong reads.
        let mut sc = cfg.scenario.clone();
        sc.write_fraction = 0.0;
        sc.strong_read_fraction = 1.0;
        for (region, s) in run_scenario(kind, &sc) {
            if let Some(summary) = LatencySummary::of_samples(&s) {
                strong_rows.push(LatencyRow {
                    system: kind.to_string(),
                    client_region: region,
                    summary,
                });
            }
        }
        // Weak reads.
        let mut wc = cfg.scenario.clone();
        wc.write_fraction = 0.0;
        wc.strong_read_fraction = 0.0;
        for (region, s) in run_scenario(kind, &wc) {
            if let Some(summary) = LatencySummary::of_samples(&s) {
                weak_rows.push(LatencyRow {
                    system: kind.to_string(),
                    client_region: region,
                    summary,
                });
            }
        }
    }
    Result { strong: strong_rows, weak: weak_rows }
}

/// Renders both tables.
pub fn render(result: &Result) -> String {
    let mut out = super::render_rows(
        "Figure 8a — strongly consistent read latency (p50/p90)",
        &result.strong,
    );
    out.push('\n');
    out.push_str(&super::render_rows(
        "Figure 8b — weakly consistent read latency (p50/p90)",
        &result.weak,
    ));
    out
}
