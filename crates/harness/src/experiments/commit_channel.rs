//! Commit-channel microbenchmark: multi-slot range certification vs the
//! legacy per-slot path, on the commit-channel shape of the fig9bcd
//! scenario (4 agreement-side senders, `fa = 1` → 3 execution-side
//! receivers, `fe = 1`, Virginia → Tokyo).
//!
//! Two modes:
//!
//! * **Flood** ([`run_flood`]): every sender keeps the subchannel window
//!   full with `send_batch` ranges of a given size; the busy-server CPU
//!   model yields the saturation throughput in **slots/s** directly.
//!   Range size 1 is the per-slot baseline (one RSA signature per slot on
//!   each sender — the cost PR 2 identified as the high-load plateau).
//! * **Paced** ([`run_paced`]): senders submit one range per interval
//!   well below saturation and receivers record submit→deliver latency
//!   per slot. Used to compare IRMC-SC **overlapped** shipping (§A.9:
//!   content ships before shares arrive, certificate follows
//!   shares-only) against ship-after-bundle.

use crate::topology::ec2_topology;
use spider_crypto::{CostModel, Digest, Digestible, Keyring};
use spider_irmc::{
    Action, ChannelMode, ChannelMsg, IrmcConfig, ReceiveResult, ReceiverEndpoint, ReceiverMsg,
    SenderEndpoint, Variant,
};
use spider_sim::{Actor, Context, NodeId, ObsConfig, ObsReport, Simulation, Timer, PHASE_REQUEST};
use spider_types::{Position, SimTime, WireSize};

/// Traced runs record full request spans for every `SAMPLE_STRIDE`-th slot
/// position. Flooding certifies hundreds of thousands of slots per run;
/// sampling keeps the recorder rings representative without letting trace
/// bookkeeping dominate. The stride is prime so it never beats against the
/// power-of-two range sizes the sweep uses.
const SAMPLE_STRIDE: u64 = 97;

/// Whether a slot position is one of the traced samples.
fn sampled(pos: u64) -> bool {
    pos.is_multiple_of(SAMPLE_STRIDE)
}

/// Flood/paced payload: identical content per position on all senders.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    pos: u64,
    size: usize,
}

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        self.size
    }

    fn trace_kind(&self) -> &'static str {
        "commit-slot"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        // Positions start at 1, so sampled ids are always nonzero (the
        // recorder reserves req 0 for "untracked").
        if sampled(self.pos) {
            visit(self.pos);
        }
    }
}

impl Digestible for Blob {
    fn digest(&self) -> Digest {
        Digest::builder().str("commit").u64(self.pos).u64(self.size as u64).finish()
    }
}

/// Transport frames of the benchmark channel.
#[derive(Debug, Clone)]
enum M {
    ToReceiver(ChannelMsg<Blob>),
    ToSender(ReceiverMsg),
    Peer(ChannelMsg<Blob>),
}

impl WireSize for M {
    fn wire_size(&self) -> usize {
        match self {
            M::ToReceiver(m) | M::Peer(m) => m.wire_size(),
            M::ToSender(m) => m.wire_size(),
        }
    }

    fn trace_kind(&self) -> &'static str {
        match self {
            M::ToReceiver(m) | M::Peer(m) => m.trace_kind(),
            M::ToSender(m) => m.trace_kind(),
        }
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        match self {
            M::ToReceiver(m) | M::Peer(m) => m.trace_reqs(visit),
            M::ToSender(_) => {}
        }
    }
}

const TAG_START: u64 = 0;
const TAG_TICK: u64 = 1;
const TAG_SUBMIT: u64 = 2;
const TAG_NEXT: u64 = 3;
const TAG_COLLECTOR: u64 = 100;

struct SenderHost {
    ep: SenderEndpoint<Blob>,
    msg_size: usize,
    range: usize,
    next_pos: u64,
    receivers: Vec<NodeId>,
    peers: Vec<NodeId>,
    sc_tick: bool,
    /// Paced mode: submit one range per interval instead of flooding.
    pace: Option<SimTime>,
    /// Paced mode: stop submitting after this time (drain tail cleanly).
    stop_at: SimTime,
    /// Paced mode: actual submission time per range (first position, at).
    submits: Vec<(u64, SimTime)>,
}

impl SenderHost {
    fn chunk(&mut self, first: u64) -> Vec<Blob> {
        (first..first + self.range as u64).map(|pos| Blob { pos, size: self.msg_size }).collect()
    }

    /// Flood mode: submits ONE range per handler invocation and re-arms a
    /// near-zero timer, so the busy-server CPU model paces submissions at
    /// the node's actual processing rate (a single handler that fills the
    /// whole window would hold every send back until all its CPU work is
    /// charged). The 1 ns re-arm delay lets queued incoming messages win
    /// the tie at the busy boundary — otherwise the pump would starve the
    /// IRMC-SC share exchange and nothing would ever certify.
    fn pump_one(&mut self, ctx: &mut Context<'_, M>) {
        let w = self.ep.window(0);
        let last = self.next_pos + self.range as u64 - 1;
        if w.is_above(Position(last)) {
            return; // The full next range does not fit; resume on WindowMoved.
        }
        let first = self.next_pos.max(w.start().0);
        self.next_pos = first + self.range as u64;
        let msgs = self.chunk(first);
        self.trace_submit(ctx, &msgs);
        let mut actions = Vec::new();
        self.ep.send_batch(0, Position(first), msgs, &mut actions);
        self.apply(ctx, actions);
        ctx.set_timer(SimTime::from_nanos(1), TAG_NEXT);
    }

    fn submit_paced(&mut self, ctx: &mut Context<'_, M>) {
        let mut actions = Vec::new();
        let first = self.next_pos;
        self.next_pos = first + self.range as u64;
        self.submits.push((first, ctx.now()));
        let msgs = self.chunk(first);
        self.trace_submit(ctx, &msgs);
        self.ep.send_batch(0, Position(first), msgs, &mut actions);
        self.apply(ctx, actions);
    }

    /// Opens a request span per sampled slot at submission. All senders
    /// submit every position, so the recorder keeps the earliest enter as
    /// the request's start (later enters fold into the same open span).
    fn trace_submit(&mut self, ctx: &mut Context<'_, M>, msgs: &[Blob]) {
        if !ctx.obs_enabled() {
            return;
        }
        for b in msgs {
            if sampled(b.pos) {
                ctx.span_enter(b.pos, PHASE_REQUEST);
            }
        }
    }

    fn apply(&mut self, ctx: &mut Context<'_, M>, actions: Vec<Action<Blob>>) {
        let mut moved = false;
        for a in actions {
            match a {
                Action::ToReceiver { to, msg } => {
                    let to = self.receivers[to];
                    ctx.edge_for(to, &msg);
                    ctx.send(to, M::ToReceiver(msg));
                }
                Action::ToPeerSender { to, msg } => {
                    let to = self.peers[to];
                    ctx.edge_for(to, &msg);
                    ctx.send(to, M::Peer(msg));
                }
                Action::Charge(c, op) => ctx.charge_op("sender", op, c),
                Action::WindowMoved { .. } | Action::Unblocked { .. } => {
                    moved = true;
                    ctx.health_mark("bench-commit", 0);
                }
                _ => {}
            }
        }
        if ctx.obs_enabled() {
            ctx.health_pending("bench-commit", 0, self.ep.unacked_slots());
        }
        if moved && self.pace.is_none() {
            self.pump_one(ctx);
        }
    }
}

impl Actor<M> for SenderHost {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        // Delay the start until every node exists.
        ctx.set_timer(SimTime::from_millis(1), TAG_START);
        if self.sc_tick {
            ctx.set_timer(SimTime::from_millis(20), TAG_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        let mut actions = Vec::new();
        match msg {
            M::ToSender(m) => {
                let Some(idx) = self.receivers.iter().position(|n| *n == from) else {
                    return;
                };
                let _ = self.ep.on_receiver_message(idx, m, &mut actions);
            }
            M::Peer(m) => {
                let Some(idx) = self.peers.iter().position(|n| *n == from) else {
                    return;
                };
                let _ = self.ep.on_peer_message(idx, m, &mut actions);
            }
            M::ToReceiver(_) => return,
        }
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: Timer) {
        match timer.tag {
            TAG_START => match self.pace {
                None => self.pump_one(ctx),
                Some(interval) => {
                    self.submit_paced(ctx);
                    ctx.set_timer(interval, TAG_SUBMIT);
                }
            },
            TAG_NEXT => self.pump_one(ctx),
            TAG_SUBMIT if ctx.now() < self.stop_at => {
                self.submit_paced(ctx);
                let interval = self.pace.expect("paced");
                ctx.set_timer(interval, TAG_SUBMIT);
            }
            TAG_TICK => {
                let mut actions = Vec::new();
                self.ep.tick(ctx.now(), &mut actions);
                self.apply(ctx, actions);
                ctx.set_timer(SimTime::from_millis(20), TAG_TICK);
            }
            _ => {}
        }
    }
}

struct ReceiverHost {
    ep: ReceiverEndpoint<Blob>,
    next: u64,
    delivered: u64,
    /// Paced mode: (position, delivery time) per delivered slot.
    deliveries: Vec<(u64, SimTime)>,
    record: bool,
    senders: Vec<NodeId>,
    /// Move the window forward after this many deliveries.
    move_every: u64,
}

impl ReceiverHost {
    fn drain(&mut self, ctx: &mut Context<'_, M>) {
        let mut actions = Vec::new();
        let before = self.delivered;
        loop {
            match self.ep.try_receive(0, Position(self.next)) {
                ReceiveResult::Ready(_) => {
                    self.delivered += 1;
                    if self.record {
                        self.deliveries.push((self.next, ctx.now()));
                    }
                    if sampled(self.next) && ctx.obs_enabled() {
                        ctx.span_exit(self.next, PHASE_REQUEST);
                    }
                    self.next += 1;
                    if self.delivered.is_multiple_of(self.move_every) {
                        self.ep.move_window(0, Position(self.next), &mut actions);
                    }
                }
                ReceiveResult::TooOld(start) => {
                    self.next = start.0;
                }
                ReceiveResult::Pending => break,
            }
        }
        // Receiver-side progress mark, mirroring the core stack: the
        // watchdog follows delivery cadence, not window-move cadence.
        if self.delivered > before && ctx.obs_enabled() {
            ctx.health_mark("bench-commit", 0);
        }
        self.apply(ctx, actions);
    }

    fn apply(&mut self, ctx: &mut Context<'_, M>, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    let to = self.senders[to];
                    ctx.edge_for(to, &msg);
                    ctx.send(to, M::ToSender(msg));
                }
                Action::Charge(c, op) => ctx.charge_op("receiver", op, c),
                Action::SetTimer { token, delay } => {
                    ctx.set_timer(delay, TAG_COLLECTOR + token);
                }
                _ => {}
            }
        }
    }
}

impl Actor<M> for ReceiverHost {
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        let M::ToReceiver(m) = msg else { return };
        let Some(idx) = self.senders.iter().position(|n| *n == from) else {
            return;
        };
        let mut actions = Vec::new();
        let _ = self.ep.on_sender_message(ctx.now(), idx, m, &mut actions);
        self.apply(ctx, actions);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: Timer) {
        if timer.tag >= TAG_COLLECTOR {
            let mut actions = Vec::new();
            // A `CarrierTimeout` is informational: the refetch frames it
            // triggered are already in `actions`.
            let _ = self.ep.on_timer(timer.tag - TAG_COLLECTOR, ctx.now(), &mut actions);
            self.apply(ctx, actions);
        }
    }
}

/// One measurement of the commit-channel benchmark.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CommitRow {
    /// Channel variant.
    pub variant: String,
    /// Slots per range certificate (1 = legacy per-slot).
    pub range: usize,
    /// Payload size per slot in bytes.
    pub msg_size: usize,
    /// Delivered slots per second (averaged over receivers).
    pub slots_per_sec: f64,
    /// Mean CPU utilization of sender endpoints (0..1).
    pub sender_cpu: f64,
    /// Mean CPU utilization of receiver endpoints (0..1).
    pub receiver_cpu: f64,
    /// Paced mode: p50 submit→deliver commit latency (ms); NaN for flood.
    pub commit_p50_ms: f64,
    /// Paced mode: p99 submit→deliver commit latency (ms); NaN for flood.
    pub commit_p99_ms: f64,
}

/// Scale configuration of the commit-channel benchmark.
#[derive(Debug, Clone)]
pub struct Config {
    /// Payload size per slot (commit channels carry small `Execute`s).
    pub msg_size: usize,
    /// Measurement duration per point.
    pub duration: SimTime,
    /// Subchannel capacity (in-flight positions).
    pub capacity: u64,
    /// Paced mode: interval between range submissions.
    pub pace: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            msg_size: 512,
            duration: SimTime::from_secs(3),
            // Large enough that the CPU cost model — not flow control —
            // is the binding constraint at saturation (the window admits
            // ~200k slots/s at this capacity over a 160 ms RTT; the
            // fastest variant, digest-only dedup RC, saturates near
            // 137k).
            capacity: 32768,
            pace: SimTime::from_millis(50),
            seed: 42,
        }
    }
}

struct RunOutcome {
    slots_per_sec: f64,
    sender_cpu: f64,
    receiver_cpu: f64,
    commit_p50_ms: f64,
    commit_p99_ms: f64,
    obs: Option<ObsReport>,
}

fn run_inner(
    mode: ChannelMode,
    range: usize,
    paced: bool,
    traced: bool,
    cfg: &Config,
) -> RunOutcome {
    let mut sim: Simulation<M> = Simulation::new(ec2_topology(), cfg.seed);
    if traced {
        sim.enable_obs(ObsConfig::default());
    }
    let n_senders = 4; // Agreement group, fa = 1.
    let n_receivers = 3; // Execution group, fe = 1.
    let icfg = IrmcConfig::new(mode, n_senders, 1, n_receivers, 1, cfg.capacity)
        .with_cost(CostModel::default())
        .with_range(range.max(1), SimTime::ZERO);
    let ring = Keyring::new(7);

    let sender_nodes: Vec<NodeId> = (0..n_senders as u32).map(NodeId).collect();
    let receiver_nodes: Vec<NodeId> =
        (n_senders as u32..(n_senders + n_receivers) as u32).map(NodeId).collect();

    for i in 0..n_senders {
        let zone = sim.topology().zone("virginia", i as u8);
        let host = SenderHost {
            ep: SenderEndpoint::new(icfg.clone(), i, ring.clone()),
            msg_size: cfg.msg_size,
            range: range.max(1),
            next_pos: 1,
            receivers: receiver_nodes.clone(),
            peers: sender_nodes.clone(),
            sc_tick: mode.variant() == Variant::SenderCollect,
            pace: paced.then_some(cfg.pace),
            stop_at: cfg.duration - cfg.pace,
            submits: Vec::new(),
        };
        let id = sim.add_node(zone, host);
        debug_assert_eq!(id, sender_nodes[i]);
    }
    for (j, &expected_id) in receiver_nodes.iter().enumerate() {
        let zone = sim.topology().zone("tokyo", j as u8);
        let host = ReceiverHost {
            ep: ReceiverEndpoint::new(icfg.clone(), j, ring.clone()),
            next: 1,
            delivered: 0,
            deliveries: Vec::new(),
            record: paced,
            senders: sender_nodes.clone(),
            move_every: (cfg.capacity / 8).max(1),
        };
        let id = sim.add_node(zone, host);
        debug_assert_eq!(id, expected_id);
    }

    sim.run_until(cfg.duration);
    let secs = cfg.duration.as_secs_f64();
    let delivered: u64 =
        receiver_nodes.iter().map(|n| sim.actor::<ReceiverHost>(*n).delivered).sum();
    let slots_per_sec = delivered as f64 / n_receivers as f64 / secs;

    let sender_cpu =
        sender_nodes.iter().map(|n| sim.stats().cpu(*n).utilization(cfg.duration)).sum::<f64>()
            / n_senders as f64;
    let receiver_cpu =
        receiver_nodes.iter().map(|n| sim.stats().cpu(*n).utilization(cfg.duration)).sum::<f64>()
            / n_receivers as f64;

    // Paced mode: latency of a slot is measured from the instant its
    // receiver's collector actually submitted the range (each sender
    // records its own submit times — timer schedules slip by the
    // handler's charged CPU, so a fixed schedule would overstate it).
    let (commit_p50_ms, commit_p99_ms) = if paced {
        let mut lat_ms: Vec<f64> = Vec::new();
        for (j, n) in receiver_nodes.iter().enumerate() {
            let collector = j % n_senders;
            let submits = &sim.actor::<SenderHost>(sender_nodes[collector]).submits;
            for &(pos, at) in &sim.actor::<ReceiverHost>(*n).deliveries {
                let first = (pos - 1) / range.max(1) as u64 * range.max(1) as u64 + 1;
                if let Some(&(_, submitted)) = submits.iter().find(|(f, _)| *f == first) {
                    lat_ms.push((at - submitted).as_secs_f64() * 1e3);
                }
            }
        }
        lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if lat_ms.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (crate::stats::percentile(&lat_ms, 50.0), crate::stats::percentile(&lat_ms, 99.0))
        }
    } else {
        (f64::NAN, f64::NAN)
    };

    let obs = traced.then(|| sim.obs().report());
    RunOutcome { slots_per_sec, sender_cpu, receiver_cpu, commit_p50_ms, commit_p99_ms, obs }
}

/// Floods the channel with ranges of `range` slots and returns the
/// saturation throughput point. `mode` selects the fan-in (and, for
/// IRMC-RC, whether digest-only dedup is on — labelled `IRMC-RC-dedup`).
pub fn run_flood(mode: impl Into<ChannelMode>, range: usize, cfg: &Config) -> CommitRow {
    let mode = mode.into();
    let o = run_inner(mode, range, false, false, cfg);
    CommitRow {
        variant: mode.to_string(),
        range,
        msg_size: cfg.msg_size,
        slots_per_sec: o.slots_per_sec,
        sender_cpu: o.sender_cpu,
        receiver_cpu: o.receiver_cpu,
        commit_p50_ms: f64::NAN,
        commit_p99_ms: f64::NAN,
    }
}

/// Like [`run_flood`], but with the simulator's observability recorder
/// enabled: every `Action::Charge` is attributed per (node, component,
/// operation), so the returned [`ObsReport`] carries the CPU breakdown
/// that `bench_summary` folds into a flamegraph.
pub fn run_flood_traced(
    mode: impl Into<ChannelMode>,
    range: usize,
    cfg: &Config,
) -> (CommitRow, ObsReport) {
    let mode = mode.into();
    let o = run_inner(mode, range, false, true, cfg);
    let row = CommitRow {
        variant: mode.to_string(),
        range,
        msg_size: cfg.msg_size,
        slots_per_sec: o.slots_per_sec,
        sender_cpu: o.sender_cpu,
        receiver_cpu: o.receiver_cpu,
        commit_p50_ms: f64::NAN,
        commit_p99_ms: f64::NAN,
    };
    (row, o.obs.expect("traced run records an obs report"))
}

/// Paced submissions measuring submit→deliver commit latency; the mode
/// carries the per-variant knob (e.g. `SenderCast { overlap }` toggles
/// the §A.9 content/share-exchange overlap).
pub fn run_paced(mode: impl Into<ChannelMode>, range: usize, cfg: &Config) -> CommitRow {
    let mode = mode.into();
    let o = run_inner(mode, range, true, false, cfg);
    CommitRow {
        variant: mode.to_string(),
        range,
        msg_size: cfg.msg_size,
        slots_per_sec: o.slots_per_sec,
        sender_cpu: o.sender_cpu,
        receiver_cpu: o.receiver_cpu,
        commit_p50_ms: o.commit_p50_ms,
        commit_p99_ms: o.commit_p99_ms,
    }
}

/// The amortization curve: flood throughput for each range size, for
/// legacy IRMC-RC, digest-only dedup IRMC-RC, and IRMC-SC.
pub fn run_range_sweep(ranges: &[usize], cfg: &Config) -> Vec<CommitRow> {
    let mut rows = Vec::new();
    for mode in [
        ChannelMode::ReliableCast { dedup: false },
        ChannelMode::ReliableCast { dedup: true },
        ChannelMode::SenderCast { overlap: true },
    ] {
        for &r in ranges {
            rows.push(run_flood(mode, r, cfg));
        }
    }
    rows
}

/// Renders commit-channel rows as an aligned text table.
pub fn render(rows: &[CommitRow]) -> String {
    let mut out = String::from(
        "Commit channel — range certification vs per-slot (Virginia->Tokyo, flooded)\n",
    );
    out.push_str(&format!(
        "{:<9} {:>6} {:>8} {:>13} {:>11} {:>13} {:>9} {:>9}\n",
        "variant",
        "range",
        "size[B]",
        "slots/s",
        "sender-cpu",
        "receiver-cpu",
        "p50[ms]",
        "p99[ms]"
    ));
    for r in rows {
        let fmt = |v: f64| if v.is_finite() { format!("{v:.1}") } else { "-".into() };
        out.push_str(&format!(
            "{:<9} {:>6} {:>8} {:>13.0} {:>10.0}% {:>12.0}% {:>9} {:>9}\n",
            r.variant,
            r.range,
            r.msg_size,
            r.slots_per_sec,
            r.sender_cpu * 100.0,
            r.receiver_cpu * 100.0,
            fmt(r.commit_p50_ms),
            fmt(r.commit_p99_ms)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config { duration: SimTime::from_secs(1), ..Config::default() }
    }

    #[test]
    fn flood_range_amortization_beats_per_slot() {
        let cfg = quick();
        let base = run_flood(Variant::ReceiverCollect, 1, &cfg);
        let ranged = run_flood(Variant::ReceiverCollect, 32, &cfg);
        assert_eq!(base.variant, "IRMC-RC");
        assert!(base.slots_per_sec > 0.0);
        assert!(
            ranged.slots_per_sec > 3.0 * base.slots_per_sec,
            "range 32 must deliver >= 3x the per-slot saturation throughput \
             (got {:.0} vs {:.0} slots/s)",
            ranged.slots_per_sec,
            base.slots_per_sec
        );
    }

    #[test]
    fn dedup_cuts_receiver_cpu_per_slot() {
        let cfg = quick();
        let legacy = run_flood(ChannelMode::ReliableCast { dedup: false }, 32, &cfg);
        let dedup = run_flood(ChannelMode::ReliableCast { dedup: true }, 32, &cfg);
        assert_eq!(dedup.variant, "IRMC-RC-dedup");
        assert!(dedup.slots_per_sec > 0.0 && legacy.slots_per_sec > 0.0);
        let legacy_per_slot = legacy.receiver_cpu / legacy.slots_per_sec;
        let dedup_per_slot = dedup.receiver_cpu / dedup.slots_per_sec;
        assert!(
            dedup_per_slot < 0.5 * legacy_per_slot,
            "digest-only fan-in must at least halve per-slot receiver CPU \
             (got {:.3e} vs legacy {:.3e} cpu-s/slot)",
            dedup_per_slot,
            legacy_per_slot
        );
    }

    #[test]
    fn sc_overlap_lowers_commit_latency() {
        // Big ranges of big payloads: the content WAN transfer is long
        // enough that overlapping it with signing + share exchange shows.
        let cfg = Config { msg_size: 16 * 1024, ..quick() };
        let overlapped = run_paced(ChannelMode::SenderCast { overlap: true }, 64, &cfg);
        let after_bundle = run_paced(ChannelMode::SenderCast { overlap: false }, 64, &cfg);
        assert!(overlapped.commit_p50_ms.is_finite() && after_bundle.commit_p50_ms.is_finite());
        assert!(
            overlapped.commit_p50_ms < after_bundle.commit_p50_ms,
            "§A.9 overlap must lower commit latency (got {:.3} vs {:.3} ms)",
            overlapped.commit_p50_ms,
            after_bundle.commit_p50_ms
        );
    }
}
