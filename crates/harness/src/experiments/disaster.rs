//! Disaster suite: scripted multi-region fault scenarios over a
//! [`FaultPlan`], with availability metrics and placement frontiers.
//!
//! The paper argues (§3.4–§3.5) that Spider stays safe under arbitrary
//! WAN disasters and recovers through its own catch-up paths — commit
//! channels stall, back-pressure propagates, checkpoints repair lagging
//! replicas after the network heals. This module turns that argument
//! into four measured scenarios:
//!
//! 1. **Correlated outage** — two regions go dark at once while clients
//!    keep writing; with `z` skippable groups the survivors keep
//!    committing at local speed.
//! 2. **WAN partition** — the agreement group is severed from half the
//!    execution groups at `z = 0`: commit windows fill, back-pressure
//!    stalls *everyone*, and after the heal the backlog drains with zero
//!    lost and zero duplicated operations.
//! 3. **View-change storm** — repeated leader isolation at sub-timeout
//!    intervals forces back-to-back view changes under load.
//! 4. **Placement sweep** — varies which region hosts agreement and
//!    whether execution-group backups spread into neighbor regions,
//!    reporting an availability/latency frontier.
//!
//! Every client writes globally unique keys, so post-run accounting can
//! *prove* zero lost and zero duplicated operations instead of assuming
//! them: a lost op is a completed write whose key is missing from the
//! store; a duplicated op shows up as `ops_applied > distinct keys`.

use crate::stats::{longest_unavailability, mean_goodput, recovery_time, LatencySummary};
use crate::topology::{ec2_topology, NEIGHBORS4, REGIONS4};
use spider::agreement::AgreementReplica;
use spider::client::OpFactory;
use spider::execution::ExecutionReplica;
use spider::{Deployment, DeploymentBuilder, Sample, SpiderConfig, SpiderMsg, WorkloadSpec};
use spider_app::{KvOp, KvStore};
use spider_sim::{FaultPlan, ObsReport, Simulation};
use spider_types::{OpKind, SimTime};
use std::sync::Arc;

/// Scale configuration shared by all disaster scenarios.
#[derive(Debug, Clone)]
pub struct Config {
    /// Clients per execution group.
    pub clients_per_region: usize,
    /// Mean requests/second per client.
    pub rate_per_client: f64,
    /// Encoded operation size in bytes.
    pub payload: usize,
    /// Steady-state metrics start here (skips connection ramp-up).
    pub warmup: SimTime,
    /// When the disaster strikes.
    pub fault_at: SimTime,
    /// When the network heals.
    pub heal_at: SimTime,
    /// Nominal offered-load horizon: each client's op budget is
    /// `rate_per_client · duration` and the run continues to quiescence
    /// so the backlog fully drains before accounting.
    pub duration: SimTime,
    /// Goodput bucket width for recovery detection.
    pub bucket: SimTime,
    /// View-change storm: number of leader-isolation acts.
    pub storm_acts: usize,
    /// View-change storm: spacing between acts.
    pub storm_gap: SimTime,
    /// View-change storm: how long each leader stays isolated.
    pub storm_hold: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            clients_per_region: 2,
            rate_per_client: 4.0,
            payload: 64,
            warmup: SimTime::from_secs(2),
            fault_at: SimTime::from_secs(8),
            heal_at: SimTime::from_secs(18),
            duration: SimTime::from_secs(30),
            bucket: SimTime::from_millis(500),
            storm_acts: 3,
            storm_gap: SimTime::from_millis(1_500),
            storm_hold: SimTime::from_millis(900),
            seed: 42,
        }
    }
}

/// Outcome of one disaster scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DisasterRow {
    /// Scenario label.
    pub scenario: String,
    /// Goodput of the observed clients before the fault (req/s).
    pub pre_fault_rps: f64,
    /// Goodput of the observed clients over the whole nominal horizon.
    pub goodput_rps: f64,
    /// Median write latency before the fault (ms).
    pub pre_fault_p50_ms: f64,
    /// Longest interval with zero completed ops after the fault (ms).
    pub unavailability_ms: f64,
    /// Heal → goodput back to 90 % of pre-fault, `None` if never (ms).
    pub recovery_ms: Option<f64>,
    /// Completed writes whose key is missing from the store.
    pub lost_ops: u64,
    /// Operations executed more than once (`ops_applied − keys`).
    pub duplicated_ops: u64,
    /// Execution replicas whose final map digest diverges.
    pub diverged_replicas: usize,
    /// Highest consensus view reached by any agreement replica.
    pub final_view: u64,
}

/// Tight flow-control windows so stalls (and their back-pressure) show
/// up within seconds instead of minutes; `z` is the scenario's skippable
/// trailing-group budget (§3.5).
fn disaster_spider_cfg(z: usize) -> SpiderConfig {
    SpiderConfig {
        ke: 8,
        ka: 8,
        ag_win: 16,
        commit_capacity: 16,
        z,
        view_change_timeout: SimTime::from_millis(400),
        ..SpiderConfig::default()
    }
}

/// Factory writing globally unique keys `c{client}-{seq}` so accounting
/// can detect lost and duplicated operations exactly.
fn unique_key_factory(client: usize) -> OpFactory {
    Arc::new(move |seq, kind, payload| {
        let key = format!("c{client:04}-{seq:08}");
        match kind {
            OpKind::Write => {
                KvOp::sized_put(key.as_bytes(), payload.max(key.len() + 16), b'x').encode()
            }
            _ => KvOp::get(key.as_bytes()).encode(),
        }
    })
}

struct Run {
    sim: Simulation<SpiderMsg>,
    dep: Deployment,
}

fn build(
    cfg: &Config,
    spider_cfg: SpiderConfig,
    agreement_region: &str,
    spans: &[Vec<&'static str>],
) -> Run {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut builder = DeploymentBuilder::new(spider_cfg)
        .with_app(KvStore::new)
        .agreement_region(agreement_region);
    for span in spans {
        builder = builder.execution_group_span(span);
    }
    let mut dep = builder.build(&mut sim);
    let max_ops = (cfg.rate_per_client * cfg.duration.as_secs_f64()).ceil() as u64;
    for gi in 0..spans.len() {
        for _ in 0..cfg.clients_per_region {
            // The factory's client index is the spawn position, which is
            // exactly this client's position in `dep.clients`.
            let ci = dep.clients.len();
            let workload = WorkloadSpec::writes_per_sec(cfg.rate_per_client, cfg.payload)
                .with_max_ops(max_ops)
                .with_op_factory(unique_key_factory(ci));
            dep.spawn_clients(&mut sim, gi, 1, workload);
        }
    }
    Run { sim, dep }
}

/// Runs to quiescence (clients have finite op budgets, so the backlog
/// drains) and computes every metric. `observed_groups` selects whose
/// clients feed the availability metrics — accounting always covers all
/// clients and all replicas.
fn finish(
    mut run: Run,
    cfg: &Config,
    scenario: String,
    heal_at: SimTime,
    observed_groups: &[usize],
) -> (DisasterRow, Option<ObsReport>) {
    run.sim.run_until_quiescent(cfg.duration + SimTime::from_secs(40));
    let per_client = run.dep.collect_samples(&run.sim);

    let observed: Vec<Sample> = per_client
        .iter()
        .filter(|(_, group, _)| observed_groups.contains(&(group.0 as usize)))
        .flat_map(|(_, _, samples)| samples.iter().copied())
        .collect();
    let pre_fault: Vec<Sample> =
        observed.iter().copied().filter(|s| s.completed < cfg.fault_at).collect();
    let pre_fault_rps = mean_goodput(&observed, cfg.warmup, cfg.fault_at);
    let unavailability =
        longest_unavailability(&observed, cfg.fault_at, heal_at + SimTime::from_secs(10));
    let recovery = recovery_time(
        &observed,
        heal_at,
        pre_fault_rps,
        0.9,
        cfg.bucket,
        heal_at + SimTime::from_secs(15),
    );

    // Accounting against the reference replica (group 0, replica 0).
    let store = run.sim.actor::<ExecutionReplica<KvStore>>(run.dep.group_nodes(0)[0]).app();
    let mut lost_ops = 0u64;
    for (ci, (_, _, samples)) in per_client.iter().enumerate() {
        // Closed-loop clients complete writes in sequence order, so a
        // client with k samples must have executed seqs 0..k exactly.
        for seq in 0..samples.len() as u64 {
            let key = format!("c{ci:04}-{seq:08}");
            if store.get(key.as_bytes()).is_none() {
                lost_ops += 1;
            }
        }
    }
    let duplicated_ops = store.ops_applied.saturating_sub(store.len() as u64);
    let reference_digest = store.map_digest();
    let diverged_replicas = run
        .dep
        .groups
        .iter()
        .flat_map(|(_, _, nodes)| nodes.iter())
        .filter(|&&node| {
            run.sim.actor::<ExecutionReplica<KvStore>>(node).app().map_digest() != reference_digest
        })
        .count();
    let final_view = run
        .dep
        .agreement
        .iter()
        .map(|&node| run.sim.actor::<AgreementReplica>(node).view().0)
        .max()
        .unwrap_or(0);

    let obs = run.sim.obs().is_enabled().then(|| run.sim.obs().report());
    let row = DisasterRow {
        scenario,
        pre_fault_rps,
        goodput_rps: mean_goodput(&observed, cfg.warmup, cfg.duration),
        pre_fault_p50_ms: LatencySummary::of_samples(&pre_fault).map_or(f64::NAN, |s| s.p50_ms),
        unavailability_ms: unavailability.as_millis_f64(),
        recovery_ms: recovery.map(|r| r.as_millis_f64()),
        lost_ops,
        duplicated_ops,
        diverged_replicas,
        final_view,
    };
    (row, obs)
}

fn single_region_spans() -> Vec<Vec<&'static str>> {
    REGIONS4.iter().map(|r| vec![*r]).collect()
}

/// Scenario 1: Oregon and Tokyo go dark together over
/// `[fault_at, heal_at)`. With `z = 2` the agreement group may leave the
/// two dead groups behind, so Virginia and Ireland clients keep
/// committing; after the restore the dead groups catch up via
/// checkpoints.
pub fn run_correlated_outage(cfg: &Config) -> DisasterRow {
    let mut run = build(cfg, disaster_spider_cfg(2), "virginia", &single_region_spans());
    let plan = FaultPlan::new().region_outage("oregon", cfg.fault_at, cfg.heal_at).region_outage(
        "tokyo",
        cfg.fault_at,
        cfg.heal_at,
    );
    run.sim.install_fault_plan(plan);
    finish(run, cfg, "correlated-outage".into(), cfg.heal_at, &[0, 2]).0
}

/// Scenario 2: a WAN partition severs the agreement side
/// (Virginia + Ireland) from Oregon + Tokyo at `z = 0`. The severed
/// groups' commit channels stall, flow control blocks the agreement
/// group within `commit_capacity` slots, and *all* clients stall — the
/// paper's back-pressure story. After the heal the backlog must drain
/// with zero lost/duplicated ops and byte-identical stores.
pub fn run_wan_partition(cfg: &Config) -> DisasterRow {
    wan_partition_inner(cfg, false).0
}

/// [`run_wan_partition`] with end-to-end tracing on: the returned
/// [`ObsReport`] carries the full span timeline, including the
/// commit-channel recast that re-ships the stalled ranges after the
/// heal (the smoke gate `bench_summary` checks).
pub fn run_wan_partition_traced(cfg: &Config) -> (DisasterRow, ObsReport) {
    let (row, obs) = wan_partition_inner(cfg, true);
    (row, obs.expect("tracing was enabled"))
}

fn wan_partition_inner(cfg: &Config, traced: bool) -> (DisasterRow, Option<ObsReport>) {
    let mut spider_cfg = disaster_spider_cfg(0);
    spider_cfg.tracing = traced;
    let mut run = build(cfg, spider_cfg, "virginia", &single_region_spans());
    let plan = FaultPlan::new().wan_partition(
        &["virginia", "ireland"],
        &["oregon", "tokyo"],
        cfg.fault_at,
        cfg.heal_at,
    );
    run.sim.install_fault_plan(plan);
    finish(run, cfg, "wan-partition".into(), cfg.heal_at, &[0, 1, 2, 3])
}

/// Scenario 3: repeated leader isolation at sub-timeout intervals. Act
/// `i` cuts the replica that leads view `i` (round-robin rotation) long
/// enough to force a view change, then rejoins it. Ordering keeps
/// making progress between acts and fully recovers afterwards.
pub fn run_view_change_storm(cfg: &Config) -> DisasterRow {
    let mut run = build(cfg, disaster_spider_cfg(0), "virginia", &single_region_spans());
    let n = run.dep.agreement.len();
    let mut plan = FaultPlan::new();
    let mut last_rejoin = cfg.fault_at;
    for act in 0..cfg.storm_acts {
        let from = cfg.fault_at + SimTime::from_nanos(cfg.storm_gap.as_nanos() * act as u64);
        let until = from + cfg.storm_hold;
        plan = plan.isolate_replica(run.dep.agreement[act % n], from, until);
        last_rejoin = until;
    }
    run.sim.install_fault_plan(plan);
    finish(run, cfg, "view-change-storm".into(), last_rejoin, &[0, 1, 2, 3]).0
}

/// Scenario 4 (one point of the placement sweep): agreement in
/// `REGIONS4[host_idx]`; every execution group either keeps all three
/// replicas in its home region (`spread = false`) or places two backups
/// in the aligned neighbor region (`spread = true`). The region
/// "across" from the host then fails.
///
/// With spread backups the victim group still has `fe + 1` live
/// replicas, so its commit channel advances and nobody else notices;
/// concentrated placement kills the whole group and, at `z = 0`, stalls
/// the system until the heal. Latency is the other frontier axis: the
/// pre-fault p50 varies with the agreement host's centrality.
pub fn run_placement(cfg: &Config, host_idx: usize, spread: bool) -> DisasterRow {
    let host = REGIONS4[host_idx];
    let victim = REGIONS4[(host_idx + 2) % REGIONS4.len()];
    let spans: Vec<Vec<&'static str>> = (0..REGIONS4.len())
        .map(|i| {
            if spread {
                vec![REGIONS4[i], NEIGHBORS4[i], NEIGHBORS4[i]]
            } else {
                vec![REGIONS4[i]]
            }
        })
        .collect();
    let mut run = build(cfg, disaster_spider_cfg(0), host, &spans);
    run.sim.install_fault_plan(FaultPlan::new().region_outage(victim, cfg.fault_at, cfg.heal_at));
    // The victim region's clients are inside the outage; availability is
    // judged by everyone else.
    let observed: Vec<usize> = (0..REGIONS4.len()).filter(|i| REGIONS4[*i] != victim).collect();
    let backups = if spread { "spread" } else { "concentrated" };
    finish(
        run,
        cfg,
        format!("placement host={host} backups={backups} victim={victim}"),
        cfg.heal_at,
        &observed,
    )
    .0
}

/// The placement frontier: every requested agreement host, concentrated
/// vs spread backups.
pub fn run_placement_sweep(cfg: &Config, hosts: &[usize]) -> Vec<DisasterRow> {
    let mut rows = Vec::new();
    for &host in hosts {
        rows.push(run_placement(cfg, host, false));
        rows.push(run_placement(cfg, host, true));
    }
    rows
}

/// Runs the non-sweep scenarios plus a two-host frontier (Virginia and
/// Tokyo) — the set `bench_summary` and the `disaster_suite` example
/// report.
pub fn run(cfg: &Config) -> Vec<DisasterRow> {
    let mut rows =
        vec![run_correlated_outage(cfg), run_wan_partition(cfg), run_view_change_storm(cfg)];
    rows.extend(run_placement_sweep(cfg, &[0, 3]));
    rows
}

/// Renders disaster rows as an aligned text table.
pub fn render(rows: &[DisasterRow]) -> String {
    let mut out = String::new();
    out.push_str("Disaster suite: availability under scripted fault plans\n");
    out.push_str(&format!(
        "{:<46} {:>8} {:>8} {:>8} {:>9} {:>9} {:>5} {:>5} {:>5} {:>5}\n",
        "scenario",
        "pre[r/s]",
        "run[r/s]",
        "p50[ms]",
        "unavl[ms]",
        "recov[ms]",
        "lost",
        "dup",
        "divg",
        "view"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<46} {:>8.1} {:>8.1} {:>8.1} {:>9.0} {:>9} {:>5} {:>5} {:>5} {:>5}\n",
            r.scenario,
            r.pre_fault_rps,
            r.goodput_rps,
            r.pre_fault_p50_ms,
            r.unavailability_ms,
            r.recovery_ms.map_or_else(|| "never".into(), |v| format!("{v:.0}")),
            r.lost_ops,
            r.duplicated_ops,
            r.diverged_replicas,
            r.final_view,
        ));
    }
    out
}
