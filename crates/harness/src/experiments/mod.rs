//! One module per figure of the paper's evaluation (§5).
//!
//! Every module exposes a `Config` (scale knobs with laptop-friendly
//! defaults), a `run` function returning structured rows, and a `render`
//! function producing the table/series as text. The Criterion benches in
//! `crates/bench` and the `paper_figures` example are thin wrappers
//! around these runners.

pub mod batching;
pub mod commit_channel;
pub mod disaster;
pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8;
pub mod fig9a;
pub mod fig9bcd;

use crate::stats::LatencySummary;

/// A latency-table row shared by several figures.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LatencyRow {
    /// System configuration label (e.g. "BFT(leader=virginia)").
    pub system: String,
    /// Client region.
    pub client_region: String,
    /// Latency summary for that (system, region) cell.
    pub summary: LatencySummary,
}

/// Renders latency rows as an aligned text table.
pub fn render_rows(title: &str, rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<28} {:<10} {:>9} {:>9} {:>9} {:>10} {:>7}\n",
        "system", "clients", "p50[ms]", "p90[ms]", "p99[ms]", "p99.9[ms]", "n"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<10} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>7}\n",
            r.system,
            r.client_region,
            r.summary.p50_ms,
            r.summary.p90_ms,
            r.summary.p99_ms,
            r.summary.p999_ms,
            r.summary.count
        ));
    }
    out
}
