//! Figures 9b–9d: IRMC microbenchmarks — throughput, CPU usage, and
//! LAN/WAN data transfer of IRMC-RC vs IRMC-SC for message sizes
//! 256 B … 16 KiB over a Virginia → Tokyo channel.
//!
//! Paper result: IRMC-RC reaches higher maximum throughput (sender
//! endpoints only sign, never verify certificate shares), while IRMC-SC
//! transfers far less WAN data (one certificate per receiver instead of
//! `n_s × n_r` signed copies) at the cost of LAN share traffic and extra
//! sender CPU.
//!
//! The harness floods the channel: every sender keeps each subchannel
//! window full, receivers consume and advance windows; the busy-server
//! CPU model then yields the saturation throughput directly.

use crate::topology::ec2_topology;
use spider_crypto::{CostModel, Digest, Digestible, Keyring};
use spider_irmc::{
    Action, ChannelMsg, IrmcConfig, ReceiveResult, ReceiverEndpoint, ReceiverMsg, SenderEndpoint,
    Variant,
};
use spider_sim::{Actor, Context, NodeId, Simulation, Timer};
use spider_types::{Position, SimTime, WireSize};

/// Flood-test payload: identical content per position on all senders.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    pos: u64,
    size: usize,
}

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        self.size
    }
}

impl Digestible for Blob {
    fn digest(&self) -> Digest {
        Digest::builder().str("flood").u64(self.pos).u64(self.size as u64).finish()
    }
}

/// Transport frames of the benchmark channel.
#[derive(Debug, Clone)]
enum M {
    ToReceiver(ChannelMsg<Blob>),
    ToSender(ReceiverMsg),
    Peer(ChannelMsg<Blob>),
}

impl WireSize for M {
    fn wire_size(&self) -> usize {
        match self {
            M::ToReceiver(m) | M::Peer(m) => m.wire_size(),
            M::ToSender(m) => m.wire_size(),
        }
    }
}

const TAG_START: u64 = 0;
const TAG_TICK: u64 = 1;
const TAG_COLLECTOR: u64 = 2;

struct SenderHost {
    ep: SenderEndpoint<Blob>,
    msg_size: usize,
    next_pos: u64,
    receivers: Vec<NodeId>,
    peers: Vec<NodeId>,
    sc_tick: bool,
}

impl SenderHost {
    fn fill_window(&mut self, ctx: &mut Context<'_, M>) {
        let mut actions = Vec::new();
        loop {
            let w = self.ep.window(0);
            if w.is_above(Position(self.next_pos)) {
                break;
            }
            let p = self.next_pos.max(w.start().0);
            self.next_pos = p + 1;
            self.ep.send_batch(
                0,
                Position(p),
                vec![Blob { pos: p, size: self.msg_size }],
                &mut actions,
            );
        }
        self.apply(ctx, actions);
    }

    fn apply(&mut self, ctx: &mut Context<'_, M>, actions: Vec<Action<Blob>>) {
        let mut moved = false;
        for a in actions {
            match a {
                Action::ToReceiver { to, msg } => ctx.send(self.receivers[to], M::ToReceiver(msg)),
                Action::ToPeerSender { to, msg } => ctx.send(self.peers[to], M::Peer(msg)),
                Action::Charge(c, op) => ctx.charge_op("sender", op, c),
                Action::WindowMoved { .. } | Action::Unblocked { .. } => moved = true,
                _ => {}
            }
        }
        if moved {
            self.fill_window(ctx);
        }
    }
}

impl Actor<M> for SenderHost {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        // Delay the flood until every node exists.
        ctx.set_timer(SimTime::from_millis(1), TAG_START);
        if self.sc_tick {
            ctx.set_timer(SimTime::from_millis(20), TAG_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        let mut actions = Vec::new();
        match msg {
            M::ToSender(m) => {
                let Some(idx) = self.receivers.iter().position(|n| *n == from) else {
                    return;
                };
                let _ = self.ep.on_receiver_message(idx, m, &mut actions);
            }
            M::Peer(m) => {
                let Some(idx) = self.peers.iter().position(|n| *n == from) else {
                    return;
                };
                let _ = self.ep.on_peer_message(idx, m, &mut actions);
            }
            M::ToReceiver(_) => return,
        }
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: Timer) {
        match timer.tag {
            TAG_START => self.fill_window(ctx),
            TAG_TICK => {
                let mut actions = Vec::new();
                self.ep.tick(ctx.now(), &mut actions);
                self.apply(ctx, actions);
                ctx.set_timer(SimTime::from_millis(20), TAG_TICK);
            }
            _ => {}
        }
    }
}

struct ReceiverHost {
    ep: ReceiverEndpoint<Blob>,
    next: u64,
    delivered: u64,
    senders: Vec<NodeId>,
    /// Move the window forward after this many deliveries.
    move_every: u64,
}

impl ReceiverHost {
    fn drain(&mut self, ctx: &mut Context<'_, M>) {
        let mut actions = Vec::new();
        loop {
            match self.ep.try_receive(0, Position(self.next)) {
                ReceiveResult::Ready(_) => {
                    self.delivered += 1;
                    self.next += 1;
                    if self.delivered.is_multiple_of(self.move_every) {
                        self.ep.move_window(0, Position(self.next), &mut actions);
                    }
                }
                ReceiveResult::TooOld(start) => {
                    self.next = start.0;
                }
                ReceiveResult::Pending => break,
            }
        }
        self.apply(ctx, actions);
    }

    fn apply(&mut self, ctx: &mut Context<'_, M>, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToSender { to, msg } => ctx.send(self.senders[to], M::ToSender(msg)),
                Action::Charge(c, op) => ctx.charge_op("receiver", op, c),
                Action::SetTimer { token, delay } => {
                    ctx.set_timer(delay, TAG_COLLECTOR + token);
                }
                _ => {}
            }
        }
    }
}

impl Actor<M> for ReceiverHost {
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        let M::ToReceiver(m) = msg else { return };
        let Some(idx) = self.senders.iter().position(|n| *n == from) else {
            return;
        };
        let mut actions = Vec::new();
        let _ = self.ep.on_sender_message(ctx.now(), idx, m, &mut actions);
        self.apply(ctx, actions);
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: Timer) {
        if timer.tag >= TAG_COLLECTOR {
            let mut actions = Vec::new();
            let _ = self.ep.on_timer(timer.tag - TAG_COLLECTOR, ctx.now(), &mut actions);
            self.apply(ctx, actions);
        }
    }
}

/// One measurement of the IRMC microbenchmark.
#[derive(Debug, Clone, serde::Serialize)]
pub struct IrmcRow {
    /// Channel variant.
    pub variant: String,
    /// Message size in bytes.
    pub msg_size: usize,
    /// Delivered messages per second (averaged over receivers).
    pub throughput_rps: f64,
    /// Mean CPU utilization of sender endpoints (0..1).
    pub sender_cpu: f64,
    /// Mean CPU utilization of receiver endpoints (0..1).
    pub receiver_cpu: f64,
    /// WAN bytes per second (sender group -> receiver group + control).
    pub wan_mbps: f64,
    /// LAN bytes per second within the sender group (IRMC-SC shares).
    pub lan_mbps: f64,
}

/// Scale configuration for Figures 9b–9d.
#[derive(Debug, Clone)]
pub struct Config {
    /// Message sizes to sweep (paper: 256, 1024, 4096, 16384).
    pub sizes: Vec<usize>,
    /// Measurement duration per point.
    pub duration: SimTime,
    /// Subchannel capacity (in-flight positions).
    pub capacity: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sizes: vec![256, 1024, 4096, 16384],
            duration: SimTime::from_secs(5),
            capacity: 256,
            seed: 42,
        }
    }
}

/// Runs one (variant, size) point and returns its row.
pub fn run_point(variant: Variant, msg_size: usize, cfg: &Config) -> IrmcRow {
    let mut sim: Simulation<M> = Simulation::new(ec2_topology(), cfg.seed);
    let n_senders = 4;
    let n_receivers = 3;
    let icfg = IrmcConfig::new(variant, n_senders, 1, n_receivers, 1, cfg.capacity)
        .with_cost(CostModel::default());
    let ring = Keyring::new(7);

    // Reserve node ids: senders in Virginia zones, receivers in Tokyo.
    let sender_nodes: Vec<NodeId> = (0..n_senders as u32).map(NodeId).collect();
    let receiver_nodes: Vec<NodeId> =
        (n_senders as u32..(n_senders + n_receivers) as u32).map(NodeId).collect();

    for i in 0..n_senders {
        let zone = sim.topology().zone("virginia", i as u8);
        let host = SenderHost {
            ep: SenderEndpoint::new(icfg.clone(), i, ring.clone()),
            msg_size,
            next_pos: 1,
            receivers: receiver_nodes.clone(),
            peers: sender_nodes.clone(),
            sc_tick: variant == Variant::SenderCollect,
        };
        let id = sim.add_node(zone, host);
        debug_assert_eq!(id, sender_nodes[i]);
    }
    for (j, &expected_id) in receiver_nodes.iter().enumerate() {
        let zone = sim.topology().zone("tokyo", j as u8);
        let host = ReceiverHost {
            ep: ReceiverEndpoint::new(icfg.clone(), j, ring.clone()),
            next: 1,
            delivered: 0,
            senders: sender_nodes.clone(),
            move_every: (cfg.capacity / 4).max(1),
        };
        let id = sim.add_node(zone, host);
        debug_assert_eq!(id, expected_id);
    }

    sim.run_until(cfg.duration);
    let secs = cfg.duration.as_secs_f64();
    let delivered: u64 =
        receiver_nodes.iter().map(|n| sim.actor::<ReceiverHost>(*n).delivered).sum();
    let throughput = delivered as f64 / n_receivers as f64 / secs;

    let sender_cpu =
        sender_nodes.iter().map(|n| sim.stats().cpu(*n).utilization(cfg.duration)).sum::<f64>()
            / n_senders as f64;
    let receiver_cpu =
        receiver_nodes.iter().map(|n| sim.stats().cpu(*n).utilization(cfg.duration)).sum::<f64>()
            / n_receivers as f64;

    let wan_bytes: u64 = sender_nodes.iter().map(|n| sim.stats().net(*n).wan_sent).sum::<u64>()
        + receiver_nodes.iter().map(|n| sim.stats().net(*n).wan_sent).sum::<u64>();
    let lan_bytes: u64 = sender_nodes.iter().map(|n| sim.stats().net(*n).lan_sent).sum();

    IrmcRow {
        variant: variant.to_string(),
        msg_size,
        throughput_rps: throughput,
        sender_cpu,
        receiver_cpu,
        wan_mbps: wan_bytes as f64 / secs / 1e6,
        lan_mbps: lan_bytes as f64 / secs / 1e6,
    }
}

/// Runs the full sweep: both variants × all sizes.
pub fn run(cfg: &Config) -> Vec<IrmcRow> {
    let mut rows = Vec::new();
    for variant in [Variant::ReceiverCollect, Variant::SenderCollect] {
        for &size in &cfg.sizes {
            rows.push(run_point(variant, size, cfg));
        }
    }
    rows
}

/// Renders Figures 9b (throughput), 9c (CPU), and 9d (network) as text.
pub fn render(rows: &[IrmcRow]) -> String {
    let mut out =
        String::from("Figures 9b-9d — IRMC variants over a Virginia->Tokyo channel (flooded)\n");
    out.push_str(&format!(
        "{:<9} {:>7} {:>12} {:>11} {:>13} {:>10} {:>10}\n",
        "variant",
        "size[B]",
        "thruput[r/s]",
        "sender-cpu",
        "receiver-cpu",
        "WAN[MB/s]",
        "LAN[MB/s]"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>7} {:>12.0} {:>10.0}% {:>12.0}% {:>10.2} {:>10.2}\n",
            r.variant,
            r.msg_size,
            r.throughput_rps,
            r.sender_cpu * 100.0,
            r.receiver_cpu * 100.0,
            r.wan_mbps,
            r.lan_mbps
        ));
    }
    out
}
