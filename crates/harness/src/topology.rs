//! The paper's EC2 deployment topology.
//!
//! Regions and availability-zone counts as of the paper's evaluation
//! (2020): Virginia (us-east-1, 6 AZs — the agreement-group host),
//! Oregon, Ireland, Tokyo, São Paulo (client expansion site, Fig 10), and
//! the four "nearby" regions used for extra fault domains at `f = 2`
//! (Fig 11): Ohio, California, London, Seoul.
//!
//! One-way latencies derive from published EC2 inter-region RTT
//! measurements of that era (RTT / 2, rounded). Exact values shift by a
//! few milliseconds month to month; the *ordering* of distances — which
//! determines every qualitative result — is stable.

use spider_sim::Topology;
use spider_types::SimTime;

/// The four client regions of the main experiments.
pub const REGIONS4: [&str; 4] = ["virginia", "oregon", "ireland", "tokyo"];

/// The five client regions of the adaptability experiment (Fig 10).
pub const REGIONS5: [&str; 5] = ["virginia", "oregon", "ireland", "tokyo", "saopaulo"];

/// Neighbor regions providing extra fault domains at `f = 2` (Fig 11),
/// aligned with [`REGIONS4`]: Virginia+Ohio, Oregon+California,
/// Ireland+London, Tokyo+Seoul.
pub const NEIGHBORS4: [&str; 4] = ["ohio", "california", "london", "seoul"];

/// Round-trip times in milliseconds between all regions.
const RTT_MS: [(&str, &str, u64); 36] = [
    ("virginia", "oregon", 62),
    ("virginia", "ireland", 76),
    ("virginia", "tokyo", 146),
    ("virginia", "saopaulo", 116),
    ("virginia", "ohio", 12),
    ("virginia", "california", 61),
    ("virginia", "london", 76),
    ("virginia", "seoul", 172),
    ("oregon", "ireland", 124),
    ("oregon", "tokyo", 98),
    ("oregon", "saopaulo", 182),
    ("oregon", "ohio", 50),
    ("oregon", "california", 21),
    ("oregon", "london", 128),
    ("oregon", "seoul", 126),
    ("ireland", "tokyo", 212),
    ("ireland", "saopaulo", 184),
    ("ireland", "ohio", 86),
    ("ireland", "california", 137),
    ("ireland", "london", 10),
    ("ireland", "seoul", 238),
    ("tokyo", "saopaulo", 256),
    ("tokyo", "ohio", 160),
    ("tokyo", "california", 107),
    ("tokyo", "london", 210),
    ("tokyo", "seoul", 32),
    ("saopaulo", "ohio", 128),
    ("saopaulo", "california", 172),
    ("saopaulo", "london", 186),
    ("saopaulo", "seoul", 294),
    ("ohio", "california", 52),
    ("ohio", "london", 84),
    ("ohio", "seoul", 176),
    ("california", "london", 140),
    ("california", "seoul", 134),
    ("london", "seoul", 246),
];

/// Builds the paper's EC2 topology (all nine regions).
///
/// # Examples
///
/// ```
/// let topo = spider_harness::ec2_topology();
/// assert_eq!(topo.num_zones(topo.region("virginia")), 6);
/// ```
pub fn ec2_topology() -> Topology {
    let mut b = Topology::builder()
        // Virginia had six AZs (the paper's V-1 … V-6); the others three.
        .region("virginia", 6)
        .region("oregon", 3)
        .region("ireland", 3)
        .region("tokyo", 3)
        .region("saopaulo", 3)
        .region("ohio", 3)
        .region("california", 3)
        .region("london", 3)
        .region("seoul", 3)
        // Inter-AZ RTT ~1ms, intra-AZ ~0.3ms.
        .inter_zone_latency(SimTime::from_micros(500))
        .intra_zone_latency(SimTime::from_micros(150))
        .jitter(0.10);
    for (a, bb, rtt) in RTT_MS {
        b = b.symmetric_latency(a, bb, SimTime::from_micros(rtt * 500));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_region_pairs_have_latencies() {
        let t = ec2_topology();
        let regions = [
            "virginia",
            "oregon",
            "ireland",
            "tokyo",
            "saopaulo",
            "ohio",
            "california",
            "london",
            "seoul",
        ];
        for a in regions {
            for b in regions {
                let l = t.base_latency(t.zone(a, 0), t.zone(b, 0));
                if a == b {
                    assert!(l < SimTime::from_millis(1));
                } else {
                    assert!(l >= SimTime::from_millis(5), "{a}->{b} = {l}");
                }
            }
        }
    }

    #[test]
    fn latency_matrix_matches_geography() {
        let t = ec2_topology();
        let one_way = |a: &str, b: &str| t.base_latency(t.zone(a, 0), t.zone(b, 0));
        // Virginia is closer to Ireland than to Tokyo; Tokyo is closest
        // to Seoul; Ohio is Virginia's neighbor.
        assert!(one_way("virginia", "ireland") < one_way("virginia", "tokyo"));
        assert!(one_way("tokyo", "seoul") < one_way("tokyo", "virginia"));
        assert!(one_way("virginia", "ohio") < one_way("virginia", "oregon"));
    }

    #[test]
    fn rtt_table_is_symmetric_and_complete() {
        // 9 regions -> 36 unordered pairs.
        assert_eq!(RTT_MS.len(), 36);
        let mut seen = std::collections::HashSet::new();
        for (a, b, _) in RTT_MS {
            assert!(seen.insert((a.min(b), a.max(b))), "duplicate {a}-{b}");
        }
    }
}
