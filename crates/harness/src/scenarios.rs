//! Shared scenario machinery: deploy a system, run clients in every
//! region, collect per-region latency samples.

use crate::topology::{ec2_topology, REGIONS4};
use spider::{DeploymentBuilder, Sample, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_baselines::{BftDeployment, StewardDeployment};
use spider_sim::{ObsConfig, ObsReport, Simulation};
use spider_types::{OpKind, SimTime};
use std::collections::BTreeMap;

/// Which architecture a scenario runs (§5 "Environment").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Traditional geo-distributed PBFT; leader at `REGIONS4[leader]`.
    Bft {
        /// Index into the region list.
        leader: usize,
    },
    /// Steward-style hierarchy; leader site at `REGIONS4[leader_site]`.
    Hft {
        /// Index into the region list.
        leader_site: u16,
    },
    /// Spider with the agreement group in Virginia; consensus leader in
    /// the given availability zone (0-based; the paper's V-1 is zone 0).
    Spider {
        /// Leader's availability zone within Virginia.
        leader_zone: u8,
    },
    /// Spider variant without execution groups: the agreement group also
    /// executes (Fig 9a).
    Spider0E,
    /// Spider variant with a single execution group co-located with the
    /// agreement group in Virginia (Fig 9a).
    Spider1E,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Bft { leader } => write!(f, "BFT(leader={})", REGIONS4[*leader]),
            SystemKind::Hft { leader_site } => {
                write!(f, "HFT(leader-site={})", REGIONS4[*leader_site as usize])
            }
            SystemKind::Spider { leader_zone } => {
                write!(f, "SPIDER(leader=V-{})", leader_zone + 1)
            }
            SystemKind::Spider0E => write!(f, "SPIDER-0E"),
            SystemKind::Spider1E => write!(f, "SPIDER-1E"),
        }
    }
}

/// Scale and workload parameters of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioCfg {
    /// Clients per region (the paper uses 50; defaults are scaled down).
    pub clients_per_region: usize,
    /// Mean requests/second per client.
    pub rate_per_client: f64,
    /// Request payload bytes (the paper uses 200).
    pub payload: usize,
    /// Workload mix (fractions of writes / strong reads; rest weak).
    pub write_fraction: f64,
    /// Fraction of strong reads.
    pub strong_read_fraction: f64,
    /// Measurement duration.
    pub duration: SimTime,
    /// Warm-up cut: samples completing before this time are discarded.
    pub warmup: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// Fault tolerance per group (`f = 1` in the main experiments).
    pub f: usize,
    /// Maximum consensus batch size (applies to Spider's agreement group
    /// and all PBFT baselines alike).
    pub max_batch: usize,
    /// Consensus batch linger cap; zero = propose immediately.
    pub batch_delay: SimTime,
    /// Rate-adaptive consensus batch sizing.
    pub adaptive_batching: bool,
    /// Consensus pipelining window.
    pub pipeline_depth: usize,
    /// Commit-channel mode (IRMC-RC with/without digest-only dedup, or
    /// IRMC-SC with/without §A.9 overlap).
    pub commit_mode: spider_irmc::ChannelMode,
    /// End-to-end request tracing: enables the simulator's observability
    /// recorder (phase spans, per-node metrics, CPU attribution). Off by
    /// default; [`run_scenario_obs`] turns it on.
    pub tracing: bool,
}

impl Default for ScenarioCfg {
    fn default() -> Self {
        let base = SpiderConfig::default();
        ScenarioCfg {
            clients_per_region: 10,
            rate_per_client: 2.0,
            payload: 200,
            write_fraction: 1.0,
            strong_read_fraction: 0.0,
            duration: SimTime::from_secs(20),
            warmup: SimTime::from_secs(2),
            seed: 42,
            f: 1,
            max_batch: base.max_batch,
            batch_delay: base.batch_delay,
            adaptive_batching: base.adaptive_batching,
            pipeline_depth: base.pipeline_depth,
            commit_mode: base.commit_mode,
            tracing: false,
        }
    }
}

impl ScenarioCfg {
    fn workload(&self) -> WorkloadSpec {
        WorkloadSpec {
            rate_per_sec: self.rate_per_client,
            payload_bytes: self.payload,
            write_fraction: self.write_fraction,
            strong_read_fraction: self.strong_read_fraction,
            max_ops: 0,
            start_delay: SimTime::from_millis(200),
            op_factory: kv_op_factory(1000),
        }
    }

    /// The deployment config this scenario induces (used for Spider and
    /// for the consensus cores of the BFT/HFT baselines).
    pub fn spider_config(&self) -> SpiderConfig {
        SpiderConfig {
            fa: self.f,
            fe: self.f,
            max_batch: self.max_batch,
            batch_delay: self.batch_delay,
            adaptive_batching: self.adaptive_batching,
            pipeline_depth: self.pipeline_depth,
            commit_mode: self.commit_mode,
            tracing: self.tracing,
            ..SpiderConfig::default()
        }
    }
}

/// Latency samples per client region.
pub type RegionSamples = BTreeMap<String, Vec<Sample>>;

fn keep(s: &Sample, warmup: SimTime) -> bool {
    s.completed >= warmup
}

/// Runs one scenario and returns per-region samples.
pub fn run_scenario(kind: SystemKind, cfg: &ScenarioCfg) -> RegionSamples {
    run_scenario_inner(kind, cfg).0
}

/// Runs one scenario with end-to-end tracing forced on and returns both
/// the per-region samples and the observability report (phase spans,
/// metrics snapshots, per-operation CPU attribution).
pub fn run_scenario_obs(kind: SystemKind, cfg: &ScenarioCfg) -> (RegionSamples, ObsReport) {
    let mut cfg = cfg.clone();
    cfg.tracing = true;
    let (samples, obs) = run_scenario_inner(kind, &cfg);
    (samples, obs.expect("tracing was enabled"))
}

fn run_scenario_inner(kind: SystemKind, cfg: &ScenarioCfg) -> (RegionSamples, Option<ObsReport>) {
    match kind {
        SystemKind::Bft { leader } => run_bft(leader, cfg),
        SystemKind::Hft { leader_site } => run_hft(leader_site, cfg),
        SystemKind::Spider { leader_zone } => run_spider(leader_zone, cfg, SpiderShape::Full),
        SystemKind::Spider0E => run_spider0e(cfg),
        SystemKind::Spider1E => run_spider(0, cfg, SpiderShape::OneGroup),
    }
}

enum SpiderShape {
    Full,
    OneGroup,
}

fn run_spider(
    leader_zone: u8,
    cfg: &ScenarioCfg,
    shape: SpiderShape,
) -> (RegionSamples, Option<ObsReport>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    let mut builder = DeploymentBuilder::new(cfg.spider_config())
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .agreement_leader_zone(leader_zone);
    let group_regions: Vec<&str> = match shape {
        SpiderShape::Full => REGIONS4.to_vec(),
        SpiderShape::OneGroup => vec!["virginia"],
    };
    for r in &group_regions {
        builder = builder.execution_group(r);
    }
    let mut dep = builder.build(&mut sim);

    // Clients always live in all four regions; with fewer groups they all
    // attach to the Virginia group (Fig 9a's setup).
    let mut client_region: Vec<(String, Vec<spider_types::NodeId>)> = Vec::new();
    for region in REGIONS4 {
        let group_idx = group_regions.iter().position(|g| *g == region).unwrap_or(0);
        // Place the clients in their home region even when their group is
        // remote: spawn via deployment, then note the region.
        let nodes = spawn_spider_clients_in_region(&mut sim, &mut dep, group_idx, region, cfg);
        client_region.push((region.to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let mut out = RegionSamples::new();
    for (region, nodes) in client_region {
        let samples: Vec<Sample> = nodes
            .iter()
            .flat_map(|n| sim.actor::<spider::SpiderClient>(*n).samples.clone())
            .filter(|s| keep(s, cfg.warmup))
            .collect();
        out.insert(region, samples);
    }
    let obs = cfg.tracing.then(|| sim.obs().report());
    (out, obs)
}

/// Spawns Spider clients whose *group* is `group_idx` but whose *node*
/// sits in `region` (needed when the local region has no group).
fn spawn_spider_clients_in_region(
    sim: &mut Simulation<spider::SpiderMsg>,
    dep: &mut spider::Deployment,
    group_idx: usize,
    region: &str,
    cfg: &ScenarioCfg,
) -> Vec<spider_types::NodeId> {
    use spider::SpiderClient;
    let (group, _, _) = dep.groups[group_idx].clone();
    let zones = sim.topology().num_zones(sim.topology().region(region));
    let mut nodes = Vec::new();
    for k in 0..cfg.clients_per_region {
        let id = spider_types::ClientId(10_000 + dep.clients.len() as u32);
        let zone = sim.topology().zone(region, (k % zones as usize) as u8);
        let client = SpiderClient::new(
            dep.cfg.clone(),
            id,
            group,
            dep.directory.clone(),
            Some(cfg.workload()),
        );
        let node = sim.add_node(zone, client);
        dep.directory.register_client(id, node);
        dep.clients.push((id, group, node));
        nodes.push(node);
    }
    nodes
}

fn run_spider0e(cfg: &ScenarioCfg) -> (RegionSamples, Option<ObsReport>) {
    // The agreement group executes directly: equivalent to a PBFT group
    // whose replicas all sit in separate Virginia zones.
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    if cfg.tracing {
        sim.enable_obs(ObsConfig::default());
    }
    let n = 3 * cfg.f + 1;
    let placements: Vec<(&str, u8)> = (0..n).map(|i| ("virginia", i as u8 % 6)).collect();
    let mut dep =
        BftDeployment::build_in_zones(&mut sim, cfg.spider_config(), &placements, KvStore::new);
    let mut client_nodes = Vec::new();
    for region in REGIONS4 {
        let nodes = dep.spawn_clients(&mut sim, region, cfg.clients_per_region, cfg.workload());
        client_nodes.push((region.to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let obs = cfg.tracing.then(|| sim.obs().report());
    (collect_baseline(&sim, client_nodes, cfg), obs)
}

fn run_bft(leader: usize, cfg: &ScenarioCfg) -> (RegionSamples, Option<ObsReport>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    if cfg.tracing {
        sim.enable_obs(ObsConfig::default());
    }
    // Leader region first: replica 0 is the view-0 leader.
    let mut regions = REGIONS4.to_vec();
    regions.rotate_left(leader);
    let mut dep = BftDeployment::build(&mut sim, cfg.spider_config(), &regions, KvStore::new);
    let mut client_nodes = Vec::new();
    for region in REGIONS4 {
        let nodes = dep.spawn_clients(&mut sim, region, cfg.clients_per_region, cfg.workload());
        client_nodes.push((region.to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let obs = cfg.tracing.then(|| sim.obs().report());
    (collect_baseline(&sim, client_nodes, cfg), obs)
}

fn run_hft(leader_site: u16, cfg: &ScenarioCfg) -> (RegionSamples, Option<ObsReport>) {
    let mut sim = Simulation::new(ec2_topology(), cfg.seed);
    if cfg.tracing {
        sim.enable_obs(ObsConfig::default());
    }
    let mut dep = StewardDeployment::build(
        &mut sim,
        cfg.spider_config(),
        &REGIONS4,
        leader_site,
        KvStore::new,
    );
    let mut client_nodes = Vec::new();
    for (si, region) in REGIONS4.iter().enumerate() {
        let nodes =
            dep.spawn_clients(&mut sim, si as u16, region, cfg.clients_per_region, cfg.workload());
        client_nodes.push(((*region).to_owned(), nodes));
    }
    sim.run_until(cfg.duration);
    let obs = cfg.tracing.then(|| sim.obs().report());
    (collect_baseline(&sim, client_nodes, cfg), obs)
}

fn collect_baseline(
    sim: &Simulation<spider_baselines::BaseMsg>,
    client_nodes: Vec<(String, Vec<spider_types::NodeId>)>,
    cfg: &ScenarioCfg,
) -> RegionSamples {
    let mut out = RegionSamples::new();
    for (region, nodes) in client_nodes {
        let samples: Vec<Sample> = nodes
            .iter()
            .flat_map(|n| sim.actor::<spider_baselines::BaselineClient>(*n).samples.clone())
            .filter(|s| keep(s, cfg.warmup))
            .collect();
        out.insert(region, samples);
    }
    out
}

/// Filters samples of one kind out of a region map.
pub fn filter_kind(samples: &RegionSamples, kind: OpKind) -> RegionSamples {
    samples
        .iter()
        .map(|(r, s)| (r.clone(), s.iter().filter(|x| x.kind == kind).copied().collect()))
        .collect()
}
