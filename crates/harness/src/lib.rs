//! Experiment harness: reproduces every figure of the paper's evaluation.
//!
//! The paper's evaluation (§5) deploys a key-value store behind four
//! system architectures on EC2 and reports response-time figures. This
//! crate packages the equivalents:
//!
//! * [`topology::ec2_topology`] — the regions, availability zones, and
//!   inter-region latencies of the paper's deployment (EC2 ca. 2020).
//! * [`stats`] — percentile summaries and time-bucketed series.
//! * [`scenarios`] — "deploy system X, run clients everywhere, collect
//!   latencies" building blocks shared by the figure runners.
//! * [`experiments`] — one module per figure (7, 8, 9a, 9b–d, 10, 11),
//!   each with a `run(&Config)` returning structured rows and a
//!   `render(...)` producing the human-readable table.
//!
//! Experiment scale is configurable; defaults are chosen so the full
//! suite finishes in minutes on a laptop while preserving the paper's
//! relative results (who wins, by what factor, where crossovers fall).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod scenarios;
pub mod stats;
pub mod topology;

pub use stats::{percentile, LatencySummary};
pub use topology::{ec2_topology, REGIONS4, REGIONS5};
