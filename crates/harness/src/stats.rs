//! Latency statistics: percentiles and time-bucketed series.

use serde::{Deserialize, Serialize};
use spider::Sample;
use spider_types::SimTime;

/// Summary of a latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile (the paper's second reported quantile).
    pub p90_ms: f64,
    /// 99th percentile (tail latency).
    pub p99_ms: f64,
    /// 99.9th percentile (deep tail; meaningful only with enough samples).
    pub p999_ms: f64,
    /// Mean.
    pub mean_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of latencies; `None` if empty.
    pub fn of(latencies: &[SimTime]) -> Option<LatencySummary> {
        if latencies.is_empty() {
            return None;
        }
        let mut ms: Vec<f64> = latencies.iter().map(|l| l.as_millis_f64()).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(LatencySummary {
            count: ms.len(),
            p50_ms: percentile(&ms, 50.0),
            p90_ms: percentile(&ms, 90.0),
            p99_ms: percentile(&ms, 99.0),
            p999_ms: percentile(&ms, 99.9),
            mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        })
    }

    /// Summarizes samples directly.
    pub fn of_samples(samples: &[Sample]) -> Option<LatencySummary> {
        let lats: Vec<SimTime> = samples.iter().map(Sample::latency).collect();
        LatencySummary::of(&lats)
    }
}

/// Percentile of an ascending-sorted slice (nearest-rank with linear
/// interpolation).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty distribution");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// One fixed-width bucket of a response-time-over-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Mean latency of completions in the bucket (ms).
    pub mean_ms: f64,
    /// 99th-percentile latency in the bucket (ms).
    pub p99_ms: f64,
    /// 99.9th-percentile latency in the bucket (ms).
    pub p999_ms: f64,
    /// Completions in the bucket.
    pub count: usize,
}

/// Buckets sample latencies into fixed-width time buckets (Fig 10's
/// response-time-over-time plots), reporting mean and tail percentiles
/// per non-empty bucket. Sparse buckets pin the tails to the bucket max,
/// which is exactly what a per-bucket p99.9 degrades to with few samples.
pub fn timeline(samples: &[Sample], bucket: SimTime, until: SimTime) -> Vec<TimeBucket> {
    let n_buckets = (until.as_nanos() / bucket.as_nanos()) as usize + 1;
    let mut lats: Vec<Vec<f64>> = vec![Vec::new(); n_buckets];
    for s in samples {
        let b = (s.completed.as_nanos() / bucket.as_nanos()) as usize;
        if b < n_buckets {
            lats[b].push(s.latency().as_millis_f64());
        }
    }
    lats.into_iter()
        .enumerate()
        .filter(|(_, ms)| !ms.is_empty())
        .map(|(b, mut ms)| {
            ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            TimeBucket {
                start: SimTime::from_nanos(b as u64 * bucket.as_nanos()),
                mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
                p99_ms: percentile(&ms, 99.0),
                p999_ms: percentile(&ms, 99.9),
                count: ms.len(),
            }
        })
        .collect()
}

/// Completed-ops-per-second in fixed-width buckets over `[0, until)`.
/// Unlike [`timeline`], *every* bucket is reported — empty buckets show
/// `0.0`, which is exactly what availability analysis needs.
pub fn goodput_timeline(
    samples: &[Sample],
    bucket: SimTime,
    until: SimTime,
) -> Vec<(SimTime, f64)> {
    assert!(bucket > SimTime::ZERO, "bucket must be positive");
    let n_buckets = (until.as_nanos() / bucket.as_nanos()) as usize;
    let mut counts = vec![0u64; n_buckets];
    for s in samples {
        let b = (s.completed.as_nanos() / bucket.as_nanos()) as usize;
        if b < n_buckets {
            counts[b] += 1;
        }
    }
    let width = bucket.as_secs_f64();
    (0..n_buckets)
        .map(|b| (SimTime::from_nanos(b as u64 * bucket.as_nanos()), counts[b] as f64 / width))
        .collect()
}

/// Mean completed-ops-per-second over `[start, end)`.
pub fn mean_goodput(samples: &[Sample], start: SimTime, end: SimTime) -> f64 {
    if end <= start {
        return 0.0;
    }
    let n = samples.iter().filter(|s| s.completed >= start && s.completed < end).count();
    n as f64 / (end - start).as_secs_f64()
}

/// The longest interval within `[start, end]` containing zero completed
/// operations — the unavailability window clients actually experienced.
pub fn longest_unavailability(samples: &[Sample], start: SimTime, end: SimTime) -> SimTime {
    if end <= start {
        return SimTime::ZERO;
    }
    let mut completions: Vec<SimTime> =
        samples.iter().map(|s| s.completed).filter(|c| *c >= start && *c <= end).collect();
    completions.sort();
    let mut longest = SimTime::ZERO;
    let mut prev = start;
    for c in completions {
        longest = longest.max(c.saturating_sub(prev));
        prev = c;
    }
    longest.max(end.saturating_sub(prev))
}

/// Recovery time after a heal: the delay from `heal` until bucketed
/// goodput first returns to `fraction` of `reference_rps`, scanning
/// heal-aligned buckets of width `bucket` up to `until`. Returns the end
/// of the first recovered bucket (relative to `heal`), or `None` if
/// goodput never recovers within the horizon.
pub fn recovery_time(
    samples: &[Sample],
    heal: SimTime,
    reference_rps: f64,
    fraction: f64,
    bucket: SimTime,
    until: SimTime,
) -> Option<SimTime> {
    assert!(bucket > SimTime::ZERO, "bucket must be positive");
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let target = reference_rps * fraction;
    let mut lo = heal;
    while lo < until {
        let hi = (lo + bucket).min(until);
        if mean_goodput(samples, lo, hi) >= target {
            return Some(hi.saturating_sub(heal));
        }
        lo = hi;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::OpKind;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }

    #[test]
    fn summary_of_uniform_values() {
        let lats: Vec<SimTime> = (1..=100).map(SimTime::from_millis).collect();
        let s = LatencySummary::of(&lats).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.5).abs() < 0.01);
        assert!((s.p90_ms - 90.1).abs() < 0.51);
        assert!((s.mean_ms - 50.5).abs() < 0.01);
    }

    #[test]
    fn tail_percentiles_pin_distribution_edges() {
        // A single sample: every quantile collapses to that sample.
        let one = LatencySummary::of(&[SimTime::from_millis(7)]).unwrap();
        assert_eq!(one.p99_ms, 7.0);
        assert_eq!(one.p999_ms, 7.0);
        // Uniform 1..=1000 ms: interpolated nearest-rank values.
        let lats: Vec<SimTime> = (1..=1000).map(SimTime::from_millis).collect();
        let s = LatencySummary::of(&lats).unwrap();
        assert!((s.p99_ms - 990.01).abs() < 1e-6);
        assert!((s.p999_ms - 999.001).abs() < 1e-6);
        // Two samples: p99.9 interpolates almost entirely to the max.
        assert!((percentile(&[1.0, 2.0], 99.9) - 1.999).abs() < 1e-12);
        // p100 is exactly the max, p0 exactly the min.
        assert_eq!(percentile(&[3.0, 9.0, 27.0], 100.0), 27.0);
        assert_eq!(percentile(&[3.0, 9.0, 27.0], 0.0), 3.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(LatencySummary::of(&[]).is_none());
    }

    #[test]
    fn timeline_buckets_by_completion() {
        let mk = |at_ms: u64, lat_ms: u64| Sample {
            kind: OpKind::Write,
            issued: SimTime::from_millis(at_ms - lat_ms),
            completed: SimTime::from_millis(at_ms),
        };
        let samples = vec![mk(500, 100), mk(900, 300), mk(1500, 200)];
        let tl = timeline(&samples, SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].start, SimTime::ZERO);
        assert!((tl[0].mean_ms - 200.0).abs() < 1e-9, "mean of 100 and 300");
        assert_eq!(tl[0].count, 2);
        assert_eq!(tl[1].start, SimTime::from_secs(1));
        assert!((tl[1].mean_ms - 200.0).abs() < 1e-9);
        // Tails interpolate toward the bucket max and stay ordered.
        assert!(tl[0].p99_ms <= tl[0].p999_ms && tl[0].p999_ms <= 300.0);
        assert!(tl[0].p999_ms > 299.0, "p99.9 of {{100, 300}} sits at the max");
        assert_eq!(tl[1].p999_ms, 200.0, "single-sample bucket collapses");
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    fn done_at(ms: &[u64]) -> Vec<Sample> {
        ms.iter()
            .map(|&at| Sample {
                kind: OpKind::Write,
                issued: SimTime::from_millis(at.saturating_sub(10)),
                completed: SimTime::from_millis(at),
            })
            .collect()
    }

    #[test]
    fn goodput_timeline_reports_empty_buckets_as_zero() {
        let samples = done_at(&[100, 200, 2500]);
        let tl = goodput_timeline(&samples, SimTime::from_secs(1), SimTime::from_secs(3));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0], (SimTime::ZERO, 2.0));
        assert_eq!(tl[1], (SimTime::from_secs(1), 0.0), "empty bucket is present");
        assert_eq!(tl[2], (SimTime::from_secs(2), 1.0));
    }

    #[test]
    fn longest_unavailability_spans_gaps_and_edges() {
        // Completions at 1s and 2s over a [0, 10s] window: the longest
        // dead interval is the trailing 8 seconds.
        let samples = done_at(&[1000, 2000]);
        let gap = longest_unavailability(&samples, SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(gap, SimTime::from_secs(8));
        // No completions at all: the entire window is dead.
        let empty = longest_unavailability(&[], SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(empty, SimTime::from_secs(10));
    }

    #[test]
    fn recovery_time_finds_first_recovered_bucket() {
        // Heal at 10s; goodput returns at 5 ops/s from t=12s on.
        let mut ms = Vec::new();
        for t in (12_000..20_000).step_by(200) {
            ms.push(t);
        }
        let samples = done_at(&ms);
        let rec = recovery_time(
            &samples,
            SimTime::from_secs(10),
            5.0,
            0.9,
            SimTime::from_secs(1),
            SimTime::from_secs(20),
        );
        assert_eq!(rec, Some(SimTime::from_secs(3)), "buckets 10-11s and 11-12s are dead");
        let never = recovery_time(
            &samples,
            SimTime::from_secs(10),
            500.0,
            0.9,
            SimTime::from_secs(1),
            SimTime::from_secs(20),
        );
        assert_eq!(never, None);
    }

    #[test]
    fn mean_goodput_is_rate_over_window() {
        let samples = done_at(&[500, 1500, 2500, 9500]);
        let rate = mean_goodput(&samples, SimTime::ZERO, SimTime::from_secs(10));
        assert!((rate - 0.4).abs() < 1e-9);
        assert_eq!(mean_goodput(&samples, SimTime::from_secs(5), SimTime::from_secs(5)), 0.0);
    }
}
