//! Latency statistics: percentiles and time-bucketed series.

use serde::{Deserialize, Serialize};
use spider::Sample;
use spider_types::SimTime;

/// Summary of a latency distribution, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile (the paper's second reported quantile).
    pub p90_ms: f64,
    /// Mean.
    pub mean_ms: f64,
}

impl LatencySummary {
    /// Summarizes a set of latencies; `None` if empty.
    pub fn of(latencies: &[SimTime]) -> Option<LatencySummary> {
        if latencies.is_empty() {
            return None;
        }
        let mut ms: Vec<f64> = latencies.iter().map(|l| l.as_millis_f64()).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(LatencySummary {
            count: ms.len(),
            p50_ms: percentile(&ms, 50.0),
            p90_ms: percentile(&ms, 90.0),
            mean_ms: ms.iter().sum::<f64>() / ms.len() as f64,
        })
    }

    /// Summarizes samples directly.
    pub fn of_samples(samples: &[Sample]) -> Option<LatencySummary> {
        let lats: Vec<SimTime> = samples.iter().map(Sample::latency).collect();
        LatencySummary::of(&lats)
    }
}

/// Percentile of an ascending-sorted slice (nearest-rank with linear
/// interpolation).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty distribution");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Averages sample latencies into fixed-width time buckets (Fig 10's
/// response-time-over-time plots). Returns `(bucket start, mean ms,
/// count)` for every non-empty bucket.
pub fn timeline(samples: &[Sample], bucket: SimTime, until: SimTime) -> Vec<(SimTime, f64, usize)> {
    let n_buckets = (until.as_nanos() / bucket.as_nanos()) as usize + 1;
    let mut sums = vec![0.0f64; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for s in samples {
        let b = (s.completed.as_nanos() / bucket.as_nanos()) as usize;
        if b < n_buckets {
            sums[b] += s.latency().as_millis_f64();
            counts[b] += 1;
        }
    }
    (0..n_buckets)
        .filter(|b| counts[*b] > 0)
        .map(|b| {
            (
                SimTime::from_nanos(b as u64 * bucket.as_nanos()),
                sums[b] / counts[b] as f64,
                counts[b],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::OpKind;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
    }

    #[test]
    fn summary_of_uniform_values() {
        let lats: Vec<SimTime> = (1..=100).map(SimTime::from_millis).collect();
        let s = LatencySummary::of(&lats).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.5).abs() < 0.01);
        assert!((s.p90_ms - 90.1).abs() < 0.51);
        assert!((s.mean_ms - 50.5).abs() < 0.01);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(LatencySummary::of(&[]).is_none());
    }

    #[test]
    fn timeline_buckets_by_completion() {
        let mk = |at_ms: u64, lat_ms: u64| Sample {
            kind: OpKind::Write,
            issued: SimTime::from_millis(at_ms - lat_ms),
            completed: SimTime::from_millis(at_ms),
        };
        let samples = vec![mk(500, 100), mk(900, 300), mk(1500, 200)];
        let tl = timeline(&samples, SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].0, SimTime::ZERO);
        assert!((tl[0].1 - 200.0).abs() < 1e-9, "mean of 100 and 300");
        assert_eq!(tl[0].2, 2);
        assert_eq!(tl[1].0, SimTime::from_secs(1));
        assert!((tl[1].1 - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }
}
