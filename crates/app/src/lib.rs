//! Application state machines for the Spider reproduction.
//!
//! The paper's evaluation runs a **key-value store** behind every system
//! under test (§5). This crate provides that store as a deterministic
//! [`Application`]: binary get/put operations, full-state snapshots, and a
//! workload-operation encoder used by the experiment harness.
//!
//! # Examples
//!
//! ```
//! use spider_app::{KvOp, KvStore};
//! use spider::Application;
//!
//! let mut store = KvStore::new();
//! let put = KvOp::put(b"user:7", vec![1, 2, 3]).encode();
//! store.execute(&put);
//! let get = KvOp::get(b"user:7").encode();
//! assert_eq!(&store.execute_read(&get)[..], &[1, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spider::Application;
use std::collections::BTreeMap;

/// A key-value store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Read the value under `key`.
    Get {
        /// The key.
        key: Vec<u8>,
    },
}

impl KvOp {
    /// Convenience constructor for puts.
    pub fn put(key: &[u8], value: Vec<u8>) -> KvOp {
        KvOp::Put { key: key.to_vec(), value }
    }

    /// Convenience constructor for gets.
    pub fn get(key: &[u8]) -> KvOp {
        KvOp::Get { key: key.to_vec() }
    }

    /// Serializes the operation to the store's wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            KvOp::Put { key, value } => {
                buf.put_u8(b'P');
                buf.put_u16(key.len() as u16);
                buf.put_slice(key);
                buf.put_u32(value.len() as u32);
                buf.put_slice(value);
            }
            KvOp::Get { key } => {
                buf.put_u8(b'G');
                buf.put_u16(key.len() as u16);
                buf.put_slice(key);
            }
        }
        buf.freeze()
    }

    /// Parses an operation; `None` for malformed input.
    pub fn decode(mut buf: &[u8]) -> Option<KvOp> {
        if buf.remaining() < 3 {
            return None;
        }
        let tag = buf.get_u8();
        let klen = buf.get_u16() as usize;
        if buf.remaining() < klen {
            return None;
        }
        let key = buf[..klen].to_vec();
        buf.advance(klen);
        match tag {
            b'P' => {
                if buf.remaining() < 4 {
                    return None;
                }
                let vlen = buf.get_u32() as usize;
                if buf.remaining() < vlen {
                    return None;
                }
                Some(KvOp::Put { key, value: buf[..vlen].to_vec() })
            }
            b'G' => Some(KvOp::Get { key }),
            _ => None,
        }
    }

    /// Builds a put whose total encoded size is exactly `total_bytes`
    /// (padding the value), mirroring the paper's fixed-size requests.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is too small to hold the header and key.
    pub fn sized_put(key: &[u8], total_bytes: usize, fill: u8) -> KvOp {
        let overhead = 1 + 2 + key.len() + 4;
        assert!(total_bytes >= overhead, "payload too small for key");
        KvOp::Put { key: key.to_vec(), value: vec![fill; total_bytes - overhead] }
    }
}

/// Reply returned for a `Get` on a missing key.
pub const NOT_FOUND: &[u8] = b"\0not-found";
/// Reply returned for a successful `Put`.
pub const OK: &[u8] = b"\0ok";
/// Reply returned for a malformed operation.
pub const MALFORMED: &[u8] = b"\0malformed";

/// A deterministic, snapshotable key-value store.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Number of executed operations (diagnostics).
    pub ops_applied: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct lookup (tests).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Digest of the key-value contents only, excluding the
    /// `ops_applied` diagnostic counter.
    ///
    /// Replicas of *one* group always agree on the full
    /// [`Application::state_digest`]; across groups the executed-ops
    /// counter may differ (strongly consistent reads run only at their
    /// target group, §3.3), while the map contents must still match.
    pub fn map_digest(&self) -> spider_crypto::Digest {
        let mut b = spider_crypto::Digest::builder().u64(self.map.len() as u64);
        for (k, v) in &self.map {
            b = b.bytes(k).bytes(v);
        }
        b.finish()
    }
}

impl Application for KvStore {
    fn execute(&mut self, op: &[u8]) -> Bytes {
        self.ops_applied += 1;
        match KvOp::decode(op) {
            Some(KvOp::Put { key, value }) => {
                self.map.insert(key, value);
                Bytes::from_static(OK)
            }
            Some(KvOp::Get { key }) => match self.map.get(&key) {
                Some(v) => Bytes::from(v.clone()),
                None => Bytes::from_static(NOT_FOUND),
            },
            None => Bytes::from_static(MALFORMED),
        }
    }

    fn execute_read(&self, op: &[u8]) -> Bytes {
        match KvOp::decode(op) {
            Some(KvOp::Get { key }) => match self.map.get(&key) {
                Some(v) => Bytes::from(v.clone()),
                None => Bytes::from_static(NOT_FOUND),
            },
            // Writes through the read path are rejected, not applied.
            Some(KvOp::Put { .. }) => Bytes::from_static(MALFORMED),
            None => Bytes::from_static(MALFORMED),
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.map.len() as u32);
        for (k, v) in &self.map {
            buf.put_u16(k.len() as u16);
            buf.put_slice(k);
            buf.put_u32(v.len() as u32);
            buf.put_slice(v);
        }
        buf.put_u64(self.ops_applied);
        buf.freeze()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut buf = snapshot;
        let mut map = BTreeMap::new();
        if buf.remaining() < 4 {
            return;
        }
        let n = buf.get_u32() as usize;
        for _ in 0..n {
            if buf.remaining() < 2 {
                return;
            }
            let klen = buf.get_u16() as usize;
            if buf.remaining() < klen + 4 {
                return;
            }
            let key = buf[..klen].to_vec();
            buf.advance(klen);
            let vlen = buf.get_u32() as usize;
            if buf.remaining() < vlen {
                return;
            }
            let value = buf[..vlen].to_vec();
            buf.advance(vlen);
            map.insert(key, value);
        }
        self.map = map;
        if buf.remaining() >= 8 {
            self.ops_applied = buf.get_u64();
        }
    }
}

/// Builds a [`spider::client::OpFactory`] producing key-value operations
/// over a key space of `keys` keys, padding writes to `payload` bytes —
/// the workload shape of the paper's evaluation (§5).
pub fn kv_op_factory(keys: u32) -> spider::client::OpFactory {
    std::sync::Arc::new(move |seq, kind, payload| {
        let key = format!("key-{:06}", seq % keys as u64);
        match kind {
            spider_types::OpKind::Write => {
                KvOp::sized_put(key.as_bytes(), payload.max(key.len() + 8), b'x').encode()
            }
            _ => KvOp::get(key.as_bytes()).encode(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_then_get_roundtrip() {
        let mut s = KvStore::new();
        assert_eq!(&s.execute(&KvOp::put(b"a", vec![9]).encode())[..], OK);
        assert_eq!(&s.execute(&KvOp::get(b"a").encode())[..], &[9]);
        assert_eq!(&s.execute(&KvOp::get(b"b").encode())[..], NOT_FOUND);
    }

    #[test]
    fn weak_read_path_cannot_write() {
        let s = KvStore::new();
        let r = s.execute_read(&KvOp::put(b"a", vec![1]).encode());
        assert_eq!(&r[..], MALFORMED);
        assert!(s.is_empty());
    }

    #[test]
    fn malformed_ops_are_rejected_deterministically() {
        let mut s = KvStore::new();
        assert_eq!(&s.execute(b"")[..], MALFORMED);
        assert_eq!(&s.execute(b"X123")[..], MALFORMED);
        assert_eq!(&s.execute(&[b'P', 0xff, 0xff, 1])[..], MALFORMED);
        assert!(s.is_empty());
    }

    #[test]
    fn sized_put_hits_exact_payload_size() {
        let op = KvOp::sized_put(b"key-000001", 200, b'x');
        assert_eq!(op.encode().len(), 200);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut a = KvStore::new();
        for i in 0..50u32 {
            a.execute(&KvOp::put(format!("k{i}").as_bytes(), vec![i as u8; 10]).encode());
        }
        let snap = a.snapshot();
        let mut b = KvStore::new();
        b.restore(&snap);
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(b.get(b"k7"), Some(&[7u8; 10][..]));
        assert_eq!(b.ops_applied, 50);
    }

    #[test]
    fn factory_produces_parseable_ops() {
        let f = kv_op_factory(100);
        let w = f(3, spider_types::OpKind::Write, 200);
        assert_eq!(w.len(), 200);
        assert!(matches!(KvOp::decode(&w), Some(KvOp::Put { .. })));
        let r = f(3, spider_types::OpKind::WeakRead, 200);
        assert!(matches!(KvOp::decode(&r), Some(KvOp::Get { .. })));
    }

    proptest! {
        /// Determinism: two stores fed the same operation sequence agree
        /// on every reply and end in the same state (RSM property A.14).
        #[test]
        fn determinism(ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..16),
             prop::collection::vec(any::<u8>(), 0..32),
             any::<bool>()),
            1..60,
        )) {
            let mut a = KvStore::new();
            let mut b = KvStore::new();
            for (key, value, is_put) in ops {
                let op = if is_put {
                    KvOp::Put { key, value }.encode()
                } else {
                    KvOp::Get { key }.encode()
                };
                prop_assert_eq!(a.execute(&op), b.execute(&op));
            }
            prop_assert_eq!(a.state_digest(), b.state_digest());
        }

        /// Encode/decode are inverse for arbitrary keys and values.
        #[test]
        fn codec_roundtrip(key in prop::collection::vec(any::<u8>(), 0..64),
                           value in prop::collection::vec(any::<u8>(), 0..256),
                           is_put in any::<bool>()) {
            let op = if is_put {
                KvOp::Put { key, value }
            } else {
                KvOp::Get { key }
            };
            prop_assert_eq!(KvOp::decode(&op.encode()), Some(op));
        }

        /// Snapshot/restore reproduces the exact state for arbitrary maps.
        #[test]
        fn snapshot_roundtrip(entries in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..16),
            prop::collection::vec(any::<u8>(), 0..32),
            0..40,
        )) {
            let mut a = KvStore::new();
            for (k, v) in &entries {
                a.execute(&KvOp::Put { key: k.clone(), value: v.clone() }.encode());
            }
            let mut b = KvStore::new();
            b.restore(&a.snapshot());
            prop_assert_eq!(a.state_digest(), b.state_digest());
        }
    }
}
