//! The BFT baseline: one PBFT group spread across regions (Fig 1a), with
//! optional weighted voting (BFT-WV).

use crate::messages::BaseMsg;
use bytes::Bytes;
use spider::app::Application;
use spider::directory::Directory;
use spider::messages::{ClientRequest, Reply};
use spider::SpiderConfig;
use spider_consensus::{Input, Output, Pbft, PbftConfig, TimerToken};
use spider_sim::{Actor, Context, Simulation, Timer, TimerId};
use spider_types::{ClientId, NodeId, OpKind, SeqNr, SimTime};
use std::collections::HashMap;

const TAG_PBFT_BASE: u64 = 100;
/// Unilateral consensus garbage collection interval (the baselines skip
/// the full checkpoint protocol; its CPU cost is negligible next to the
/// WAN round trips being measured).
const GC_INTERVAL: u64 = 64;

/// A replica of the traditional geo-distributed PBFT deployment.
pub struct BftReplica<A: Application> {
    directory: Directory,
    cfg: SpiderConfig,
    pbft: Pbft<ClientRequest>,
    app: A,
    executed: HashMap<ClientId, (u64, Bytes)>,
    delivered: u64,
    timers: HashMap<u64, TimerId>,
    /// Number of executed requests (diagnostics).
    pub execute_count: u64,
}

impl<A: Application> BftReplica<A> {
    /// Creates replica `me` of the global group.
    pub fn new(
        cfg: SpiderConfig,
        pbft_cfg: PbftConfig,
        me: usize,
        directory: Directory,
        app: A,
    ) -> Self {
        let _ = me;
        BftReplica {
            directory,
            cfg,
            pbft: Pbft::new(pbft_cfg, me),
            app,
            executed: HashMap::new(),
            delivered: 0,
            timers: HashMap::new(),
            execute_count: 0,
        }
    }

    /// Digest of the application state (tests).
    pub fn app_digest(&self) -> spider_crypto::Digest {
        self.app.state_digest()
    }

    /// Current view of the global consensus.
    pub fn view(&self) -> spider_types::ViewNr {
        self.pbft.view()
    }

    fn apply_outputs(
        &mut self,
        ctx: &mut Context<'_, BaseMsg>,
        outputs: Vec<Output<ClientRequest>>,
    ) {
        let replicas = self.directory.agreement();
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(node) = replicas.get(to) {
                        ctx.send(*node, BaseMsg::Pbft(msg));
                    }
                }
                Output::Deliver { batch, .. } => {
                    for req in batch {
                        self.execute(ctx, req);
                    }
                    self.delivered += 1;
                    if self.delivered.is_multiple_of(GC_INTERVAL) && self.delivered > GC_INTERVAL {
                        self.pbft.gc(SeqNr(self.delivered - GC_INTERVAL));
                    }
                }
                Output::SetTimer { token, delay } => self.arm(ctx, TAG_PBFT_BASE + token.0, delay),
                Output::CancelTimer { token } => {
                    if let Some(id) = self.timers.remove(&(TAG_PBFT_BASE + token.0)) {
                        ctx.cancel_timer(id);
                    }
                }
                Output::Charge(c) => ctx.charge_op("consensus", "handle", c),
                _ => {}
            }
        }
    }

    fn execute(&mut self, ctx: &mut Context<'_, BaseMsg>, req: ClientRequest) {
        let fresh = self.executed.get(&req.client).is_none_or(|(tc, _)| *tc < req.tc);
        if !fresh {
            return;
        }
        ctx.charge(self.cfg.cost.app_execute());
        let result = self.app.execute(&req.operation.op);
        self.execute_count += 1;
        self.executed.insert(req.client, (req.tc, result.clone()));
        if let Some(node) = self.directory.client_node(req.client) {
            ctx.charge(self.cfg.cost.hmac(result.len()));
            ctx.send(
                node,
                BaseMsg::Reply(Reply { tc: req.tc, result, weak: false, resubmit: false }),
            );
        }
    }

    fn arm(&mut self, ctx: &mut Context<'_, BaseMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }
}

impl<A: Application> Actor<BaseMsg> for BftReplica<A> {
    fn on_message(&mut self, ctx: &mut Context<'_, BaseMsg>, from: NodeId, msg: BaseMsg) {
        ctx.charge(self.cfg.cost.msg_overhead());
        match msg {
            BaseMsg::Request(req) => {
                ctx.charge(self.cfg.cost.hmac(spider_types::WireSize::wire_size(&req)));
                if req.operation.kind != OpKind::Write {
                    // PBFT's optimized read path (§5 "Reads"): replicas
                    // answer reads directly from their committed state.
                    // Weak reads need f+1 matching replies at the client;
                    // strongly consistent reads need 2f+1 (the read quorum
                    // intersects every write quorum in a correct replica).
                    ctx.charge(self.cfg.cost.app_execute());
                    let result = self.app.execute_read(&req.operation.op);
                    if let Some(node) = self.directory.client_node(req.client) {
                        ctx.send(
                            node,
                            BaseMsg::Reply(Reply {
                                tc: req.tc,
                                result,
                                weak: req.operation.kind == OpKind::WeakRead,
                                resubmit: false,
                            }),
                        );
                    }
                    return;
                }
                // Retried request already executed? Resend the reply.
                if let Some((tc, result)) = self.executed.get(&req.client) {
                    if *tc >= req.tc {
                        if *tc == req.tc {
                            if let Some(node) = self.directory.client_node(req.client) {
                                ctx.send(
                                    node,
                                    BaseMsg::Reply(Reply {
                                        tc: req.tc,
                                        result: result.clone(),
                                        weak: false,
                                        resubmit: false,
                                    }),
                                );
                            }
                        }
                        return;
                    }
                }
                ctx.charge(self.cfg.cost.rsa_verify());
                let mut out = Vec::new();
                self.pbft.handle(ctx.now(), Input::Order(req), &mut out);
                self.apply_outputs(ctx, out);
            }
            BaseMsg::Pbft(m) => {
                let Some(idx) = self.directory.agreement().iter().position(|n| *n == from) else {
                    return;
                };
                let mut out = Vec::new();
                self.pbft.handle(ctx.now(), Input::Message { from: idx, msg: m }, &mut out);
                self.apply_outputs(ctx, out);
            }
            BaseMsg::Reply(_) | BaseMsg::Steward(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaseMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        if timer.tag >= TAG_PBFT_BASE {
            let mut out = Vec::new();
            self.pbft.handle(
                ctx.now(),
                Input::Timer(TimerToken(timer.tag - TAG_PBFT_BASE)),
                &mut out,
            );
            self.apply_outputs(ctx, out);
        }
    }
}

/// A built BFT / BFT-WV deployment.
pub struct BftDeployment {
    /// Shared directory.
    pub directory: Directory,
    /// Replica nodes, replica-index order (replica 0 = initial leader).
    pub replicas: Vec<NodeId>,
    /// Configuration.
    pub cfg: SpiderConfig,
    /// Reply quorum clients wait for (`f + 1`).
    pub reply_quorum: usize,
    next_client: u32,
    /// Spawned clients.
    pub clients: Vec<(ClientId, NodeId)>,
}

impl BftDeployment {
    /// Builds the classic BFT baseline: `3f + 1` replicas, one per region
    /// in `regions` order — `regions[0]` hosts the initial leader.
    ///
    /// # Panics
    ///
    /// Panics unless `regions.len() == 3f + 1`.
    pub fn build<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        regions: &[&str],
        app_factory: impl Fn() -> A,
    ) -> Self {
        assert_eq!(regions.len(), 3 * cfg.fa + 1, "one replica per region");
        let pbft_cfg = cfg.tune_pbft(PbftConfig::new(cfg.fa));
        Self::build_with_pbft(sim, cfg, pbft_cfg, regions, app_factory)
    }

    /// Builds BFT-WV: `3f + 1 + delta` replicas, WHEAT weights on the
    /// replicas listed in `vmax_regions` (indices into `regions`).
    pub fn build_weighted<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        regions: &[&str],
        delta: usize,
        vmax_holders: &[usize],
        app_factory: impl Fn() -> A,
    ) -> Self {
        assert_eq!(regions.len(), 3 * cfg.fa + 1 + delta);
        let pbft_cfg = cfg.tune_pbft(PbftConfig::weighted(cfg.fa, delta, vmax_holders));
        Self::build_with_pbft(sim, cfg, pbft_cfg, regions, app_factory)
    }

    /// Builds a PBFT group with explicit per-replica `(region, zone)`
    /// placement — used for the Spider-0E comparison point (Fig 9a) where
    /// all replicas live in different zones of one region.
    pub fn build_in_zones<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        placements: &[(&str, u8)],
        app_factory: impl Fn() -> A,
    ) -> Self {
        assert_eq!(placements.len(), 3 * cfg.fa + 1);
        let pbft_cfg = cfg.tune_pbft(PbftConfig::new(cfg.fa));
        let directory = Directory::new();
        let mut replicas = Vec::new();
        for (i, (region, zone)) in placements.iter().enumerate() {
            let zone = sim.topology().zone(region, *zone);
            let replica =
                BftReplica::new(cfg.clone(), pbft_cfg.clone(), i, directory.clone(), app_factory());
            replicas.push(sim.add_node(zone, replica));
        }
        directory.set_agreement(replicas.clone());
        BftDeployment {
            directory,
            replicas,
            reply_quorum: cfg.fa + 1,
            cfg,
            next_client: 0,
            clients: Vec::new(),
        }
    }

    fn build_with_pbft<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        pbft_cfg: PbftConfig,
        regions: &[&str],
        app_factory: impl Fn() -> A,
    ) -> Self {
        let directory = Directory::new();
        let mut replicas = Vec::new();
        for (i, region) in regions.iter().enumerate() {
            let zone = sim.topology().zone(region, 0);
            let replica =
                BftReplica::new(cfg.clone(), pbft_cfg.clone(), i, directory.clone(), app_factory());
            replicas.push(sim.add_node(zone, replica));
        }
        directory.set_agreement(replicas.clone());
        BftDeployment {
            directory,
            replicas,
            reply_quorum: cfg.fa + 1,
            cfg,
            next_client: 0,
            clients: Vec::new(),
        }
    }

    /// Spawns `count` clients in `region` issuing `workload`; they talk to
    /// every replica of the global group.
    pub fn spawn_clients(
        &mut self,
        sim: &mut Simulation<BaseMsg>,
        region: &str,
        count: usize,
        workload: spider::WorkloadSpec,
    ) -> Vec<NodeId> {
        let zones = sim.topology().num_zones(sim.topology().region(region));
        let mut nodes = Vec::new();
        for k in 0..count {
            let id = ClientId(self.next_client);
            self.next_client += 1;
            let zone = sim.topology().zone(region, (k % zones as usize) as u8);
            let client = crate::client::BaselineClient::new(
                self.cfg.clone(),
                id,
                self.replicas.clone(),
                self.reply_quorum,
                self.directory.clone(),
                Some(workload.clone()),
            )
            // PBFT optimized reads need 2f+1 matching replies; with
            // weighted voting (n > 3f+1) a count-based conservative
            // equivalent is n-1 matching replies.
            .with_strong_read_quorum(if self.replicas.len() > 3 * self.cfg.fa + 1 {
                self.replicas.len() - 1
            } else {
                2 * self.cfg.fa + 1
            });
            let node = sim.add_node(zone, client);
            self.directory.register_client(id, node);
            self.clients.push((id, node));
            nodes.push(node);
        }
        nodes
    }

    /// Collects samples from every client.
    pub fn collect_samples(
        &self,
        sim: &Simulation<BaseMsg>,
    ) -> Vec<(ClientId, Vec<spider::Sample>)> {
        self.clients
            .iter()
            .map(|(id, node)| {
                (*id, sim.actor::<crate::client::BaselineClient>(*node).samples.clone())
            })
            .collect()
    }
}
