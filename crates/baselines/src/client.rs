//! The client used by all baseline systems: broadcast to a replica set,
//! accept `quorum` matching replies. Reuses Spider's workload machinery so
//! latency comparisons are apples-to-apples.

use crate::messages::BaseMsg;
use bytes::Bytes;
use rand::Rng;
use spider::directory::Directory;
use spider::messages::{ClientRequest, Operation, Reply};
use spider::{Sample, SpiderConfig, WorkloadSpec};
use spider_sim::{Actor, Context, Timer, TimerId};
use spider_types::{ClientId, NodeId, OpKind, SimTime, WireSize};
use std::collections::HashMap;

const TAG_ISSUE: u64 = 1;
const TAG_RETRY: u64 = 2;

struct InFlight {
    kind: OpKind,
    op: Bytes,
    tc: u64,
    issued: SimTime,
    replies: HashMap<NodeId, Bytes>,
}

/// A baseline-system client actor.
pub struct BaselineClient {
    cfg: SpiderConfig,
    id: ClientId,
    /// Replicas this client talks to (the whole group for BFT/BFT-WV, the
    /// local site for HFT).
    replicas: Vec<NodeId>,
    quorum: usize,
    /// Reply quorum for strongly consistent reads (2f+1 for PBFT's
    /// optimized read; equal to `quorum` where strong reads are ordered).
    strong_read_quorum: usize,
    directory: Directory,
    workload: Option<WorkloadSpec>,
    tc: u64,
    issued_count: u64,
    in_flight: Option<InFlight>,
    /// Completed request samples.
    pub samples: Vec<Sample>,
    timers: HashMap<u64, TimerId>,
}

impl BaselineClient {
    /// Creates a client that broadcasts to `replicas` and accepts `quorum`
    /// matching replies.
    pub fn new(
        cfg: SpiderConfig,
        id: ClientId,
        replicas: Vec<NodeId>,
        quorum: usize,
        directory: Directory,
        workload: Option<WorkloadSpec>,
    ) -> Self {
        BaselineClient {
            cfg,
            id,
            replicas,
            quorum,
            strong_read_quorum: quorum,
            directory,
            workload,
            tc: 0,
            issued_count: 0,
            in_flight: None,
            samples: Vec::new(),
            timers: HashMap::new(),
        }
    }

    /// Overrides the strong-read quorum (PBFT optimized reads need 2f+1).
    #[must_use]
    pub fn with_strong_read_quorum(mut self, q: usize) -> Self {
        self.strong_read_quorum = q;
        self
    }

    fn schedule_next_issue(&mut self, ctx: &mut Context<'_, BaseMsg>) {
        let Some(w) = &self.workload else { return };
        if w.max_ops != 0 && self.issued_count >= w.max_ops {
            return;
        }
        let mean = 1.0 / w.rate_per_sec.max(1e-9);
        let u: f64 = ctx.rng().gen_range(1e-9..1.0f64);
        let gap = SimTime::from_secs_f64(-u.ln() * mean);
        self.arm(ctx, TAG_ISSUE, gap);
    }

    fn issue(&mut self, ctx: &mut Context<'_, BaseMsg>, kind: OpKind, op: Bytes) {
        self.tc += 1;
        self.issued_count += 1;
        self.in_flight =
            Some(InFlight { kind, op, tc: self.tc, issued: ctx.now(), replies: HashMap::new() });
        self.transmit(ctx);
        let retry = self.cfg.client_retry;
        self.arm(ctx, TAG_RETRY, retry);
    }

    fn transmit(&mut self, ctx: &mut Context<'_, BaseMsg>) {
        let Some(inf) = &self.in_flight else { return };
        let request = ClientRequest {
            client: self.id,
            tc: inf.tc,
            operation: Operation { op: inf.op.clone(), kind: inf.kind },
        };
        ctx.charge(
            self.cfg.cost.rsa_sign()
                + self.cfg.cost.mac_vector(self.replicas.len(), request.wire_size()),
        );
        for node in self.replicas.clone() {
            ctx.send(node, BaseMsg::Request(request.clone()));
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_, BaseMsg>, from: NodeId, reply: Reply) {
        ctx.charge(self.cfg.cost.hmac(reply.result.len()));
        let Some(inf) = &mut self.in_flight else { return };
        if reply.tc != inf.tc || reply.weak != (inf.kind == OpKind::WeakRead) {
            return;
        }
        inf.replies.insert(from, reply.result);
        let needed =
            if inf.kind == OpKind::StrongRead { self.strong_read_quorum } else { self.quorum };
        let mut counts: HashMap<&Bytes, usize> = HashMap::new();
        for r in inf.replies.values() {
            *counts.entry(r).or_default() += 1;
        }
        if counts.values().any(|n| *n >= needed) {
            self.samples.push(Sample { kind: inf.kind, issued: inf.issued, completed: ctx.now() });
            self.in_flight = None;
            if let Some(id) = self.timers.remove(&TAG_RETRY) {
                ctx.cancel_timer(id);
            }
        }
        let _ = &self.directory; // reserved for future re-targeting
    }

    fn arm(&mut self, ctx: &mut Context<'_, BaseMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }
}

impl Actor<BaseMsg> for BaselineClient {
    fn on_start(&mut self, ctx: &mut Context<'_, BaseMsg>) {
        if let Some(w) = &self.workload {
            let delay = w.start_delay;
            self.arm(ctx, TAG_ISSUE, delay);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BaseMsg>, from: NodeId, msg: BaseMsg) {
        if let BaseMsg::Reply(reply) = msg {
            self.on_reply(ctx, from, reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaseMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        match timer.tag {
            TAG_ISSUE => {
                if self.in_flight.is_none() {
                    let w = self.workload.as_ref().expect("workload present");
                    let x: f64 = ctx.rng().gen_range(0.0..1.0);
                    let kind = if x < w.write_fraction {
                        OpKind::Write
                    } else if x < w.write_fraction + w.strong_read_fraction {
                        OpKind::StrongRead
                    } else {
                        OpKind::WeakRead
                    };
                    let op = (w.op_factory)(self.issued_count, kind, w.payload_bytes);
                    self.issue(ctx, kind, op);
                }
                self.schedule_next_issue(ctx);
            }
            TAG_RETRY if self.in_flight.is_some() => {
                self.transmit(ctx);
                let retry = self.cfg.client_retry;
                self.arm(ctx, TAG_RETRY, retry);
            }
            _ => {}
        }
    }
}
