//! The HFT baseline: a Steward-style hierarchical architecture (Fig 1b).
//!
//! Every region ("site") hosts a cluster of `3f + 1` replicas running a
//! site-local BFT agreement; threshold signatures let each site speak with
//! one voice, so the wide-area protocol only needs to tolerate crashes:
//!
//! 1. A client submits its request to the local site; the site forwards it
//!    to the *leader site*.
//! 2. The leader site orders the request locally (PBFT) and emits a
//!    threshold-signed `Proposal(seq, request)` to every site.
//! 3. Each site locally agrees on the proposal, threshold-signs an
//!    `Accept(seq)`, and exchanges it with all sites.
//! 4. A request is globally committed once a majority of sites accepted
//!    it; replicas execute in sequence order and the client's local site
//!    replies.
//!
//! The expensive part — threshold-RSA shares and combines on every local
//! agreement (§5) — is charged via the cost model, which is why HFT pays
//! noticeably more CPU per request than Spider's plain channels.

use crate::messages::{accept_digest, proposal_digest, BaseMsg, StewardMsg};
use bytes::Bytes;
use spider::app::Application;
use spider::directory::Directory;
use spider::messages::{ClientRequest, Reply};
use spider::SpiderConfig;
use spider_consensus::{Input, Output, Pbft, PbftConfig, TimerToken};
use spider_crypto::threshold::ThresholdGroupId;
use spider_crypto::{Digest, Digestible, SigShare, ThresholdKeyring};
use spider_sim::{Actor, Context, Simulation, Timer, TimerId};
use spider_types::{ClientId, GroupId, NodeId, OpKind, SeqNr, SimTime, WireSize};
use std::collections::{BTreeMap, HashMap, HashSet};

const TAG_PBFT_BASE: u64 = 100;
const GC_INTERVAL: u64 = 64;

/// A replica of one Steward site.
pub struct StewardReplica<A: Application> {
    cfg: SpiderConfig,
    site: u16,
    me: usize,
    leader_site: u16,
    num_sites: usize,
    directory: Directory,
    tkr: ThresholdKeyring,
    /// Site-local agreement (orders requests at the leader site, proposals
    /// at follower sites).
    pbft: Pbft<ClientRequest>,
    app: A,

    /// Leader site: next global sequence number to assign.
    next_seq: u64,
    /// Leader site: global seq already assigned per request digest —
    /// a request re-delivered by the local agreement (e.g. after view
    /// changes) must not consume a second sequence number.
    assigned: HashMap<Digest, u64>,
    /// Proposals known: seq -> (request, proposal digest).
    proposals: BTreeMap<u64, (ClientRequest, Digest)>,
    /// Follower site: proposals awaiting local agreement, by request
    /// digest.
    pending_local: HashMap<Digest, Vec<SeqNr>>,
    /// Follower site: digests the local agreement already delivered.
    /// Needed because the site-local PBFT (driven by peers) may deliver a
    /// proposal's request *before* this replica receives the `Proposal`
    /// message itself — the accept share must then be produced
    /// immediately instead of waiting for a re-delivery that never comes.
    locally_delivered: HashSet<Digest>,
    locally_delivered_order: std::collections::VecDeque<Digest>,
    /// Representative (replica 0): collected threshold shares per
    /// (seq, accept?) slot.
    shares: HashMap<(u64, bool), Vec<SigShare>>,
    /// Sites that accepted each sequence number (leader site implicit).
    accepts: BTreeMap<u64, HashSet<u16>>,
    /// Next sequence number to execute.
    exec_next: u64,
    /// Reply cache.
    executed: HashMap<ClientId, (u64, Bytes)>,
    /// Requests already handed to local agreement (dedup).
    forwarded: HashMap<ClientId, u64>,
    delivered_local: u64,
    timers: HashMap<u64, TimerId>,
    /// Number of executed requests (diagnostics).
    pub execute_count: u64,
}

impl<A: Application> StewardReplica<A> {
    /// Creates replica `me` of `site`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SpiderConfig,
        site: u16,
        me: usize,
        leader_site: u16,
        num_sites: usize,
        directory: Directory,
        app: A,
    ) -> Self {
        let pbft_cfg = cfg.tune_pbft(PbftConfig::new(cfg.fa));
        StewardReplica {
            site,
            me,
            leader_site,
            num_sites,
            directory,
            tkr: ThresholdKeyring::new(cfg.key_seed, cfg.fa + 1),
            pbft: Pbft::new(pbft_cfg, me),
            app,
            next_seq: 0,
            assigned: HashMap::new(),
            proposals: BTreeMap::new(),
            pending_local: HashMap::new(),
            locally_delivered: HashSet::new(),
            locally_delivered_order: std::collections::VecDeque::new(),
            shares: HashMap::new(),
            accepts: BTreeMap::new(),
            exec_next: 1,
            executed: HashMap::new(),
            forwarded: HashMap::new(),
            delivered_local: 0,
            timers: HashMap::new(),
            execute_count: 0,
            cfg,
        }
    }

    /// Digest of the application state (tests).
    pub fn app_digest(&self) -> spider_crypto::Digest {
        self.app.state_digest()
    }

    /// Diagnostics: (site PBFT view, locally delivered instances, next
    /// global seq assigned, next seq to execute, pending proposals).
    pub fn diagnostics(&self) -> (u64, u64, u64, u64, usize) {
        (
            self.pbft.view().0,
            self.delivered_local,
            self.next_seq,
            self.exec_next,
            self.proposals.len(),
        )
    }

    fn site_nodes(&self, site: u16) -> Vec<NodeId> {
        self.directory.group_replicas(GroupId(site))
    }

    fn my_site_nodes(&self) -> Vec<NodeId> {
        self.site_nodes(self.site)
    }

    fn is_leader_site(&self) -> bool {
        self.site == self.leader_site
    }

    fn majority(&self) -> usize {
        self.num_sites / 2 + 1
    }

    // ------------------------------------------------------------------
    // Local agreement plumbing
    // ------------------------------------------------------------------

    fn apply_outputs(
        &mut self,
        ctx: &mut Context<'_, BaseMsg>,
        outputs: Vec<Output<ClientRequest>>,
    ) {
        let site_nodes = self.my_site_nodes();
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(node) = site_nodes.get(to) {
                        ctx.send(*node, BaseMsg::Pbft(msg));
                    }
                }
                Output::Deliver { batch, .. } => {
                    for req in batch {
                        self.on_local_delivery(ctx, req);
                    }
                    self.delivered_local += 1;
                    if self.delivered_local.is_multiple_of(GC_INTERVAL)
                        && self.delivered_local > GC_INTERVAL
                    {
                        self.pbft.gc(SeqNr(self.delivered_local - GC_INTERVAL));
                    }
                }
                Output::SetTimer { token, delay } => self.arm(ctx, TAG_PBFT_BASE + token.0, delay),
                Output::CancelTimer { token } => {
                    if let Some(id) = self.timers.remove(&(TAG_PBFT_BASE + token.0)) {
                        ctx.cancel_timer(id);
                    }
                }
                Output::Charge(c) => ctx.charge_op("consensus", "handle", c),
                _ => {}
            }
        }
    }

    /// The site-local agreement delivered a request.
    fn on_local_delivery(&mut self, ctx: &mut Context<'_, BaseMsg>, req: ClientRequest) {
        if self.is_leader_site() {
            // Assign the next global sequence number and produce a
            // threshold share for the proposal (deterministic across the
            // site: same local order => same numbering). Duplicate local
            // deliveries (possible across view changes) are ignored.
            let rd = req.digest();
            if self.assigned.contains_key(&rd) {
                return;
            }
            self.next_seq += 1;
            self.assigned.insert(rd, self.next_seq);
            if self.assigned.len() > 50_000 {
                // Bound memory: forget the distant past.
                let horizon = self.next_seq.saturating_sub(25_000);
                self.assigned.retain(|_, s| *s > horizon);
            }
            let seq = SeqNr(self.next_seq);
            let pd = proposal_digest(seq, &req);
            self.proposals.insert(seq.0, (req.clone(), pd));
            // The leader site accepts its own proposal implicitly.
            self.accepts.entry(seq.0).or_default().insert(self.site);
            ctx.charge(self.cfg.cost.threshold_share());
            let share = self.tkr.share(ThresholdGroupId(self.site as u32), self.me as u32, &pd);
            self.route_share(ctx, seq, pd, share, false);
        } else {
            // A follower site finished local agreement on a proposal's
            // request: threshold-share the Accept for every sequence
            // number it was proposed under (normally exactly one).
            let rd = req.digest();
            if self.locally_delivered.insert(rd) {
                self.locally_delivered_order.push_back(rd);
                const CAP: usize = 16_384;
                if self.locally_delivered_order.len() > CAP {
                    if let Some(old) = self.locally_delivered_order.pop_front() {
                        self.locally_delivered.remove(&old);
                    }
                }
            }
            if let Some(seqs) = self.pending_local.remove(&rd) {
                for seq in seqs {
                    self.emit_accept_share(ctx, seq);
                }
            }
        }
        self.try_execute(ctx);
    }

    /// Produces and routes this replica's accept share for `seq` (the
    /// site-local agreement on the proposal is complete).
    fn emit_accept_share(&mut self, ctx: &mut Context<'_, BaseMsg>, seq: SeqNr) {
        let Some((_, pd)) = self.proposals.get(&seq.0) else {
            return;
        };
        let ad = accept_digest(seq, pd);
        ctx.charge(self.cfg.cost.threshold_share());
        let share = self.tkr.share(ThresholdGroupId(self.site as u32), self.me as u32, &ad);
        self.route_share(ctx, seq, ad, share, true);
    }

    /// Sends a threshold share to the site representative (replica 0), or
    /// processes it directly if we are the representative.
    fn route_share(
        &mut self,
        ctx: &mut Context<'_, BaseMsg>,
        seq: SeqNr,
        digest: Digest,
        share: SigShare,
        accept: bool,
    ) {
        if self.me == 0 {
            self.collect_share(ctx, seq, digest, share, accept);
        } else {
            let rep = self.my_site_nodes()[0];
            ctx.send(rep, BaseMsg::Steward(StewardMsg::Share { seq, digest, share, accept }));
        }
    }

    /// Representative-side share collection and combination.
    fn collect_share(
        &mut self,
        ctx: &mut Context<'_, BaseMsg>,
        seq: SeqNr,
        digest: Digest,
        share: SigShare,
        accept: bool,
    ) {
        if !self.tkr.verify_share(&digest, &share) {
            return;
        }
        let entry = self.shares.entry((seq.0, accept)).or_default();
        if entry.iter().any(|s| s.member == share.member) {
            return;
        }
        entry.push(share);
        if entry.len() < self.cfg.fa + 1 {
            return;
        }
        let shares = entry.clone();
        ctx.charge(self.cfg.cost.threshold_combine());
        let Some(tsig) = self.tkr.combine(&digest, &shares) else {
            return;
        };
        if accept {
            let msg = BaseMsg::Steward(StewardMsg::Accept { seq, digest, site: self.site, tsig });
            // Announce the site's acceptance to every replica everywhere.
            for site in 0..self.num_sites as u16 {
                for node in self.site_nodes(site) {
                    if node != ctx.node_id() {
                        ctx.send(node, msg.clone());
                    }
                }
            }
            self.on_accept(ctx, seq, self.site);
        } else {
            let Some((request, _)) = self.proposals.get(&seq.0).cloned() else {
                return;
            };
            let msg = BaseMsg::Steward(StewardMsg::Proposal { seq, request, tsig });
            for site in 0..self.num_sites as u16 {
                if site == self.site {
                    continue;
                }
                for node in self.site_nodes(site) {
                    ctx.send(node, msg.clone());
                }
            }
        }
    }

    fn on_accept(&mut self, ctx: &mut Context<'_, BaseMsg>, seq: SeqNr, site: u16) {
        self.accepts.entry(seq.0).or_default().insert(site);
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut Context<'_, BaseMsg>) {
        loop {
            let seq = self.exec_next;
            let enough_accepts = self.accepts.get(&seq).is_some_and(|s| s.len() >= self.majority());
            if !enough_accepts {
                return;
            }
            let Some((req, _)) = self.proposals.get(&seq) else {
                return;
            };
            let req = req.clone();
            self.exec_next += 1;
            let fresh = self.executed.get(&req.client).is_none_or(|(tc, _)| *tc < req.tc);
            if fresh {
                ctx.charge(self.cfg.cost.app_execute());
                let result = self.app.execute(&req.operation.op);
                self.execute_count += 1;
                self.executed.insert(req.client, (req.tc, result.clone()));
                // Only the client's local site replies (Fig 1b).
                if self.directory.client_group(req.client) == Some(GroupId(self.site)) {
                    if let Some(node) = self.directory.client_node(req.client) {
                        ctx.charge(self.cfg.cost.hmac(result.len()));
                        ctx.send(
                            node,
                            BaseMsg::Reply(Reply {
                                tc: req.tc,
                                result,
                                weak: false,
                                resubmit: false,
                            }),
                        );
                    }
                }
            }
            // Bound memory: drop far-past bookkeeping.
            let horizon = seq.saturating_sub(256);
            self.proposals.retain(|s, _| *s > horizon);
            self.accepts.retain(|s, _| *s > horizon);
            self.shares.retain(|(s, _), _| *s > horizon);
        }
    }

    fn order_locally(&mut self, ctx: &mut Context<'_, BaseMsg>, req: ClientRequest) {
        let last = self.forwarded.get(&req.client).copied().unwrap_or(0);
        if req.tc <= last {
            return;
        }
        self.forwarded.insert(req.client, req.tc);
        let mut out = Vec::new();
        self.pbft.handle(ctx.now(), Input::Order(req), &mut out);
        self.apply_outputs(ctx, out);
    }

    fn arm(&mut self, ctx: &mut Context<'_, BaseMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }
}

impl<A: Application> Actor<BaseMsg> for StewardReplica<A> {
    fn on_message(&mut self, ctx: &mut Context<'_, BaseMsg>, from: NodeId, msg: BaseMsg) {
        ctx.charge(self.cfg.cost.msg_overhead());
        match msg {
            BaseMsg::Request(req) => {
                ctx.charge(self.cfg.cost.hmac(req.wire_size()));
                if req.operation.kind == OpKind::WeakRead {
                    ctx.charge(self.cfg.cost.app_execute());
                    let result = self.app.execute_read(&req.operation.op);
                    if let Some(node) = self.directory.client_node(req.client) {
                        ctx.send(
                            node,
                            BaseMsg::Reply(Reply {
                                tc: req.tc,
                                result,
                                weak: true,
                                resubmit: false,
                            }),
                        );
                    }
                    return;
                }
                if let Some((tc, result)) = self.executed.get(&req.client) {
                    if *tc >= req.tc {
                        if *tc == req.tc {
                            if let Some(node) = self.directory.client_node(req.client) {
                                ctx.send(
                                    node,
                                    BaseMsg::Reply(Reply {
                                        tc: req.tc,
                                        result: result.clone(),
                                        weak: false,
                                        resubmit: false,
                                    }),
                                );
                            }
                        }
                        return;
                    }
                }
                ctx.charge(self.cfg.cost.rsa_verify());
                if self.is_leader_site() {
                    self.order_locally(ctx, req);
                } else {
                    // Forward to the counterpart replica at the leader
                    // site (Fig 1b: requests flow through the hierarchy).
                    let leader_nodes = self.site_nodes(self.leader_site);
                    if let Some(node) = leader_nodes.get(self.me) {
                        ctx.send(*node, BaseMsg::Steward(StewardMsg::Forward(req)));
                    }
                }
            }
            BaseMsg::Steward(StewardMsg::Forward(req)) => {
                if self.is_leader_site() {
                    ctx.charge(self.cfg.cost.hmac(req.wire_size()));
                    self.order_locally(ctx, req);
                }
            }
            BaseMsg::Steward(StewardMsg::Proposal { seq, request, tsig }) => {
                ctx.charge(self.cfg.cost.threshold_verify());
                let pd = proposal_digest(seq, &request);
                if !self.tkr.verify(&pd, &tsig) {
                    return;
                }
                if self.proposals.contains_key(&seq.0) {
                    return;
                }
                self.proposals.insert(seq.0, (request.clone(), pd));
                // Leader's voice counts as an accept.
                self.accepts.entry(seq.0).or_default().insert(self.leader_site);
                if !self.is_leader_site() {
                    let rd = request.digest();
                    if self.locally_delivered.contains(&rd) {
                        // The site already agreed on this request (the
                        // local PBFT outran this Proposal's delivery):
                        // produce the accept share right away.
                        self.emit_accept_share(ctx, seq);
                    } else {
                        self.pending_local.entry(rd).or_default().push(seq);
                        self.order_locally(ctx, request);
                    }
                }
                self.try_execute(ctx);
            }
            BaseMsg::Steward(StewardMsg::Share { seq, digest, share, accept }) => {
                if self.me != 0 {
                    return; // Only the representative collects.
                }
                ctx.charge(self.cfg.cost.rsa_verify());
                self.collect_share(ctx, seq, digest, share, accept);
            }
            BaseMsg::Steward(StewardMsg::Accept { seq, digest, site, tsig }) => {
                ctx.charge(self.cfg.cost.threshold_verify());
                // Validate against the proposal we know for that seq.
                let Some((_, pd)) = self.proposals.get(&seq.0) else {
                    // Accept before proposal: remember optimistically once
                    // the proposal arrives (simplification: verify against
                    // the digest carried in the message).
                    if self.tkr.verify(&digest, &tsig) {
                        self.accepts.entry(seq.0).or_default().insert(site);
                    }
                    return;
                };
                let expected = accept_digest(seq, pd);
                if digest != expected || !self.tkr.verify(&digest, &tsig) {
                    return;
                }
                self.on_accept(ctx, seq, site);
            }
            BaseMsg::Pbft(m) => {
                let Some(idx) = self.my_site_nodes().iter().position(|n| *n == from) else {
                    return;
                };
                let mut out = Vec::new();
                self.pbft.handle(ctx.now(), Input::Message { from: idx, msg: m }, &mut out);
                self.apply_outputs(ctx, out);
            }
            BaseMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BaseMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        if timer.tag >= TAG_PBFT_BASE {
            let mut out = Vec::new();
            self.pbft.handle(
                ctx.now(),
                Input::Timer(TimerToken(timer.tag - TAG_PBFT_BASE)),
                &mut out,
            );
            self.apply_outputs(ctx, out);
        }
    }
}

/// A built Steward (HFT) deployment.
pub struct StewardDeployment {
    /// Shared directory (sites are registered as groups).
    pub directory: Directory,
    /// Replica nodes per site.
    pub sites: Vec<Vec<NodeId>>,
    /// Configuration.
    pub cfg: SpiderConfig,
    next_client: u32,
    /// Spawned clients: (id, site index, node).
    pub clients: Vec<(ClientId, u16, NodeId)>,
}

impl StewardDeployment {
    /// Builds an HFT deployment with one site per region;
    /// `regions[leader_site]` hosts the wide-area leader.
    pub fn build<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        regions: &[&str],
        leader_site: u16,
        app_factory: impl Fn() -> A,
    ) -> Self {
        let spans: Vec<Vec<&str>> = regions.iter().map(|r| vec![*r]).collect();
        Self::build_span(sim, cfg, &spans, leader_site, app_factory)
    }

    /// Builds an HFT deployment whose sites cycle their replicas over a
    /// region span (the `f = 2` setup places extra replicas in a nearby
    /// region, Fig 11). Clients of site `i` attach at `spans[i][0]`.
    pub fn build_span<A: Application>(
        sim: &mut Simulation<BaseMsg>,
        cfg: SpiderConfig,
        spans: &[Vec<&str>],
        leader_site: u16,
        app_factory: impl Fn() -> A,
    ) -> Self {
        let directory = Directory::new();
        let num_sites = spans.len();
        let mut sites = Vec::new();
        for (si, span) in spans.iter().enumerate() {
            let home_region = sim.topology().region(span[0]);
            let mut nodes = Vec::new();
            let mut cursor: std::collections::HashMap<&str, usize> =
                std::collections::HashMap::new();
            for j in 0..(3 * cfg.fa + 1) {
                let region = span[j % span.len()];
                let zones = sim.topology().num_zones(sim.topology().region(region));
                let c = cursor.entry(region).or_insert(0);
                let zone = sim.topology().zone(region, (*c % zones as usize) as u8);
                *c += 1;
                let replica = StewardReplica::new(
                    cfg.clone(),
                    si as u16,
                    j,
                    leader_site,
                    num_sites,
                    directory.clone(),
                    app_factory(),
                );
                nodes.push(sim.add_node(zone, replica));
            }
            directory.register_group(
                GroupId(si as u16),
                spider::directory::GroupInfo {
                    replicas: nodes.clone(),
                    region: home_region,
                    active: true,
                },
            );
            sites.push(nodes);
        }
        StewardDeployment { directory, sites, cfg, next_client: 0, clients: Vec::new() }
    }

    /// Spawns clients attached to site `site` (their local cluster).
    pub fn spawn_clients(
        &mut self,
        sim: &mut Simulation<BaseMsg>,
        site: u16,
        region: &str,
        count: usize,
        workload: spider::WorkloadSpec,
    ) -> Vec<NodeId> {
        let zones = sim.topology().num_zones(sim.topology().region(region));
        let mut nodes = Vec::new();
        for k in 0..count {
            let id = ClientId(self.next_client);
            self.next_client += 1;
            let zone = sim.topology().zone(region, (k % zones as usize) as u8);
            let client = crate::client::BaselineClient::new(
                self.cfg.clone(),
                id,
                self.sites[site as usize].clone(),
                self.cfg.fa + 1,
                self.directory.clone(),
                Some(workload.clone()),
            );
            let node = sim.add_node(zone, client);
            self.directory.register_client(id, node);
            self.directory.register_client_group(id, GroupId(site));
            self.clients.push((id, site, node));
            nodes.push(node);
        }
        nodes
    }

    /// Collects samples from every client.
    pub fn collect_samples(
        &self,
        sim: &Simulation<BaseMsg>,
    ) -> Vec<(ClientId, u16, Vec<spider::Sample>)> {
        self.clients
            .iter()
            .map(|(id, site, node)| {
                (*id, *site, sim.actor::<crate::client::BaselineClient>(*node).samples.clone())
            })
            .collect()
    }
}
