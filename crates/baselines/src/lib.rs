//! Comparator systems for the Spider evaluation (§2.2, §5).
//!
//! The paper evaluates Spider against three alternative architectures,
//! all reproduced here on the same simulator, application interface, and
//! cost model:
//!
//! * **BFT** — the traditional approach (Fig 1a): a single PBFT group of
//!   `3f + 1` replicas, one per region. The entire multi-phase protocol
//!   runs over wide-area links; response times depend heavily on the
//!   leader's region.
//! * **BFT-WV** — BFT extended with WHEAT-style weighted voting
//!   (`3f + 1 + Δ` replicas, higher weights at well-connected sites), the
//!   comparison system of the paper's adaptability experiment (Fig 10).
//! * **HFT** — a Steward-style hierarchical architecture (Fig 1b): each
//!   region hosts a cluster of `3f + 1` replicas that speaks with one
//!   voice via threshold signatures; a crash-tolerant protocol runs
//!   between sites (leader site proposes, majority of sites accept).
//!
//! All three serve the same [`spider::Application`]s and are driven by the
//! same client/workload machinery, so latency comparisons against Spider
//! measure protocol structure, not implementation accidents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bft;
pub mod client;
pub mod messages;
pub mod steward;

pub use bft::{BftDeployment, BftReplica};
pub use client::BaselineClient;
pub use messages::BaseMsg;
pub use steward::{StewardDeployment, StewardReplica};
