//! Messages of the baseline systems.

use spider::messages::{ClientRequest, Reply};
use spider_crypto::{Digest, Digestible, ThresholdSig};
use spider_types::wire::{DIGEST_BYTES, HEADER_BYTES, MAC_BYTES, SIG_BYTES};
use spider_types::{SeqNr, WireSize};

/// Steward (HFT) wide-area and site-internal messages.
#[derive(Debug, Clone, PartialEq)]
pub enum StewardMsg {
    /// A local-site replica forwards a client request to the leader site.
    Forward(ClientRequest),
    /// Threshold-signed proposal of `(seq, request)` by the leader site.
    Proposal {
        /// Global sequence number (= leader site's local order).
        seq: SeqNr,
        /// The proposed request.
        request: ClientRequest,
        /// The leader site's threshold signature.
        tsig: ThresholdSig,
    },
    /// A site-internal threshold share over a proposal or accept digest.
    Share {
        /// Sequence number the share refers to.
        seq: SeqNr,
        /// Digest the share signs.
        digest: Digest,
        /// The share.
        share: spider_crypto::SigShare,
        /// `true` for accept shares, `false` for proposal shares.
        accept: bool,
    },
    /// Threshold-signed site acceptance of global sequence number `seq`.
    Accept {
        /// Accepted sequence number.
        seq: SeqNr,
        /// Digest of the accepted proposal.
        digest: Digest,
        /// Index of the accepting site.
        site: u16,
        /// The site's threshold signature.
        tsig: ThresholdSig,
    },
}

impl WireSize for StewardMsg {
    fn wire_size(&self) -> usize {
        match self {
            StewardMsg::Forward(r) => HEADER_BYTES + r.wire_size(),
            StewardMsg::Proposal { request, .. } => {
                // Threshold signature is RSA-sized.
                HEADER_BYTES + 8 + request.wire_size() + SIG_BYTES
            }
            StewardMsg::Share { .. } => HEADER_BYTES + 8 + DIGEST_BYTES + SIG_BYTES,
            StewardMsg::Accept { .. } => HEADER_BYTES + 12 + DIGEST_BYTES + SIG_BYTES,
        }
    }
}

/// Top-level message type shared by all baseline deployments.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseMsg {
    /// Client -> replicas.
    Request(ClientRequest),
    /// Replica -> client.
    Reply(Reply),
    /// PBFT traffic (BFT / BFT-WV global group; HFT site-local groups).
    Pbft(spider_consensus::Msg<ClientRequest>),
    /// Steward-specific traffic.
    Steward(StewardMsg),
}

impl WireSize for BaseMsg {
    fn wire_size(&self) -> usize {
        match self {
            BaseMsg::Request(r) => r.wire_size(),
            BaseMsg::Reply(r) => r.wire_size() + MAC_BYTES,
            BaseMsg::Pbft(m) => m.wire_size(),
            BaseMsg::Steward(m) => m.wire_size(),
        }
    }
}

/// Digest a Steward proposal signs: binds sequence number and request.
pub fn proposal_digest(seq: SeqNr, request: &ClientRequest) -> Digest {
    Digest::builder().str("steward-proposal").u64(seq.0).digest(&request.digest()).finish()
}

/// Digest a Steward accept signs.
pub fn accept_digest(seq: SeqNr, proposal: &Digest) -> Digest {
    Digest::builder().str("steward-accept").u64(seq.0).digest(proposal).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use spider::messages::Operation;
    use spider_types::{ClientId, OpKind};

    fn request() -> ClientRequest {
        ClientRequest {
            client: ClientId(1),
            tc: 1,
            operation: Operation { op: Bytes::from_static(b"x"), kind: OpKind::Write },
        }
    }

    #[test]
    fn digests_bind_sequence_numbers() {
        let r = request();
        assert_ne!(proposal_digest(SeqNr(1), &r), proposal_digest(SeqNr(2), &r));
        let p = proposal_digest(SeqNr(1), &r);
        assert_ne!(accept_digest(SeqNr(1), &p), accept_digest(SeqNr(2), &p));
        assert_ne!(proposal_digest(SeqNr(1), &r), accept_digest(SeqNr(1), &p));
    }

    #[test]
    fn steward_message_sizes_are_plausible() {
        let r = request();
        let fwd = StewardMsg::Forward(r.clone());
        assert!(fwd.wire_size() > r.wire_size());
        let share = StewardMsg::Share {
            seq: SeqNr(1),
            digest: Digest::ZERO,
            share: spider_crypto::ThresholdKeyring::new(1, 2).share(
                spider_crypto::threshold::ThresholdGroupId(0),
                0,
                &Digest::ZERO,
            ),
            accept: false,
        };
        assert!(share.wire_size() >= SIG_BYTES);
    }
}
