//! End-to-end tests of the three baseline systems on a four-region
//! topology, checking both correctness (total order, convergence) and the
//! latency *shapes* the paper reports for them (§5).

use spider::{SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_baselines::{BftDeployment, StewardDeployment};
use spider_sim::{Simulation, Topology};
use spider_types::{OpKind, SimTime};

/// Virginia / Oregon / Ireland / Tokyo with EC2-like one-way latencies.
fn topo() -> Topology {
    Topology::builder()
        .region("virginia", 4)
        .region("oregon", 3)
        .region("ireland", 3)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "oregon", SimTime::from_micros(31_000))
        .symmetric_latency("virginia", "ireland", SimTime::from_micros(38_000))
        .symmetric_latency("virginia", "tokyo", SimTime::from_micros(73_000))
        .symmetric_latency("oregon", "ireland", SimTime::from_micros(62_000))
        .symmetric_latency("oregon", "tokyo", SimTime::from_micros(49_000))
        .symmetric_latency("ireland", "tokyo", SimTime::from_micros(106_000))
        .build()
}

const REGIONS: [&str; 4] = ["virginia", "oregon", "ireland", "tokyo"];

fn median(lats: &mut [SimTime]) -> SimTime {
    assert!(!lats.is_empty());
    lats.sort();
    lats[lats.len() / 2]
}

#[test]
fn bft_orders_writes_across_regions() {
    let mut sim = Simulation::new(topo(), 1);
    let mut dep = BftDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, KvStore::new);
    for region in REGIONS {
        dep.spawn_clients(
            &mut sim,
            region,
            1,
            WorkloadSpec::writes_per_sec(5.0, 200)
                .with_max_ops(10)
                .with_op_factory(kv_op_factory(100)),
        );
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, s)| s.len()).sum();
    assert_eq!(total, 40);

    // All replicas converged to the same store state.
    let digests: Vec<_> = dep
        .replicas
        .iter()
        .map(|n| sim.actor::<spider_baselines::BftReplica<KvStore>>(*n).app_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn bft_write_latency_tracks_leader_distance() {
    // Leader in Virginia: Virginia clients commit after one WAN round to
    // the quorum (~2 * 38ms); Tokyo clients add their RTT to the leader.
    let mut sim = Simulation::new(topo(), 2);
    let mut dep = BftDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, KvStore::new);
    let mut nodes = Vec::new();
    for region in REGIONS {
        nodes.push(dep.spawn_clients(
            &mut sim,
            region,
            1,
            WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(15),
        ));
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let lat = |i: usize| {
        let mut l: Vec<SimTime> = samples[i].1.iter().map(|s| s.latency()).collect();
        median(&mut l)
    };
    let (virginia, tokyo) = (lat(0), lat(3));
    // A client needs f+1 matching replies, so the response time is the
    // *second* fastest replica's commit plus the return leg — roughly two
    // WAN rounds with the leader co-located, clearly more when remote.
    assert!(
        virginia > SimTime::from_millis(60) && virginia < SimTime::from_millis(220),
        "virginia median {virginia} should be ~ a couple of WAN legs"
    );
    assert!(tokyo > virginia, "remote clients pay extra ({tokyo} vs {virginia})");
}

#[test]
fn bft_weak_reads_need_a_remote_replica() {
    let mut sim = Simulation::new(topo(), 3);
    let mut dep = BftDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, KvStore::new);
    dep.spawn_clients(
        &mut sim,
        "virginia",
        1,
        WorkloadSpec::weak_reads_per_sec(5.0, 200).with_max_ops(10),
    );
    sim.run_until_quiescent(SimTime::from_secs(30));
    let samples = dep.collect_samples(&sim);
    let mut lats: Vec<SimTime> = samples[0].1.iter().map(|s| s.latency()).collect();
    let m = median(&mut lats);
    // f + 1 = 2 matching replies: one is remote (nearest region ~31ms one
    // way), so a weak read costs about one WAN round trip — unlike
    // Spider/HFT, which answer locally (Fig 8b).
    assert!(m > SimTime::from_millis(55), "weak read median {m}");
    assert_eq!(samples[0].1.len(), 10);
    assert!(samples[0].1.iter().all(|s| s.kind == OpKind::WeakRead));
}

#[test]
fn bft_wv_with_five_replicas_still_orders() {
    let mut sim = Simulation::new(
        Topology::builder()
            .region("virginia", 4)
            .region("oregon", 3)
            .region("ireland", 3)
            .region("tokyo", 3)
            .region("saopaulo", 3)
            .symmetric_latency("virginia", "oregon", SimTime::from_micros(31_000))
            .symmetric_latency("virginia", "ireland", SimTime::from_micros(38_000))
            .symmetric_latency("virginia", "tokyo", SimTime::from_micros(73_000))
            .symmetric_latency("virginia", "saopaulo", SimTime::from_micros(58_000))
            .symmetric_latency("oregon", "ireland", SimTime::from_micros(62_000))
            .symmetric_latency("oregon", "tokyo", SimTime::from_micros(49_000))
            .symmetric_latency("oregon", "saopaulo", SimTime::from_micros(91_000))
            .symmetric_latency("ireland", "tokyo", SimTime::from_micros(106_000))
            .symmetric_latency("ireland", "saopaulo", SimTime::from_micros(92_000))
            .symmetric_latency("tokyo", "saopaulo", SimTime::from_micros(128_000))
            .build(),
        4,
    );
    // Five replicas, Vmax = 2 in Virginia and Oregon (the paper's best
    // weight assignment for this scenario, Fig 10).
    let regions = ["virginia", "oregon", "ireland", "tokyo", "saopaulo"];
    let mut dep = BftDeployment::build_weighted(
        &mut sim,
        SpiderConfig::default(),
        &regions,
        1,
        &[0, 1],
        KvStore::new,
    );
    for region in regions {
        dep.spawn_clients(
            &mut sim,
            region,
            1,
            WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(8),
        );
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, s)| s.len()).sum();
    assert_eq!(total, 40);
}

#[test]
fn steward_orders_and_converges() {
    let mut sim = Simulation::new(topo(), 5);
    let mut dep =
        StewardDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, 0, KvStore::new);
    for (si, region) in REGIONS.iter().enumerate() {
        dep.spawn_clients(
            &mut sim,
            si as u16,
            region,
            1,
            WorkloadSpec::writes_per_sec(4.0, 200)
                .with_max_ops(8)
                .with_op_factory(kv_op_factory(50)),
        );
    }
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 32);

    // Every replica of every site executed the same sequence.
    let mut digests = Vec::new();
    for site in &dep.sites {
        for n in site {
            digests.push(sim.actor::<spider_baselines::StewardReplica<KvStore>>(*n).app_digest());
        }
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "sites diverged");
}

#[test]
fn steward_weak_reads_are_site_local() {
    let mut sim = Simulation::new(topo(), 6);
    let mut dep =
        StewardDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, 0, KvStore::new);
    dep.spawn_clients(
        &mut sim,
        3,
        "tokyo",
        1,
        WorkloadSpec::weak_reads_per_sec(5.0, 200).with_max_ops(10),
    );
    sim.run_until_quiescent(SimTime::from_secs(30));
    let samples = dep.collect_samples(&sim);
    let mut lats: Vec<SimTime> = samples[0].2.iter().map(|s| s.latency()).collect();
    assert_eq!(lats.len(), 10);
    let m = median(&mut lats);
    assert!(
        m < SimTime::from_millis(5),
        "HFT weak reads stay inside the site (paper: <= 2ms), got {m}"
    );
}

#[test]
fn steward_writes_cost_more_than_spider_but_complete() {
    let mut sim = Simulation::new(topo(), 7);
    let mut dep =
        StewardDeployment::build(&mut sim, SpiderConfig::default(), &REGIONS, 0, KvStore::new);
    dep.spawn_clients(
        &mut sim,
        2,
        "ireland",
        1,
        WorkloadSpec::writes_per_sec(3.0, 200).with_max_ops(10),
    );
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let mut lats: Vec<SimTime> = samples[0].2.iter().map(|s| s.latency()).collect();
    assert_eq!(lats.len(), 10);
    let m = median(&mut lats);
    // Ireland -> Virginia forward + proposal fan-out + accepts: at least
    // 1.5 WAN legs plus threshold-crypto time; well above Spider's single
    // round trip but far below timeout territory.
    assert!(m > SimTime::from_millis(80), "median {m}");
    assert!(m < SimTime::from_millis(400), "median {m}");
}
