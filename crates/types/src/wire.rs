//! Wire-size model.
//!
//! The simulator charges transmission and bandwidth costs per message, so
//! every protocol message must know the number of bytes it would occupy on
//! the wire. Rather than serializing each message (needless work in a
//! simulation), message types implement [`WireSize`] and compute their size
//! analytically from well-known constants: an RSA-1024 signature is 128
//! bytes, an HMAC-SHA-256 authenticator 32 bytes, and so on.
//!
//! The constants mirror the paper's evaluation setup (§5): 1024-bit RSA
//! signatures for client messages and IRMC-internal messages, HMAC-SHA-256
//! for replica-to-replica MACs.

/// Size in bytes of an RSA-1024 signature.
pub const SIG_BYTES: usize = 128;

/// Size in bytes of a single HMAC-SHA-256 authenticator.
pub const MAC_BYTES: usize = 32;

/// Size in bytes of a SHA-256 digest.
pub const DIGEST_BYTES: usize = 32;

/// Fixed per-message header overhead (type tag, ids, lengths, transport
/// framing). A deliberately round approximation of TCP+framing+field costs.
pub const HEADER_BYTES: usize = 48;

/// Types that know their size on the wire.
///
/// # Examples
///
/// ```
/// use spider_types::wire::{WireSize, HEADER_BYTES};
///
/// struct Ping;
/// impl WireSize for Ping {
///     fn wire_size(&self) -> usize { HEADER_BYTES }
/// }
/// assert_eq!(Ping.wire_size(), HEADER_BYTES);
/// ```
pub trait WireSize {
    /// Number of bytes this value occupies on the wire, including framing.
    fn wire_size(&self) -> usize;

    /// Message-kind label for causal trace edges (e.g. `"request"`,
    /// `"commit-cast"`). The default covers types that never carry
    /// request payloads; protocol messages override it.
    fn trace_kind(&self) -> &'static str {
        "msg"
    }

    /// Visits the request ids this message carries, for causal trace
    /// edges. A batch visits every request it contains; control
    /// messages (acks, vouches, window moves) visit none — the
    /// default.
    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        let _ = visit;
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSize for bytes::Bytes {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for [T] {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        self.as_slice().wire_size()
    }
}

/// The size of a PBFT-style MAC authenticator vector for a group of `n`
/// receivers (one MAC per receiver, §A.2).
pub fn mac_vector_bytes(n: usize) -> usize {
    n * MAC_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_vectors_report_payload_length() {
        let v = vec![0u8; 200];
        assert_eq!(v.wire_size(), 200);
        let b = bytes::Bytes::from(vec![1u8; 64]);
        assert_eq!(b.wire_size(), 64);
    }

    #[test]
    fn option_adds_presence_byte() {
        let some: Option<Vec<u8>> = Some(vec![0u8; 10]);
        let none: Option<Vec<u8>> = None;
        assert_eq!(some.wire_size(), 11);
        assert_eq!(none.wire_size(), 1);
    }

    #[test]
    fn slices_add_length_prefix() {
        let items: Vec<Vec<u8>> = vec![vec![0u8; 3], vec![0u8; 4]];
        assert_eq!(items.wire_size(), 4 + 3 + 4);
    }

    #[test]
    fn mac_vector_scales_with_group_size() {
        assert_eq!(mac_vector_bytes(4), 4 * MAC_BYTES);
        assert_eq!(mac_vector_bytes(0), 0);
    }
}
