//! Shared vocabulary for the Spider BFT replication workspace.
//!
//! This crate defines the identifier newtypes, the simulated-time type, the
//! wire-size model, and a handful of small helpers that every other crate in
//! the workspace builds on. It deliberately contains no protocol logic: the
//! dependency arrows all point *into* this crate.
//!
//! # Examples
//!
//! ```
//! use spider_types::{SimTime, RegionId, ZoneId};
//!
//! let t = SimTime::from_millis(3) + SimTime::from_micros(500);
//! assert_eq!(t.as_micros(), 3_500);
//!
//! let zone = ZoneId::new(RegionId(0), 2);
//! assert_eq!(zone.region(), RegionId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod time;
pub mod wire;

pub use ids::{ClientId, GroupId, NodeId, Position, RegionId, ReplicaIdx, SeqNr, ViewNr, ZoneId};
pub use time::SimTime;
pub use wire::WireSize;

/// The kind of consistency a read request asks for.
///
/// Spider distinguishes weakly consistent reads (answered locally by the
/// client's execution group, §3.3) from strongly consistent reads (ordered
/// by the agreement group like writes, but executed only at the designated
/// group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReadConsistency {
    /// Served directly by the local execution group; may return stale data.
    Weak,
    /// Ordered through the agreement group; linearizable.
    Strong,
}

impl std::fmt::Display for ReadConsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadConsistency::Weak => write!(f, "weak"),
            ReadConsistency::Strong => write!(f, "strong"),
        }
    }
}

/// Classification of an operation submitted by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// Potentially state-modifying; must be applied by all execution groups.
    Write,
    /// Strongly consistent read; ordered, but executed only at one group.
    StrongRead,
    /// Weakly consistent read; never ordered.
    WeakRead,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Write => write!(f, "write"),
            OpKind::StrongRead => write!(f, "strong-read"),
            OpKind::WeakRead => write!(f, "weak-read"),
        }
    }
}
