//! Simulated time.
//!
//! The whole workspace runs on a deterministic discrete-event clock. Time is
//! a `u64` count of nanoseconds since simulation start, wrapped in the
//! [`SimTime`] newtype. `SimTime` doubles as a duration: the arithmetic
//! operators are defined so that `instant + duration` and
//! `instant - instant` both work naturally.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time (or a duration), in nanoseconds.
///
/// # Examples
///
/// ```
/// use spider_types::SimTime;
///
/// let rtt = SimTime::from_millis(72);
/// assert_eq!(rtt.as_micros(), 72_000);
/// assert_eq!(rtt / 2, SimTime::from_millis(36));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / the zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time; used as "never" for timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from floating-point seconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float, for reporting latencies.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful when computing elapsed times that may
    /// be negative due to clamping.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Scales a duration by a float factor (rounds to nanoseconds).
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl std::ops::Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }
}

impl std::ops::Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.as_micros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.0015), SimTime::from_micros(1500));
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(8));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(a / 5, SimTime::from_millis(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!((a * 3), SimTime::from_millis(15));
        assert_eq!(a.mul_f64(0.5), SimTime::from_micros(2500));
    }

    #[test]
    fn min_max_pick_correct_operand() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn float_reporting_matches_integer_values() {
        let t = SimTime::from_micros(1_234_567);
        assert!((t.as_millis_f64() - 1234.567).abs() < 1e-9);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-12);
    }
}
