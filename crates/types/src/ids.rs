//! Identifier newtypes used across the workspace.
//!
//! Each identifier is a thin newtype over an integer ([C-NEWTYPE]): the type
//! system keeps region indices, node indices, sequence numbers, and channel
//! positions from being mixed up, at zero runtime cost.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};

/// A cloud region (e.g. Virginia, Oregon, Ireland, Tokyo).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RegionId(pub u16);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An availability zone inside a region.
///
/// Zones are the fault domains Spider places the members of a replica group
/// into: distinct data centers of the same region, connected by
/// short-distance links (§3.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ZoneId {
    region: RegionId,
    zone: u8,
}

impl ZoneId {
    /// Creates the `zone`-th availability zone of `region`.
    pub fn new(region: RegionId, zone: u8) -> Self {
        ZoneId { region, zone }
    }

    /// The region this zone belongs to.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The zone index within its region (0-based).
    pub fn zone(&self) -> u8 {
        self.zone
    }
}

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-az{}", self.region, self.zone)
    }
}

/// A node in the simulated system: a replica or a client process.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A replica group (the agreement group or one of the execution groups).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GroupId(pub u16);

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Index of a replica within its group (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReplicaIdx(pub u8);

impl std::fmt::Display for ReplicaIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A client identity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An agreement sequence number (total order established by consensus).
///
/// Sequence numbers start at 1; 0 means "nothing delivered yet", matching
/// the paper's pseudocode where `sn` is initialized to 0 and the first
/// delivered sequence number is 1 (§A.4.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNr(pub u64);

impl SeqNr {
    /// The sequence number after this one.
    #[must_use]
    pub fn next(self) -> SeqNr {
        SeqNr(self.0 + 1)
    }

    /// The sequence number before this one; saturates at zero.
    #[must_use]
    pub fn prev(self) -> SeqNr {
        SeqNr(self.0.saturating_sub(1))
    }
}

impl std::fmt::Display for SeqNr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A position within an IRMC subchannel (§3.2).
///
/// Positions identify slots of the distributed bounded queue an IRMC
/// subchannel represents. For request channels the position is the client's
/// request counter; for commit channels it is the agreement sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Position(pub u64);

impl Position {
    /// The position after this one.
    #[must_use]
    pub fn next(self) -> Position {
        Position(self.0 + 1)
    }

    /// Offsets this position forward by `n` slots.
    #[must_use]
    pub fn offset(self, n: u64) -> Position {
        Position(self.0 + n)
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A consensus view number (PBFT-style leader epoch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ViewNr(pub u64);

impl ViewNr {
    /// The view after this one.
    #[must_use]
    pub fn next(self) -> ViewNr {
        ViewNr(self.0 + 1)
    }
}

impl std::fmt::Display for ViewNr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_nr_next_prev_roundtrip() {
        let s = SeqNr(41);
        assert_eq!(s.next(), SeqNr(42));
        assert_eq!(s.next().prev(), s);
        assert_eq!(SeqNr(0).prev(), SeqNr(0), "prev saturates at zero");
    }

    #[test]
    fn position_offset_accumulates() {
        assert_eq!(Position(10).offset(5), Position(15));
        assert_eq!(Position(10).next(), Position(11));
    }

    #[test]
    fn zone_id_accessors() {
        let z = ZoneId::new(RegionId(3), 1);
        assert_eq!(z.region(), RegionId(3));
        assert_eq!(z.zone(), 1);
        assert_eq!(z.to_string(), "r3-az1");
    }

    #[test]
    fn display_forms_are_compact_and_distinct() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(GroupId(2).to_string(), "g2");
        assert_eq!(ClientId(9).to_string(), "c9");
        assert_eq!(SeqNr(1).to_string(), "s1");
        assert_eq!(Position(4).to_string(), "@4");
        assert_eq!(ViewNr(0).to_string(), "v0");
        assert_eq!(ReplicaIdx(3).to_string(), "p3");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(SeqNr(1) < SeqNr(2));
        assert!(Position(1) < Position(2));
        assert!(ViewNr(1) < ViewNr(2));
    }
}
