//! Request-scoped trace spans, causal edges, and the per-node event ring.

use spider_types::{NodeId, SimTime};

/// What a [`SpanEvent`] marks: the start of a phase, its end, or a
/// point-in-time milestone with no duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The request entered this phase.
    Enter,
    /// The request left this phase.
    Exit,
    /// A point-in-time milestone.
    Instant, // analyzer: allow(determinism, "Perfetto's name for a zero-duration event, not std::time")
}

impl SpanKind {
    /// Stable single-character tag for rendering and digests.
    pub fn tag(self) -> char {
        match self {
            SpanKind::Enter => 'B',
            SpanKind::Exit => 'E',
            SpanKind::Instant => 'I',
        }
    }
}

/// One trace event: request `req` hit `phase` on `node` at simulated
/// time `at`. `Copy` and pointer-sized fields only, so recording is a
/// store into a preallocated ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Node the event was recorded on.
    pub node: NodeId,
    /// Request id (see [`crate::req_id`]); 0 is the channel-level
    /// sentinel for events not tied to one request.
    pub req: u64,
    /// Phase name (one of the `PHASE_*` constants).
    pub phase: &'static str,
    /// Enter, exit, or instant.
    pub kind: SpanKind,
}

/// One causal edge: a message carrying request `req` departed `src` for
/// `dst` at simulated time `at`. Recorded at the charge/departure point
/// of the sending handler, so `at` is the instant the bytes start
/// leaving the node. Together with the span milestones these edges let
/// [`crate::causal`] assemble a per-request DAG spanning nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Departure time (virtual send instant of the emitting handler).
    pub at: SimTime,
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message kind label (e.g. `"request"`, `"commit-cast"`, `"reply"`).
    pub kind: &'static str,
    /// Request id carried by the message. A message carrying a batch
    /// records one edge per request; messages carrying no request
    /// payload (acks, vouches, window moves) record no edges.
    pub req: u64,
}

/// Fixed-capacity overwrite-oldest event buffer. Grows lazily up to its
/// capacity, then wraps; iteration yields events oldest-first. The
/// number of overwritten (lost) events is counted so reports can flag
/// silent truncation.
#[derive(Debug)]
pub struct Ring<T = SpanEvent> {
    buf: Vec<T>,
    capacity: usize,
    /// Index the next event will be written at once the buffer is full.
    head: usize,
    /// Events overwritten since creation.
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    /// An empty ring retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Ring<T> {
        Ring { buf: Vec::new(), capacity: capacity.max(1), head: 0, dropped: 0 }
    }

    /// Appends an event, overwriting (and counting) the oldest once full.
    pub fn push(&mut self, ev: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Visits retained events oldest-first.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        let n = self.buf.len();
        for i in 0..n {
            let idx = if n < self.capacity { i } else { (self.head + i) % n };
            f(&self.buf[idx]);
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten (lost to truncation) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> SpanEvent {
        SpanEvent {
            at: SimTime::from_nanos(i),
            node: NodeId(0),
            req: i,
            phase: "test",
            kind: SpanKind::Instant,
        }
    }

    #[test]
    fn ring_below_capacity_keeps_insertion_order() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let mut got = Vec::new();
        r.for_each(|e| got.push(e.req));
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_wraps_and_yields_oldest_first() {
        let mut r = Ring::new(3);
        for i in 0..7 {
            r.push(ev(i));
        }
        let mut got = Vec::new();
        r.for_each(|e| got.push(e.req));
        assert_eq!(got, vec![4, 5, 6]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4, "four events were overwritten");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = Ring::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        let mut got = Vec::new();
        r.for_each(|e| got.push(e.req));
        assert_eq!(got, vec![2]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn edge_ring_works_generically() {
        let mut r: Ring<EdgeEvent> = Ring::new(2);
        for i in 0..3u64 {
            r.push(EdgeEvent {
                at: SimTime::from_nanos(i),
                src: NodeId(0),
                dst: NodeId(1),
                kind: "cast",
                req: i,
            });
        }
        let mut got = Vec::new();
        r.for_each(|e| got.push(e.req));
        assert_eq!(got, vec![1, 2]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn kind_tags_are_distinct() {
        assert_eq!(SpanKind::Enter.tag(), 'B');
        assert_eq!(SpanKind::Exit.tag(), 'E');
        assert_eq!(SpanKind::Instant.tag(), 'I');
    }
}
