//! Exporters: Perfetto `trace_event` JSON, JSONL span dumps, folded
//! stacks for flamegraphs, per-phase latency breakdowns, and the FNV
//! digest used by determinism double-run tests.
//!
//! All output is rendered with deterministic iteration (the report's
//! collections are ordered) and fixed-precision formatting, so the same
//! run always produces byte-identical artifacts.

use crate::causal::CohortProfile;
use crate::{
    HealthEvent, Histogram, ObsReport, SpanKind, PHASE_COMMIT, PHASE_DELIVER, PHASE_PROPOSE,
    PHASE_REQUEST,
};
use std::fmt::Write as _;

/// FNV-1a 64-bit digest of a rendered artifact; the determinism tests
/// compare digests across double runs.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the full report into a canonical text form for digesting:
/// every span event, counter, histogram summary, and CPU attribution
/// entry, one per line, in deterministic order.
pub fn digest_render(report: &ObsReport) -> String {
    let mut out = String::new();
    for e in &report.spans {
        let _ = writeln!(
            out,
            "span {} n{} r{} {} {}",
            e.at.as_nanos(),
            e.node.0,
            e.req,
            e.phase,
            e.kind.tag()
        );
    }
    for (&(node, name), &v) in &report.counters {
        let _ = writeln!(out, "counter n{node} {name} {v}");
    }
    for (&(node, name), h) in &report.hists {
        let _ = writeln!(
            out,
            "hist n{node} {name} count={} p50={} p99={} p999={} max={}",
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max()
        );
    }
    for (&(node, component, op), &t) in &report.cpu {
        let _ = writeln!(out, "cpu n{node} {component};{op} {}", t.as_nanos());
    }
    for e in &report.edges {
        let _ = writeln!(
            out,
            "edge {} n{}->n{} r{} {}",
            e.at.as_nanos(),
            e.src.0,
            e.dst.0,
            e.req,
            e.kind
        );
    }
    for x in &report.exemplars {
        let _ = writeln!(
            out,
            "exemplar r{} start={} lat={} spans={} edges={}",
            x.req,
            x.started.as_nanos(),
            x.latency.as_nanos(),
            x.spans.len(),
            x.edges.len()
        );
    }
    for e in &report.health {
        let _ = writeln!(out, "health {}", health_event_json(e));
    }
    for (&(node, component, key), &(cur, hw)) in &report.gauges {
        let _ = writeln!(out, "gauge n{node} {component}#{key} cur={cur} hw={hw}");
    }
    let _ = writeln!(out, "dropped spans={} edges={}", report.spans_dropped, report.edges_dropped);
    out
}

/// Renders one watchdog event as a JSON object (no trailing newline).
fn health_event_json(e: &HealthEvent) -> String {
    match *e {
        HealthEvent::IrmcWindowStall { at, node, component, key } => format!(
            "{{\"event\":\"irmc_window_stall\",\"at_ms\":{:.3},\"node\":{},\"component\":\"{}\",\"key\":{}}}",
            at.as_millis_f64(),
            node.0,
            component,
            key
        ),
        HealthEvent::IrmcWindowRecover { at, node, component, key } => format!(
            "{{\"event\":\"irmc_window_recover\",\"at_ms\":{:.3},\"node\":{},\"component\":\"{}\",\"key\":{}}}",
            at.as_millis_f64(),
            node.0,
            component,
            key
        ),
        HealthEvent::ViewChange { at, node, view } => format!(
            "{{\"event\":\"view_change\",\"at_ms\":{:.3},\"node\":{},\"view\":{}}}",
            at.as_millis_f64(),
            node.0,
            view
        ),
        HealthEvent::ViewChangeStorm { at, node, count } => format!(
            "{{\"event\":\"view_change_storm\",\"at_ms\":{:.3},\"node\":{},\"count\":{}}}",
            at.as_millis_f64(),
            node.0,
            count
        ),
    }
}

/// Renders the watchdog event stream as JSONL, one event per line in
/// time order — the `BENCH_health_events.jsonl` artifact.
pub fn health_jsonl(report: &ObsReport) -> String {
    let mut out = String::new();
    for e in &report.health {
        let _ = writeln!(out, "{}", health_event_json(e));
    }
    out
}

/// Renders differential critical-path profiles as folded stacks
/// (`cohort;hop;component;op <ns>`) — the
/// `BENCH_critical_path_folded.txt` artifact. Load in
/// <https://www.speedscope.app> to compare the tail cohort's flame
/// against the median cohort's.
pub fn critical_path_folded(profiles: &[CohortProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        for row in &p.rows {
            let _ = writeln!(
                out,
                "{};{};{};{} {}",
                p.cohort,
                row.hop,
                row.component,
                row.op,
                row.total.as_nanos()
            );
        }
    }
    out
}

/// Renders the spans as Chrome/Perfetto `trace_event` JSON. Request
/// phases become async nestable events (`ph:"b"`/`"e"`, id = request
/// id); instants become global instant events. Load in
/// <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn perfetto_json(report: &ObsReport) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for e in &report.spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = e.at.as_nanos() as f64 / 1_000.0;
        match e.kind {
            SpanKind::Enter | SpanKind::Exit => {
                let ph = if e.kind == SpanKind::Enter { "b" } else { "e" };
                let _ = write!(
                    out,
                    "{{\"ph\":\"{ph}\",\"cat\":\"spider\",\"id\":{},\"pid\":{},\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"{}\"}}",
                    e.req, e.node.0, e.node.0, e.phase
                );
            }
            SpanKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"g\",\"cat\":\"spider\",\"pid\":{},\"tid\":{},\"ts\":{ts_us:.3},\"name\":\"{}\",\"args\":{{\"req\":{}}}}}",
                    e.node.0, e.node.0, e.phase, e.req
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the spans as JSONL: one JSON object per line, oldest first.
pub fn spans_jsonl(report: &ObsReport) -> String {
    let mut out = String::new();
    for e in &report.spans {
        let _ = writeln!(
            out,
            "{{\"at_ns\":{},\"node\":{},\"req\":{},\"phase\":\"{}\",\"kind\":\"{}\"}}",
            e.at.as_nanos(),
            e.node.0,
            e.req,
            e.phase,
            e.kind.tag()
        );
    }
    out
}

/// Renders CPU attribution as folded stacks (`component;op <ns>`, one
/// line per stack, aggregated over nodes) — the input format of
/// `flamegraph.pl` and <https://www.speedscope.app>.
pub fn folded_stacks(report: &ObsReport) -> String {
    let mut out = String::new();
    for ((component, op), t) in report.cpu_by_op() {
        let _ = writeln!(out, "{component};{op} {}", t.as_nanos());
    }
    out
}

/// Renders a per-component CPU table: each component's total busy time
/// and its ops sorted by share, largest first.
pub fn cpu_table(report: &ObsReport) -> String {
    let by_op = report.cpu_by_op();
    let mut total_ns = 0u64;
    let mut components: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for (&(component, _), &t) in &by_op {
        total_ns += t.as_nanos();
        *components.entry(component).or_insert(0) += t.as_nanos();
    }
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:<16} {:>12} {:>7}", "component", "op", "busy_ms", "share");
    for (&component, &comp_ns) in &components {
        let share = if total_ns > 0 { 100.0 * comp_ns as f64 / total_ns as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<16} {:<16} {:>12.3} {:>6.1}%",
            component,
            "(total)",
            comp_ns as f64 / 1e6,
            share
        );
        let mut ops: Vec<(&'static str, u64)> = by_op
            .iter()
            .filter(|((c, _), _)| *c == component)
            .map(|(&(_, op), &t)| (op, t.as_nanos()))
            .collect();
        ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (op, ns) in ops {
            let op_share = if comp_ns > 0 { 100.0 * ns as f64 / comp_ns as f64 } else { 0.0 };
            let _ =
                writeln!(out, "{:<16} {:<16} {:>12.3} {:>6.1}%", "", op, ns as f64 / 1e6, op_share);
        }
    }
    out
}

/// The operation with the most attributed busy time in `component`,
/// with its share of the component total (0.0 when nothing recorded).
pub fn top_op(report: &ObsReport, component: &str) -> Option<(&'static str, f64)> {
    let by_op = report.cpu_by_op();
    let comp_total: u64 =
        by_op.iter().filter(|((c, _), _)| *c == component).map(|(_, &t)| t.as_nanos()).sum();
    by_op
        .iter()
        .filter(|((c, _), _)| *c == component)
        .max_by_key(|(&(_, op), &t)| (t.as_nanos(), std::cmp::Reverse(op)))
        .map(|(&(_, op), &t)| {
            let share = if comp_total > 0 { t.as_nanos() as f64 / comp_total as f64 } else { 0.0 };
            (op, share)
        })
}

/// One per-phase latency row of the request lifecycle breakdown.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Segment label, e.g. `"client->propose"`.
    pub segment: &'static str,
    /// Requests with both endpoints observed.
    pub count: u64,
    /// Median segment latency in milliseconds.
    pub p50_ms: f64,
    /// 90th percentile in milliseconds.
    pub p90_ms: f64,
    /// 99th percentile in milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile in milliseconds.
    pub p999_ms: f64,
    /// Mean in milliseconds.
    pub mean_ms: f64,
}

/// Computes the per-phase latency breakdown (client→propose,
/// propose→commit, commit→deliver, deliver→reply) from the trace. For
/// each request, each milestone's *first* occurrence is used (the first
/// execution replica to receive the commit, the first reply quorum).
pub fn phase_breakdown(report: &ObsReport) -> Vec<PhaseRow> {
    // Milestone slots per request: submit, propose, commit, deliver, reply.
    let mut marks: std::collections::BTreeMap<u64, [Option<u64>; 5]> =
        std::collections::BTreeMap::new();
    for e in &report.spans {
        if e.req == 0 {
            continue;
        }
        let slot = match (e.phase, e.kind) {
            (PHASE_REQUEST, SpanKind::Enter) => 0,
            (PHASE_PROPOSE, _) => 1,
            (PHASE_COMMIT, _) => 2,
            (PHASE_DELIVER, _) => 3,
            (PHASE_REQUEST, SpanKind::Exit) => 4,
            _ => continue,
        };
        let m = marks.entry(e.req).or_insert([None; 5]);
        if m[slot].is_none() {
            m[slot] = Some(e.at.as_nanos());
        }
    }
    const SEGMENTS: [(&str, usize, usize); 5] = [
        ("client->propose", 0, 1),
        ("propose->commit", 1, 2),
        ("commit->deliver", 2, 3),
        ("deliver->reply", 3, 4),
        ("client->reply", 0, 4),
    ];
    SEGMENTS
        .iter()
        .map(|&(segment, a, b)| {
            let mut h = Histogram::new();
            for m in marks.values() {
                if let (Some(t0), Some(t1)) = (m[a], m[b]) {
                    h.record(t1.saturating_sub(t0));
                }
            }
            PhaseRow {
                segment,
                count: h.count(),
                p50_ms: h.quantile(0.50) as f64 / 1e6,
                p90_ms: h.quantile(0.90) as f64 / 1e6,
                p99_ms: h.quantile(0.99) as f64 / 1e6,
                p999_ms: h.quantile(0.999) as f64 / 1e6,
                mean_ms: h.mean() / 1e6,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{req_id, ObsConfig, Recorder, PHASE_SHIP};
    use spider_types::{NodeId, SimTime};

    fn sample_report() -> ObsReport {
        let mut r = Recorder::enabled(ObsConfig::default());
        for c in 0..3u32 {
            let req = req_id(c, 1);
            let base = SimTime::from_millis(c as u64 * 10);
            r.span_enter(base, NodeId(c), req, PHASE_REQUEST);
            r.span_instant(base + SimTime::from_millis(2), NodeId(10), req, PHASE_PROPOSE);
            r.span_instant(base + SimTime::from_millis(5), NodeId(10), req, PHASE_COMMIT);
            r.span_instant(base + SimTime::from_millis(6), NodeId(11), req, PHASE_SHIP);
            r.span_instant(base + SimTime::from_millis(8), NodeId(12), req, PHASE_DELIVER);
            r.span_exit(base + SimTime::from_millis(9), NodeId(c), req, PHASE_REQUEST);
        }
        r.cpu_add(NodeId(10), "sender", "range_sign", SimTime::from_millis(7));
        r.cpu_add(NodeId(10), "sender", "vouch_mac", SimTime::from_millis(2));
        r.cpu_add(NodeId(12), "receiver", "range_verify", SimTime::from_millis(1));
        r.counter_add(NodeId(10), "batches", 3);
        r.hist_record(NodeId(10), "batch_size", 8);
        r.report()
    }

    #[test]
    fn phase_breakdown_measures_segments() {
        let rows = phase_breakdown(&sample_report());
        assert_eq!(rows.len(), 5);
        let seg = |name: &str| rows.iter().find(|r| r.segment == name).unwrap().clone();
        let cp = seg("client->propose");
        assert_eq!(cp.count, 3);
        assert!((cp.p50_ms - 2.0).abs() / 2.0 <= 1.0 / 32.0, "p50 = {}", cp.p50_ms);
        let e2e = seg("client->reply");
        assert!((e2e.p50_ms - 9.0).abs() / 9.0 <= 1.0 / 32.0, "p50 = {}", e2e.p50_ms);
    }

    #[test]
    fn perfetto_json_is_balanced_and_parsable_shape() {
        let json = perfetto_json(&sample_report());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 12);
        // Braces balance — cheap structural validity check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn folded_stacks_and_top_op() {
        let rep = sample_report();
        let folded = folded_stacks(&rep);
        assert!(folded.contains("sender;range_sign 7000000"));
        assert!(folded.contains("receiver;range_verify 1000000"));
        let (op, share) = top_op(&rep, "sender").unwrap();
        assert_eq!(op, "range_sign");
        assert!((share - 7.0 / 9.0).abs() < 1e-9);
        assert!(top_op(&rep, "nonexistent").is_none());
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let rep = sample_report();
        let a = fnv64(&digest_render(&rep));
        let b = fnv64(&digest_render(&rep));
        assert_eq!(a, b);
        let mut rep2 = sample_report();
        rep2.counters.insert((99, "extra"), 1);
        assert_ne!(a, fnv64(&digest_render(&rep2)));
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let rep = sample_report();
        let jsonl = spans_jsonl(&rep);
        assert_eq!(jsonl.lines().count(), rep.spans.len());
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn cpu_table_reports_component_totals() {
        let table = cpu_table(&sample_report());
        assert!(table.contains("sender"));
        assert!(table.contains("(total)"));
        assert!(table.contains("range_sign"));
    }

    #[test]
    fn digest_covers_edges_exemplars_and_drops() {
        let mut r = Recorder::enabled(ObsConfig::default());
        let req = req_id(0, 1);
        r.span_enter(SimTime::from_millis(1), NodeId(0), req, PHASE_REQUEST);
        r.edge(SimTime::from_millis(2), NodeId(0), NodeId(10), "request", req);
        r.span_exit(SimTime::from_millis(9), NodeId(0), req, PHASE_REQUEST);
        let rep = r.report();
        let text = digest_render(&rep);
        assert!(text.contains("edge 2000000 n0->n10 r1 request"));
        assert!(text.contains("exemplar r1 start=1000000 lat=8000000 spans=2 edges=1"));
        assert!(text.contains("dropped spans=0 edges=0"));
        let mut rep2 = rep.clone();
        rep2.edges_dropped = 3;
        assert_ne!(fnv64(&digest_render(&rep)), fnv64(&digest_render(&rep2)));
    }

    #[test]
    fn health_jsonl_renders_events_in_time_order() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.health_pending(SimTime::from_secs(1), NodeId(4), "commit", 0, 5);
        r.span_instant(SimTime::from_secs(5), NodeId(0), 0, crate::PHASE_RECAST);
        r.health_mark(SimTime::from_secs(6), NodeId(4), "commit", 0);
        let rep = r.report();
        let jsonl = health_jsonl(&rep);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"irmc_window_stall\""));
        assert!(lines[1].contains("\"event\":\"irmc_window_recover\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn critical_path_folded_is_speedscope_shaped() {
        use crate::causal::{CohortProfile, ProfileRow, SegmentKind};
        let profiles = vec![CohortProfile {
            cohort: "p999",
            requests: 3,
            mean_latency: SimTime::from_millis(120),
            rows: vec![ProfileRow {
                hop: "commit-cast",
                component: "wire",
                op: SegmentKind::Transit.op(),
                total: SimTime::from_millis(240),
                share: 0.8,
                count: 3,
            }],
        }];
        let folded = critical_path_folded(&profiles);
        assert_eq!(folded, "p999;commit-cast;wire;transit 240000000\n");
    }

    #[test]
    fn phase_rows_carry_tail_columns() {
        let rows = phase_breakdown(&sample_report());
        let e2e = rows.iter().find(|r| r.segment == "client->reply").unwrap();
        assert!(e2e.p999_ms >= e2e.p99_ms && e2e.p99_ms >= e2e.p50_ms);
        assert!(e2e.p999_ms > 0.0);
    }
}
