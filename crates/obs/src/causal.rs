//! Causal trace assembly and critical-path tail forensics.
//!
//! The span rings record per-node milestones and the edge rings record
//! cross-node message departures; neither alone says *why* a p99.9
//! request was slow. This module joins them:
//!
//! 1. [`assemble`] groups a report's spans and edges per request into a
//!    [`RequestPath`] — the request's causal chain across nodes. The
//!    per-request event set is a DAG in general (broadcasts fan out;
//!    four replicas deliver the same commit); the *blocking* chain is
//!    what determines latency, so for every milestone `(phase, kind)`
//!    the first occurrence is kept (the first replica to deliver is the
//!    one that unblocked progress — the same convention as
//!    [`crate::export::phase_breakdown`]), and for every edge kind the
//!    first departure. The result is a single time-ordered chain.
//! 2. [`RequestPath::segments`] classifies each gap of the chain as
//!    **transit** (an edge departure followed by activity on the edge's
//!    destination), **cpu** (a phase's enter→exit on one node — span
//!    timestamps advance with charged work, so this is the handler CPU
//!    spent inside the phase), **emit** (same-node work ending at a
//!    departure), or **queue** (any other same-node wait). Each segment
//!    is keyed `(hop, component, op)`.
//! 3. [`differential_profile`] aggregates segment time for the p99.9
//!    cohort against the p50 cohort, so "what does the tail spend its
//!    time on *that the median does not*" is one table. Exported as
//!    folded stacks by [`crate::export::critical_path_folded`].
//!
//! Everything here is a pure function of the [`ObsReport`], so the
//! forensics of a run are as reproducible as the run itself. When the
//! span rings truncated (`spans_dropped > 0`), the exemplar reservoir's
//! retained requests are merged in, so the slowest requests keep full
//! detail even in runs that overflow the rings.

use crate::{ObsReport, SpanKind, PHASE_REQUEST};
use spider_types::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// One step of a request's causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// A span milestone `(node, phase, kind)` at a time.
    Span { at: SimTime, node: u32, phase: &'static str, kind: SpanKind },
    /// A message departure `src -> dst` of a kind at a time.
    Edge { at: SimTime, src: u32, dst: u32, kind: &'static str },
}

impl Step {
    fn at(&self) -> SimTime {
        match *self {
            Step::Span { at, .. } | Step::Edge { at, .. } => at,
        }
    }

    fn node(&self) -> u32 {
        match *self {
            Step::Span { node, .. } => node,
            Step::Edge { src, .. } => src,
        }
    }

    fn label(&self) -> &'static str {
        match *self {
            Step::Span { phase, .. } => phase,
            Step::Edge { kind, .. } => kind,
        }
    }
}

/// How a critical-path segment spent its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// On the wire between two nodes.
    Transit,
    /// Charged handler CPU inside a phase (enter→exit on one node).
    Cpu,
    /// Same-node work ending at a message departure.
    Emit,
    /// Same-node wait not attributable to charged work.
    Queue,
}

impl SegmentKind {
    /// Stable lowercase name (the `op` of the segment key).
    pub fn op(self) -> &'static str {
        match self {
            SegmentKind::Transit => "transit",
            SegmentKind::Cpu => "cpu",
            SegmentKind::Emit => "emit",
            SegmentKind::Queue => "queue",
        }
    }
}

/// One classified segment of a request's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// The hop the time was spent on: an edge kind (`"commit-cast"`)
    /// for transit, `"local"` otherwise.
    pub hop: &'static str,
    /// What was being waited on: `"wire"` for transit, the next
    /// milestone's phase or the departing edge's kind otherwise.
    pub component: &'static str,
    /// Segment kind.
    pub kind: SegmentKind,
    /// Time spent in this segment.
    pub dur: SimTime,
}

/// A request's assembled critical path.
#[derive(Debug, Clone)]
pub struct RequestPath {
    /// The request id.
    pub req: u64,
    /// End-to-end latency (request enter to request exit).
    pub latency: SimTime,
    segments: Vec<PathSegment>,
}

impl RequestPath {
    /// The classified segments in time order. Their durations sum to
    /// the span from the first to the last event of the chain.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }
}

/// Collects each request's chain steps from spans, edges, and (when the
/// rings truncated) the exemplar reservoir.
fn steps_per_request(report: &ObsReport) -> BTreeMap<u64, Vec<Step>> {
    // Dedup across ring + exemplar copies of the same event.
    let mut span_seen: BTreeSet<(u64, u64, u32, &'static str, char)> = BTreeSet::new();
    let mut edge_seen: BTreeSet<(u64, u64, u32, u32, &'static str)> = BTreeSet::new();
    let mut out: BTreeMap<u64, Vec<Step>> = BTreeMap::new();
    let spans = report
        .spans
        .iter()
        .copied()
        .chain(report.exemplars.iter().flat_map(|x| x.spans.iter().copied()));
    for e in spans {
        if e.req == 0 {
            continue;
        }
        if !span_seen.insert((e.req, e.at.as_nanos(), e.node.0, e.phase, e.kind.tag())) {
            continue;
        }
        out.entry(e.req).or_default().push(Step::Span {
            at: e.at,
            node: e.node.0,
            phase: e.phase,
            kind: e.kind,
        });
    }
    let edges = report
        .edges
        .iter()
        .copied()
        .chain(report.exemplars.iter().flat_map(|x| x.edges.iter().copied()));
    for e in edges {
        if e.req == 0 {
            continue;
        }
        if !edge_seen.insert((e.req, e.at.as_nanos(), e.src.0, e.dst.0, e.kind)) {
            continue;
        }
        out.entry(e.req).or_default().push(Step::Edge {
            at: e.at,
            src: e.src.0,
            dst: e.dst.0,
            kind: e.kind,
        });
    }
    out
}

/// Reduces one request's steps to its blocking chain: first occurrence
/// per span `(phase, kind)` milestone and per edge kind, time-ordered.
fn blocking_chain(steps: &[Step]) -> Vec<Step> {
    let mut sorted: Vec<Step> = steps.to_vec();
    sorted.sort_by_key(|s| (s.at(), s.node(), s.label()));
    let mut span_taken: BTreeSet<(&'static str, char)> = BTreeSet::new();
    let mut edge_taken: BTreeSet<&'static str> = BTreeSet::new();
    let mut chain = Vec::new();
    for s in sorted {
        let fresh = match s {
            Step::Span { phase, kind, .. } => span_taken.insert((phase, kind.tag())),
            Step::Edge { kind, .. } => edge_taken.insert(kind),
        };
        if fresh {
            chain.push(s);
        }
    }
    chain
}

/// Classifies the gap between two consecutive chain steps.
fn classify(prev: &Step, next: &Step) -> (&'static str, &'static str, SegmentKind) {
    if let Step::Edge { dst, kind, .. } = *prev {
        if next.node() == dst {
            return (kind, "wire", SegmentKind::Transit);
        }
    }
    if prev.node() == next.node() {
        if let (
            Step::Span { phase: p0, kind: SpanKind::Enter, .. },
            Step::Span { phase: p1, kind: SpanKind::Exit, .. },
        ) = (prev, next)
        {
            if p0 == p1 {
                return ("local", p0, SegmentKind::Cpu);
            }
        }
        if let Step::Edge { kind, .. } = *next {
            return ("local", kind, SegmentKind::Emit);
        }
        return ("local", next.label(), SegmentKind::Queue);
    }
    // Cross-node gap with no recorded edge: attribute it to the hop
    // anyway so path time stays complete.
    ("cross", next.label(), SegmentKind::Transit)
}

/// Assembles the critical path of every *complete* request in the
/// report (one with both the `request` enter and exit milestone).
pub fn assemble(report: &ObsReport) -> Vec<RequestPath> {
    let mut out = Vec::new();
    for (req, steps) in steps_per_request(report) {
        let chain = blocking_chain(&steps);
        let enter = chain.iter().find_map(|s| match s {
            Step::Span { at, phase, kind: SpanKind::Enter, .. } if *phase == PHASE_REQUEST => {
                Some(*at)
            }
            _ => None,
        });
        let exit = chain.iter().find_map(|s| match s {
            Step::Span { at, phase, kind: SpanKind::Exit, .. } if *phase == PHASE_REQUEST => {
                Some(*at)
            }
            _ => None,
        });
        let (Some(enter), Some(exit)) = (enter, exit) else { continue };
        if exit < enter {
            continue;
        }
        let mut segments = Vec::new();
        for pair in chain.windows(2) {
            let dur = pair[1].at().saturating_sub(pair[0].at());
            if dur == SimTime::ZERO {
                continue;
            }
            let (hop, component, kind) = classify(&pair[0], &pair[1]);
            segments.push(PathSegment { hop, component, kind, dur });
        }
        out.push(RequestPath { req, latency: exit - enter, segments });
    }
    out
}

/// One aggregated row of a cohort's critical-path profile.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Segment hop (edge kind, `"local"`, or `"cross"`).
    pub hop: &'static str,
    /// Segment component.
    pub component: &'static str,
    /// Segment operation (`transit`/`cpu`/`emit`/`queue`).
    pub op: &'static str,
    /// Total time across the cohort's requests.
    pub total: SimTime,
    /// Share of the cohort's total critical-path time (0.0–1.0).
    pub share: f64,
    /// Requests contributing to this row.
    pub count: u64,
}

/// A cohort's aggregated critical-path profile, rows sorted largest
/// share first (ties broken by key for determinism).
#[derive(Debug, Clone)]
pub struct CohortProfile {
    /// Cohort label: `"p50"` or `"p999"`.
    pub cohort: &'static str,
    /// Requests in the cohort.
    pub requests: u64,
    /// Mean end-to-end latency of the cohort.
    pub mean_latency: SimTime,
    /// Aggregated rows.
    pub rows: Vec<ProfileRow>,
}

fn aggregate(cohort: &'static str, paths: &[&RequestPath]) -> CohortProfile {
    let mut acc: BTreeMap<(&'static str, &'static str, &'static str), (SimTime, u64)> =
        BTreeMap::new();
    let mut total = SimTime::ZERO;
    let mut lat_sum = 0u128;
    for p in paths {
        let mut seen: BTreeSet<(&'static str, &'static str, &'static str)> = BTreeSet::new();
        lat_sum += p.latency.as_nanos() as u128;
        for s in p.segments() {
            let key = (s.hop, s.component, s.kind.op());
            let slot = acc.entry(key).or_insert((SimTime::ZERO, 0));
            slot.0 += s.dur;
            if seen.insert(key) {
                slot.1 += 1;
            }
            total += s.dur;
        }
    }
    let mut rows: Vec<ProfileRow> = acc
        .into_iter()
        .map(|((hop, component, op), (t, count))| ProfileRow {
            hop,
            component,
            op,
            total: t,
            share: if total > SimTime::ZERO {
                t.as_nanos() as f64 / total.as_nanos() as f64
            } else {
                0.0
            },
            count,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total
            .cmp(&a.total)
            .then_with(|| (a.hop, a.component, a.op).cmp(&(b.hop, b.component, b.op)))
    });
    let n = paths.len() as u64;
    CohortProfile {
        cohort,
        requests: n,
        mean_latency: if n > 0 {
            SimTime::from_nanos((lat_sum / n as u128) as u64)
        } else {
            SimTime::ZERO
        },
        rows,
    }
}

/// Builds the differential profile: the p50 cohort (latency between the
/// 40th and 60th percentile) against the p99.9 cohort (latency at or
/// above the 99.9th percentile; always at least the slowest request).
/// Returns `[p50, p999]`, each aggregated with [`CohortProfile`] rows.
pub fn differential_profile(paths: &[RequestPath]) -> Vec<CohortProfile> {
    if paths.is_empty() {
        return vec![aggregate("p50", &[]), aggregate("p999", &[])];
    }
    let mut lats: Vec<SimTime> = paths.iter().map(|p| p.latency).collect();
    lats.sort_unstable();
    let at = |q: f64| {
        let idx = ((q * lats.len() as f64).ceil() as usize).max(1) - 1;
        lats[idx.min(lats.len() - 1)]
    };
    let (p40, p60, p999) = (at(0.40), at(0.60), at(0.999));
    let mid: Vec<&RequestPath> =
        paths.iter().filter(|p| p.latency >= p40 && p.latency <= p60).collect();
    let tail: Vec<&RequestPath> = paths.iter().filter(|p| p.latency >= p999).collect();
    vec![aggregate("p50", &mid), aggregate("p999", &tail)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{req_id, ObsConfig, Recorder};
    use spider_types::NodeId;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// One request: client 0 enters, emits a `request` edge to node 1,
    /// node 1 works exec enter→exit, replies over an edge, client exits.
    fn record_request(r: &mut Recorder, c: u32, slow_exec: u64) {
        let req = req_id(c, 1);
        let base = ms(10 * c as u64);
        r.span_enter(base, NodeId(c), req, PHASE_REQUEST);
        r.edge(base + ms(1), NodeId(c), NodeId(10), "request", req);
        r.span_enter(base + ms(5), NodeId(10), req, crate::PHASE_EXEC);
        r.span_exit(base + ms(5 + slow_exec), NodeId(10), req, crate::PHASE_EXEC);
        r.edge(base + ms(6 + slow_exec), NodeId(10), NodeId(c), "reply", req);
        r.span_exit(base + ms(10 + slow_exec), NodeId(c), req, PHASE_REQUEST);
    }

    #[test]
    fn assemble_classifies_transit_cpu_emit_queue() {
        let mut r = Recorder::enabled(ObsConfig::default());
        record_request(&mut r, 0, 1);
        let paths = assemble(&r.report());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.latency, ms(11));
        let kinds: Vec<(&str, &str, &str)> =
            p.segments().iter().map(|s| (s.hop, s.component, s.kind.op())).collect();
        assert_eq!(
            kinds,
            vec![
                ("local", "request", "emit"),   // enter -> edge departure
                ("request", "wire", "transit"), // edge -> first event on node 10
                ("local", "exec", "cpu"),       // exec enter -> exit
                ("local", "reply", "emit"),     // exec exit -> reply departure
                ("reply", "wire", "transit"),   // reply edge -> client exit
            ]
        );
        let sum: SimTime = p.segments().iter().map(|s| s.dur).fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(sum, ms(11), "segments tile the whole chain");
    }

    #[test]
    fn incomplete_requests_are_skipped() {
        let mut r = Recorder::enabled(ObsConfig::default());
        let req = req_id(0, 1);
        r.span_enter(ms(0), NodeId(0), req, PHASE_REQUEST);
        r.edge(ms(1), NodeId(0), NodeId(1), "request", req);
        // no exit
        assert!(assemble(&r.report()).is_empty());
    }

    #[test]
    fn differential_profile_separates_tail_from_median() {
        let mut r = Recorder::enabled(ObsConfig::default());
        // 99 fast requests (1ms exec) and one slow outlier (200ms exec).
        for c in 0..99 {
            record_request(&mut r, c, 1);
        }
        record_request(&mut r, 99, 200);
        let paths = assemble(&r.report());
        assert_eq!(paths.len(), 100);
        let profiles = differential_profile(&paths);
        assert_eq!(profiles.len(), 2);
        let p50 = &profiles[0];
        let tail = &profiles[1];
        assert_eq!(p50.cohort, "p50");
        assert_eq!(tail.cohort, "p999");
        assert_eq!(tail.requests, 1, "one request at/above p99.9");
        // The tail cohort's dominant row is the exec cpu segment.
        let top = &tail.rows[0];
        assert_eq!((top.hop, top.component, top.op), ("local", "exec", "cpu"));
        assert!(top.share > 0.9, "200/211 of the outlier's path is exec: {}", top.share);
        // The median cohort is dominated by everything but exec cpu.
        let p50_top = &p50.rows[0];
        assert_ne!((p50_top.hop, p50_top.component, p50_top.op), ("local", "exec", "cpu"));
        // Shares sum to 1 per cohort.
        let s: f64 = tail.rows.iter().map(|r| r.share).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_fanout_keeps_first_milestone_only() {
        let mut r = Recorder::enabled(ObsConfig::default());
        let req = req_id(0, 1);
        r.span_enter(ms(0), NodeId(0), req, PHASE_REQUEST);
        // Fan-out: three edges of the same kind; the first one is the chain.
        for (i, t) in [(1u32, 1u64), (2, 2), (3, 3)] {
            r.edge(ms(t), NodeId(0), NodeId(i), "request", req);
        }
        // Three replicas deliver; only the first unblocks progress.
        for (i, t) in [(1u32, 5u64), (2, 7), (3, 9)] {
            r.span_instant(ms(t), NodeId(i), req, crate::PHASE_DELIVER);
        }
        r.span_exit(ms(10), NodeId(0), req, PHASE_REQUEST);
        let paths = assemble(&r.report());
        assert_eq!(paths.len(), 1);
        // Chain: enter@0, edge@1 (->n1), deliver@5 (n1), exit@10.
        let segs = paths[0].segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[1].dur, ms(4), "transit to the *first* deliver");
        assert_eq!(segs[1].kind.op(), "transit");
    }
}
