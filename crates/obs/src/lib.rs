//! `spider-obs`: deterministic observability for the Spider workspace.
//!
//! Every bottleneck found so far (per-slot RSA, the RC receiver hash
//! wall, the current sender-CPU saturation) was located by ad-hoc printf
//! archaeology. This crate replaces that with three substrates, all
//! recorded against simulated time so they are *reproducible artifacts*
//! — the same seed yields the byte-identical trace:
//!
//! 1. **Request-scoped trace spans** ([`SpanEvent`]): phase enter/exit/
//!    instant milestones keyed by a request id, recorded into bounded
//!    per-node ring buffers. Disabled recorders are a single branch per
//!    call, and recording itself never allocates once a ring has grown
//!    to capacity.
//! 2. **Per-node metrics registry** ([`Recorder::counter_add`],
//!    [`Recorder::hist_record`]): counters and log-bucketed histograms
//!    ([`Histogram`]) good to p99.9 with bounded relative error
//!    (≤ 1/32), snapshotted deterministically at sim end.
//! 3. **CPU attribution** ([`Recorder::cpu_add`]): busy time per
//!    `(node, component, operation)`, accumulated at every `CostModel`
//!    charge site, exported as folded stacks for flamegraphs.
//!
//! Exporters ([`export`]) turn an [`ObsReport`] into Chrome/Perfetto
//! `trace_event` JSON, a JSONL span dump, folded stacks, and per-phase
//! latency breakdowns. [`export::fnv64`] digests any of those for
//! determinism double-run tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod metrics;
mod trace;

pub use metrics::Histogram;
pub use trace::{Ring, SpanEvent, SpanKind};

use spider_types::{NodeId, SimTime};
use std::collections::BTreeMap;

/// Milestone phase: a client accepted a request (span enter) or saw its
/// reply quorum (span exit).
pub const PHASE_REQUEST: &str = "request";
/// Milestone phase: the agreement group handed the request to consensus.
pub const PHASE_PROPOSE: &str = "propose";
/// Milestone phase: consensus delivered (committed) the request.
pub const PHASE_COMMIT: &str = "commit";
/// Milestone phase: the committed request was shipped on a commit channel.
pub const PHASE_SHIP: &str = "ship";
/// Milestone phase: an execution replica received the committed request.
pub const PHASE_DELIVER: &str = "deliver";
/// Node-local phase: application execution of one committed request.
pub const PHASE_EXEC: &str = "exec";
/// Node-local phase: cutting one consensus batch out of the backlog.
pub const PHASE_BATCH: &str = "batch";
/// Channel-level instant: an IRMC-RC sender re-cast an unacked range
/// (liveness path; expected after partitions heal).
pub const PHASE_RECAST: &str = "recast";

/// Request id for client request `seq` of client `client`: unique across
/// the deployment, stable across runs.
pub fn req_id(client: u32, seq: u64) -> u64 {
    ((client as u64) << 40) | (seq & 0xff_ffff_ffff)
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Span events retained per node; the ring overwrites its oldest
    /// events beyond this.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { span_capacity: 1 << 15 }
    }
}

/// The per-simulation observability state: span rings, metrics registry,
/// and CPU attribution. A disabled recorder (the default) reduces every
/// record call to one branch.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    cfg: ObsConfig,
    rings: Vec<trace::Ring>,
    counters: BTreeMap<(u32, &'static str), u64>,
    hists: BTreeMap<(u32, &'static str), Histogram>,
    cpu: BTreeMap<(u32, &'static str, &'static str), SimTime>,
}

impl Recorder {
    /// A disabled recorder: every record call is a no-op.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// An enabled recorder.
    pub fn enabled(cfg: ObsConfig) -> Self {
        Recorder { enabled: true, cfg, ..Recorder::default() }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Makes room for `node`'s ring (idempotent; cheap when disabled).
    pub fn ensure_node(&mut self, node: NodeId) {
        if !self.enabled {
            return;
        }
        let idx = node.0 as usize;
        while self.rings.len() <= idx {
            self.rings.push(trace::Ring::new(self.cfg.span_capacity));
        }
    }

    fn span(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str, kind: SpanKind) {
        if !self.enabled {
            return;
        }
        self.ensure_node(node);
        if let Some(ring) = self.rings.get_mut(node.0 as usize) {
            ring.push(SpanEvent { at, node, req, phase, kind });
        }
    }

    /// Records a span enter for `(req, phase)` on `node` at `at`.
    pub fn span_enter(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Enter);
    }

    /// Records a span exit for `(req, phase)` on `node` at `at`.
    pub fn span_exit(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Exit);
    }

    /// Records an instant milestone for `(req, phase)` on `node` at `at`.
    pub fn span_instant(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Instant);
    }

    /// Adds `delta` to counter `name` of `node`.
    pub fn counter_add(&mut self, node: NodeId, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry((node.0, name)).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name` of `node`.
    pub fn hist_record(&mut self, node: NodeId, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.hists.entry((node.0, name)).or_default().record(value);
    }

    /// Attributes `cost` of busy time to `(node, component, op)`.
    pub fn cpu_add(
        &mut self,
        node: NodeId,
        component: &'static str,
        op: &'static str,
        cost: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        let slot = self.cpu.entry((node.0, component, op)).or_insert(SimTime::ZERO);
        *slot += cost;
    }

    /// Snapshots everything recorded so far into an owned report. Span
    /// events merge across nodes in global time order (ties keep node
    /// order), so the report is a deterministic function of the run.
    pub fn report(&self) -> ObsReport {
        let mut spans: Vec<SpanEvent> = Vec::new();
        for ring in &self.rings {
            ring.for_each(|e| spans.push(*e));
        }
        spans.sort_by_key(|e| (e.at, e.node.0, e.req, e.phase));
        ObsReport {
            spans,
            counters: self.counters.clone(),
            hists: self.hists.clone(),
            cpu: self.cpu.clone(),
        }
    }
}

/// An owned, deterministic snapshot of a [`Recorder`].
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// All retained span events in global `(time, node)` order.
    pub spans: Vec<SpanEvent>,
    /// Counters keyed by `(node, name)`.
    pub counters: BTreeMap<(u32, &'static str), u64>,
    /// Histograms keyed by `(node, name)`.
    pub hists: BTreeMap<(u32, &'static str), Histogram>,
    /// Attributed busy time keyed by `(node, component, op)`.
    pub cpu: BTreeMap<(u32, &'static str, &'static str), SimTime>,
}

impl ObsReport {
    /// Merges another report into this one (multi-sim experiments).
    pub fn merge(&mut self, other: &ObsReport) {
        self.spans.extend(other.spans.iter().copied());
        self.spans.sort_by_key(|e| (e.at, e.node.0, e.req, e.phase));
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(*k).or_default().merge(h);
        }
        for (k, v) in &other.cpu {
            let slot = self.cpu.entry(*k).or_insert(SimTime::ZERO);
            *slot += *v;
        }
    }

    /// Total attributed busy time per `(component, op)` across all nodes.
    pub fn cpu_by_op(&self) -> BTreeMap<(&'static str, &'static str), SimTime> {
        let mut out: BTreeMap<(&'static str, &'static str), SimTime> = BTreeMap::new();
        for (&(_, component, op), &t) in &self.cpu {
            let slot = out.entry((component, op)).or_insert(SimTime::ZERO);
            *slot += t;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.span_enter(SimTime::from_millis(1), NodeId(0), 1, PHASE_REQUEST);
        r.counter_add(NodeId(0), "x", 1);
        r.hist_record(NodeId(0), "h", 5);
        r.cpu_add(NodeId(0), "c", "o", SimTime::from_micros(3));
        let rep = r.report();
        assert!(rep.spans.is_empty() && rep.counters.is_empty());
        assert!(rep.hists.is_empty() && rep.cpu.is_empty());
    }

    #[test]
    fn spans_merge_in_time_order() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.span_instant(SimTime::from_millis(5), NodeId(1), 7, PHASE_COMMIT);
        r.span_instant(SimTime::from_millis(2), NodeId(2), 7, PHASE_PROPOSE);
        r.span_instant(SimTime::from_millis(5), NodeId(0), 7, PHASE_SHIP);
        let rep = r.report();
        let order: Vec<&str> = rep.spans.iter().map(|e| e.phase).collect();
        assert_eq!(order, vec![PHASE_PROPOSE, PHASE_SHIP, PHASE_COMMIT]);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let mut r = Recorder::enabled(ObsConfig { span_capacity: 4 });
        for i in 0..10u64 {
            r.span_instant(SimTime::from_millis(i), NodeId(0), i, PHASE_COMMIT);
        }
        let rep = r.report();
        assert_eq!(rep.spans.len(), 4);
        assert_eq!(rep.spans.first().map(|e| e.req), Some(6));
        assert_eq!(rep.spans.last().map(|e| e.req), Some(9));
    }

    #[test]
    fn cpu_attribution_accumulates_per_key() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.cpu_add(NodeId(0), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(0), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(1), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(0), "sender", "vouch_mac", SimTime::from_micros(2));
        let rep = r.report();
        let by_op = rep.cpu_by_op();
        assert_eq!(by_op[&("sender", "range_sign")], SimTime::from_micros(1800));
        assert_eq!(by_op[&("sender", "vouch_mac")], SimTime::from_micros(2));
    }

    #[test]
    fn req_id_is_injective_over_practical_ranges() {
        assert_ne!(req_id(1, 0), req_id(0, 1));
        assert_ne!(req_id(10_000, 3), req_id(10_001, 3));
        assert_eq!(req_id(5, 9) >> 40, 5);
    }
}
