//! `spider-obs`: deterministic observability for the Spider workspace.
//!
//! Every bottleneck found so far (per-slot RSA, the RC receiver hash
//! wall, the current sender-CPU saturation) was located by ad-hoc printf
//! archaeology. This crate replaces that with recording substrates and
//! an analysis layer, all against simulated time so they are
//! *reproducible artifacts* — the same seed yields the byte-identical
//! trace:
//!
//! 1. **Request-scoped trace spans** ([`SpanEvent`]): phase enter/exit/
//!    instant milestones keyed by a request id, recorded into bounded
//!    per-node ring buffers. Disabled recorders are a single branch per
//!    call, and recording itself never allocates once a ring has grown
//!    to capacity. Overwritten events are counted
//!    ([`ObsReport::spans_dropped`]) — truncation is never silent.
//! 2. **Causal edges** ([`EdgeEvent`]): cross-node message departures
//!    `(src, dst, kind, req, departure time)`, recorded at the sending
//!    handler's charge/departure point. Spans are per-node islands;
//!    edges are what links a client's submit to the consensus batch,
//!    the IRMC range that carried it, and the replica that replied.
//! 3. **Per-node metrics registry** ([`Recorder::counter_add`],
//!    [`Recorder::hist_record`]): counters and log-bucketed histograms
//!    ([`Histogram`]) good to p99.9 with bounded relative error
//!    (≤ 1/32), snapshotted deterministically at sim end.
//! 4. **CPU attribution** ([`Recorder::cpu_add`]): busy time per
//!    `(node, component, operation)`, accumulated at every `CostModel`
//!    charge site, exported as folded stacks for flamegraphs.
//! 5. **Exemplar reservoir** ([`Exemplar`]): full span/edge detail for
//!    the slowest K requests plus a deterministic uniform sample,
//!    retained outside the rings so fig7-scale traced runs stay
//!    bounded *and* the requests worth dissecting keep every event.
//! 6. **Streaming health watchdog** ([`health::HealthMonitor`]): IRMC
//!    window-stall and view-change detectors, per-channel backpressure
//!    gauges, and rolling latency windows, fed at runtime and emitting
//!    typed [`health::HealthEvent`]s on the sim timeline.
//!
//! The analysis layer ([`causal`]) assembles the spans and edges into
//! per-request causal chains and differential critical-path profiles
//! (p99.9 cohort vs. p50 cohort). Exporters ([`export`]) turn an
//! [`ObsReport`] into Chrome/Perfetto `trace_event` JSON, a JSONL span
//! dump, folded stacks (CPU and critical-path), per-phase latency
//! breakdowns, and a health-event JSONL. [`export::fnv64`] digests any
//! of those for determinism double-run tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod export;
pub mod health;
mod metrics;
mod trace;

pub use health::{HealthConfig, HealthEvent, HealthMonitor};
pub use metrics::Histogram;
pub use trace::{EdgeEvent, Ring, SpanEvent, SpanKind};

use spider_types::{NodeId, SimTime};
use std::collections::BTreeMap;

/// Milestone phase: a client accepted a request (span enter) or saw its
/// reply quorum (span exit).
pub const PHASE_REQUEST: &str = "request";
/// Milestone phase: the agreement group handed the request to consensus.
pub const PHASE_PROPOSE: &str = "propose";
/// Milestone phase: consensus delivered (committed) the request.
pub const PHASE_COMMIT: &str = "commit";
/// Milestone phase: the committed request was shipped on a commit channel.
pub const PHASE_SHIP: &str = "ship";
/// Milestone phase: an execution replica received the committed request.
pub const PHASE_DELIVER: &str = "deliver";
/// Node-local phase: application execution of one committed request.
pub const PHASE_EXEC: &str = "exec";
/// Node-local phase: cutting one consensus batch out of the backlog.
pub const PHASE_BATCH: &str = "batch";
/// Channel-level instant: an IRMC-RC sender re-cast an unacked range
/// (liveness path; expected after partitions heal).
pub const PHASE_RECAST: &str = "recast";

/// Request id for client request `seq` of client `client`: unique across
/// the deployment, stable across runs.
pub fn req_id(client: u32, seq: u64) -> u64 {
    ((client as u64) << 40) | (seq & 0xff_ffff_ffff)
}

/// Recorder configuration.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Span events retained per node; the ring overwrites its oldest
    /// events beyond this (counted in [`ObsReport::spans_dropped`]).
    pub span_capacity: usize,
    /// Causal edge events retained per (source) node; overwritten
    /// beyond this (counted in [`ObsReport::edges_dropped`]).
    pub edge_capacity: usize,
    /// Slowest requests kept with full span/edge detail in the
    /// exemplar reservoir.
    pub exemplar_slowest: usize,
    /// Uniform-sample slots of the exemplar reservoir (Algorithm R
    /// over completed requests, seeded from the sim seed).
    pub exemplar_sample: usize,
    /// Watchdog thresholds.
    pub health: HealthConfig,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            span_capacity: 1 << 15,
            edge_capacity: 1 << 15,
            exemplar_slowest: 64,
            exemplar_sample: 256,
            health: HealthConfig::default(),
        }
    }
}

/// Full span/edge detail of one retained request.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The request id.
    pub req: u64,
    /// When the request entered (its `request` span enter).
    pub started: SimTime,
    /// End-to-end latency.
    pub latency: SimTime,
    /// Every span event recorded for the request while it was open.
    pub spans: Vec<SpanEvent>,
    /// Every causal edge recorded for the request while it was open.
    pub edges: Vec<EdgeEvent>,
}

/// Per-request capture buffer while the request is in flight.
#[derive(Debug, Default)]
struct OpenReq {
    started: SimTime,
    spans: Vec<SpanEvent>,
    edges: Vec<EdgeEvent>,
}

/// Requests tracked in flight at once; beyond this new requests are not
/// captured for the reservoir (counted, never silent).
const OPEN_CAP: usize = 1 << 14;

/// The per-simulation observability state: span rings, causal edge
/// rings, metrics registry, CPU attribution, the exemplar reservoir,
/// and the streaming health watchdog. A disabled recorder (the default)
/// reduces every record call to one branch.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    cfg: ObsConfig,
    rings: Vec<trace::Ring<SpanEvent>>,
    edge_rings: Vec<trace::Ring<EdgeEvent>>,
    counters: BTreeMap<(u32, &'static str), u64>,
    hists: BTreeMap<(u32, &'static str), Histogram>,
    cpu: BTreeMap<(u32, &'static str, &'static str), SimTime>,
    /// In-flight request capture for the exemplar reservoir.
    open: BTreeMap<u64, OpenReq>,
    open_overflow: u64,
    /// Slowest-K exemplars keyed by (latency, req).
    slowest: BTreeMap<(u64, u64), Exemplar>,
    /// Uniform reservoir sample (Algorithm R).
    sample: Vec<Exemplar>,
    completed: u64,
    /// xorshift64* state for the reservoir; seeded from the sim seed
    /// via [`Recorder::set_seed`] — deliberately *not* the sim's own
    /// RNG, so tracing never perturbs jitter draws (pure observer).
    rng_state: u64,
    health: Option<HealthMonitor>,
}

impl Recorder {
    /// A disabled recorder: every record call is a no-op.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    /// An enabled recorder.
    pub fn enabled(cfg: ObsConfig) -> Self {
        Recorder {
            enabled: true,
            cfg,
            health: Some(HealthMonitor::new(cfg.health)),
            rng_state: 0x9E37_79B9_7F4A_7C15,
            ..Recorder::default()
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Seeds the exemplar reservoir's sampler from the simulation seed,
    /// so exemplar selection is a deterministic function of the run.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng_state = seed ^ 0x9E37_79B9_7F4A_7C15;
        if self.rng_state == 0 {
            self.rng_state = 0x2545_F491_4F6C_DD1D;
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, and private to the observer.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Makes room for `node`'s rings (idempotent; cheap when disabled).
    pub fn ensure_node(&mut self, node: NodeId) {
        if !self.enabled {
            return;
        }
        let idx = node.0 as usize;
        while self.rings.len() <= idx {
            self.rings.push(trace::Ring::new(self.cfg.span_capacity));
            self.edge_rings.push(trace::Ring::new(self.cfg.edge_capacity));
        }
    }

    fn span(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str, kind: SpanKind) {
        if !self.enabled {
            return;
        }
        self.ensure_node(node);
        let ev = SpanEvent { at, node, req, phase, kind };
        if let Some(ring) = self.rings.get_mut(node.0 as usize) {
            ring.push(ev);
        }
        self.observe_span(ev);
        if let Some(h) = &mut self.health {
            h.scan(at);
        }
    }

    /// Reservoir + health bookkeeping for a request-scoped span event.
    fn observe_span(&mut self, ev: SpanEvent) {
        if ev.req == 0 {
            return;
        }
        if ev.phase == PHASE_REQUEST && ev.kind == SpanKind::Enter {
            if self.open.len() >= OPEN_CAP {
                self.open_overflow += 1;
            } else {
                self.open
                    .entry(ev.req)
                    .or_insert_with(|| OpenReq { started: ev.at, ..OpenReq::default() });
            }
        }
        let finished = if let Some(open) = self.open.get_mut(&ev.req) {
            open.spans.push(ev);
            ev.phase == PHASE_REQUEST && ev.kind == SpanKind::Exit
        } else {
            false
        };
        if finished {
            let open = self.open.remove(&ev.req).expect("checked above");
            let latency = ev.at.saturating_sub(open.started);
            if let Some(h) = &mut self.health {
                h.latency(ev.at, latency);
            }
            let ex = Exemplar {
                req: ev.req,
                started: open.started,
                latency,
                spans: open.spans,
                edges: open.edges,
            };
            // Slowest-K half of the reservoir.
            if self.cfg.exemplar_slowest > 0 {
                self.slowest.insert((latency.as_nanos(), ex.req), ex.clone());
                while self.slowest.len() > self.cfg.exemplar_slowest {
                    self.slowest.pop_first();
                }
            }
            // Uniform half (Algorithm R over the completion stream).
            self.completed += 1;
            if self.cfg.exemplar_sample > 0 {
                if self.sample.len() < self.cfg.exemplar_sample {
                    self.sample.push(ex);
                } else {
                    let j = self.next_rand() % self.completed;
                    if (j as usize) < self.sample.len() {
                        self.sample[j as usize] = ex;
                    }
                }
            }
        }
    }

    /// Records a span enter for `(req, phase)` on `node` at `at`.
    pub fn span_enter(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Enter);
    }

    /// Records a span exit for `(req, phase)` on `node` at `at`.
    pub fn span_exit(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Exit);
    }

    /// Records an instant milestone for `(req, phase)` on `node` at `at`.
    pub fn span_instant(&mut self, at: SimTime, node: NodeId, req: u64, phase: &'static str) {
        self.span(at, node, req, phase, SpanKind::Instant);
    }

    /// Records a causal edge: a message of `kind` carrying `req`
    /// departed `src` for `dst` at `at`.
    pub fn edge(&mut self, at: SimTime, src: NodeId, dst: NodeId, kind: &'static str, req: u64) {
        if !self.enabled {
            return;
        }
        self.ensure_node(src);
        let ev = EdgeEvent { at, src, dst, kind, req };
        if let Some(ring) = self.edge_rings.get_mut(src.0 as usize) {
            ring.push(ev);
        }
        if req != 0 {
            if let Some(open) = self.open.get_mut(&req) {
                open.edges.push(ev);
            }
        }
        if let Some(h) = &mut self.health {
            h.scan(at);
        }
    }

    /// Adds `delta` to counter `name` of `node`.
    pub fn counter_add(&mut self, node: NodeId, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry((node.0, name)).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name` of `node`.
    pub fn hist_record(&mut self, node: NodeId, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        self.hists.entry((node.0, name)).or_default().record(value);
    }

    /// Attributes `cost` of busy time to `(node, component, op)`.
    pub fn cpu_add(
        &mut self,
        node: NodeId,
        component: &'static str,
        op: &'static str,
        cost: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        let slot = self.cpu.entry((node.0, component, op)).or_insert(SimTime::ZERO);
        *slot += cost;
    }

    /// Feeds a channel progress mark (window movement) to the watchdog.
    pub fn health_mark(&mut self, at: SimTime, node: NodeId, component: &'static str, key: u32) {
        if let Some(h) = &mut self.health {
            h.mark(at, node, component, key);
        }
    }

    /// Feeds a channel's outstanding-work gauge to the watchdog.
    pub fn health_pending(
        &mut self,
        at: SimTime,
        node: NodeId,
        component: &'static str,
        key: u32,
        pending: u64,
    ) {
        if let Some(h) = &mut self.health {
            h.pending(at, node, component, key, pending);
        }
    }

    /// Feeds a consensus view observation to the watchdog.
    pub fn health_view(&mut self, at: SimTime, node: NodeId, view: u64) {
        if let Some(h) = &mut self.health {
            h.view(at, node, view);
        }
    }

    /// Snapshots everything recorded so far into an owned report. Span
    /// and edge events merge across nodes in global time order (ties
    /// keep node order), exemplars and health events sort by request and
    /// time, so the report is a deterministic function of the run.
    pub fn report(&self) -> ObsReport {
        let mut spans: Vec<SpanEvent> = Vec::new();
        let mut spans_dropped = 0u64;
        for ring in &self.rings {
            ring.for_each(|e| spans.push(*e));
            spans_dropped += ring.dropped();
        }
        spans.sort_by_key(|e| (e.at, e.node.0, e.req, e.phase));
        let mut edges: Vec<EdgeEvent> = Vec::new();
        let mut edges_dropped = 0u64;
        for ring in &self.edge_rings {
            ring.for_each(|e| edges.push(*e));
            edges_dropped += ring.dropped();
        }
        edges.sort_by_key(|e| (e.at, e.src.0, e.dst.0, e.req, e.kind));
        let mut exemplars: Vec<Exemplar> = self.slowest.values().cloned().collect();
        exemplars.extend(self.sample.iter().cloned());
        exemplars.sort_by_key(|x| x.req);
        exemplars.dedup_by_key(|x| x.req);
        let (health, health_windows, gauges) = match &self.health {
            Some(h) => (h.events(), h.windows(), h.gauges()),
            None => (Vec::new(), Vec::new(), BTreeMap::new()),
        };
        ObsReport {
            spans,
            edges,
            counters: self.counters.clone(),
            hists: self.hists.clone(),
            cpu: self.cpu.clone(),
            spans_dropped,
            edges_dropped,
            exemplars,
            health,
            health_windows,
            gauges,
        }
    }
}

/// An owned, deterministic snapshot of a [`Recorder`].
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// All retained span events in global `(time, node)` order.
    pub spans: Vec<SpanEvent>,
    /// All retained causal edges in global `(time, src)` order.
    pub edges: Vec<EdgeEvent>,
    /// Counters keyed by `(node, name)`.
    pub counters: BTreeMap<(u32, &'static str), u64>,
    /// Histograms keyed by `(node, name)`.
    pub hists: BTreeMap<(u32, &'static str), Histogram>,
    /// Attributed busy time keyed by `(node, component, op)`.
    pub cpu: BTreeMap<(u32, &'static str, &'static str), SimTime>,
    /// Span events lost to ring truncation (0 = the spans are complete).
    pub spans_dropped: u64,
    /// Edge events lost to ring truncation.
    pub edges_dropped: u64,
    /// Exemplar requests with full span/edge detail: the slowest K plus
    /// a deterministic uniform sample, deduped, sorted by request id.
    pub exemplars: Vec<Exemplar>,
    /// Watchdog events in time order.
    pub health: Vec<HealthEvent>,
    /// Rolling request-latency windows as `(window_start, histogram)`.
    pub health_windows: Vec<(SimTime, Histogram)>,
    /// Backpressure gauges keyed by `(node, component, key)` as
    /// `(current, high_water)` outstanding work.
    pub gauges: BTreeMap<(u32, &'static str, u32), (u64, u64)>,
}

impl ObsReport {
    /// Merges another report into this one (multi-sim experiments).
    pub fn merge(&mut self, other: &ObsReport) {
        self.spans.extend(other.spans.iter().copied());
        self.spans.sort_by_key(|e| (e.at, e.node.0, e.req, e.phase));
        self.edges.extend(other.edges.iter().copied());
        self.edges.sort_by_key(|e| (e.at, e.src.0, e.dst.0, e.req, e.kind));
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(*k).or_default().merge(h);
        }
        for (k, v) in &other.cpu {
            let slot = self.cpu.entry(*k).or_insert(SimTime::ZERO);
            *slot += *v;
        }
        self.spans_dropped += other.spans_dropped;
        self.edges_dropped += other.edges_dropped;
        self.exemplars.extend(other.exemplars.iter().cloned());
        self.exemplars.sort_by_key(|x| x.req);
        self.exemplars.dedup_by_key(|x| x.req);
        self.health.extend(other.health.iter().copied());
        self.health.sort_by_key(|e| e.at());
        let mut windows: BTreeMap<SimTime, Histogram> = self.health_windows.drain(..).collect();
        for (start, h) in &other.health_windows {
            windows.entry(*start).or_default().merge(h);
        }
        self.health_windows = windows.into_iter().collect();
        for (k, &(cur, hw)) in &other.gauges {
            let slot = self.gauges.entry(*k).or_insert((0, 0));
            slot.0 = slot.0.max(cur);
            slot.1 = slot.1.max(hw);
        }
    }

    /// Total attributed busy time per `(component, op)` across all nodes.
    pub fn cpu_by_op(&self) -> BTreeMap<(&'static str, &'static str), SimTime> {
        let mut out: BTreeMap<(&'static str, &'static str), SimTime> = BTreeMap::new();
        for (&(_, component, op), &t) in &self.cpu {
            let slot = out.entry((component, op)).or_insert(SimTime::ZERO);
            *slot += t;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.span_enter(SimTime::from_millis(1), NodeId(0), 1, PHASE_REQUEST);
        r.edge(SimTime::from_millis(1), NodeId(0), NodeId(1), "request", 1);
        r.counter_add(NodeId(0), "x", 1);
        r.hist_record(NodeId(0), "h", 5);
        r.cpu_add(NodeId(0), "c", "o", SimTime::from_micros(3));
        r.health_mark(SimTime::from_millis(1), NodeId(0), "commit", 0);
        let rep = r.report();
        assert!(rep.spans.is_empty() && rep.counters.is_empty());
        assert!(rep.hists.is_empty() && rep.cpu.is_empty());
        assert!(rep.edges.is_empty() && rep.exemplars.is_empty() && rep.health.is_empty());
    }

    #[test]
    fn spans_merge_in_time_order() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.span_instant(SimTime::from_millis(5), NodeId(1), 7, PHASE_COMMIT);
        r.span_instant(SimTime::from_millis(2), NodeId(2), 7, PHASE_PROPOSE);
        r.span_instant(SimTime::from_millis(5), NodeId(0), 7, PHASE_SHIP);
        let rep = r.report();
        let order: Vec<&str> = rep.spans.iter().map(|e| e.phase).collect();
        assert_eq!(order, vec![PHASE_PROPOSE, PHASE_SHIP, PHASE_COMMIT]);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity_and_counts_drops() {
        let mut r = Recorder::enabled(ObsConfig { span_capacity: 4, ..ObsConfig::default() });
        for i in 0..10u64 {
            r.span_instant(SimTime::from_millis(i), NodeId(0), i, PHASE_COMMIT);
        }
        let rep = r.report();
        assert_eq!(rep.spans.len(), 4);
        assert_eq!(rep.spans.first().map(|e| e.req), Some(6));
        assert_eq!(rep.spans.last().map(|e| e.req), Some(9));
        assert_eq!(rep.spans_dropped, 6, "truncation must be counted, never silent");
    }

    #[test]
    fn edges_merge_in_time_order_with_drop_count() {
        let mut r = Recorder::enabled(ObsConfig { edge_capacity: 2, ..ObsConfig::default() });
        r.edge(SimTime::from_millis(3), NodeId(0), NodeId(1), "request", 7);
        r.edge(SimTime::from_millis(1), NodeId(1), NodeId(2), "reply", 7);
        r.edge(SimTime::from_millis(4), NodeId(0), NodeId(2), "request", 8);
        r.edge(SimTime::from_millis(5), NodeId(0), NodeId(3), "request", 9);
        let rep = r.report();
        let order: Vec<u64> = rep.edges.iter().map(|e| e.req).collect();
        assert_eq!(order, vec![7, 8, 9]);
        assert_eq!(rep.edges_dropped, 1);
    }

    #[test]
    fn cpu_attribution_accumulates_per_key() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.cpu_add(NodeId(0), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(0), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(1), "sender", "range_sign", SimTime::from_micros(600));
        r.cpu_add(NodeId(0), "sender", "vouch_mac", SimTime::from_micros(2));
        let rep = r.report();
        let by_op = rep.cpu_by_op();
        assert_eq!(by_op[&("sender", "range_sign")], SimTime::from_micros(1800));
        assert_eq!(by_op[&("sender", "vouch_mac")], SimTime::from_micros(2));
    }

    #[test]
    fn reservoir_keeps_slowest_and_samples_uniformly() {
        let mut r = Recorder::enabled(ObsConfig {
            exemplar_slowest: 2,
            exemplar_sample: 3,
            ..ObsConfig::default()
        });
        r.set_seed(42);
        for i in 0..50u64 {
            let req = req_id(0, i + 1);
            let base = SimTime::from_millis(10 * i);
            r.span_enter(base, NodeId(0), req, PHASE_REQUEST);
            r.edge(base + SimTime::from_millis(1), NodeId(0), NodeId(1), "request", req);
            // Request 17 is the slow outlier.
            let lat = if i == 17 { 500 } else { 1 + i % 3 };
            r.span_exit(base + SimTime::from_millis(lat), NodeId(0), req, PHASE_REQUEST);
        }
        let rep = r.report();
        assert!(rep.exemplars.len() <= 5);
        let slowest = rep.exemplars.iter().max_by_key(|x| x.latency).expect("exemplars recorded");
        assert_eq!(slowest.req, req_id(0, 18), "the outlier must be retained");
        assert_eq!(slowest.latency, SimTime::from_millis(500));
        assert_eq!(slowest.spans.len(), 2);
        assert_eq!(slowest.edges.len(), 1, "edges captured alongside spans");
        // Same seed, same selection.
        let again = {
            let mut r2 = Recorder::enabled(ObsConfig {
                exemplar_slowest: 2,
                exemplar_sample: 3,
                ..ObsConfig::default()
            });
            r2.set_seed(42);
            for i in 0..50u64 {
                let req = req_id(0, i + 1);
                let base = SimTime::from_millis(10 * i);
                r2.span_enter(base, NodeId(0), req, PHASE_REQUEST);
                r2.edge(base + SimTime::from_millis(1), NodeId(0), NodeId(1), "request", req);
                let lat = if i == 17 { 500 } else { 1 + i % 3 };
                r2.span_exit(base + SimTime::from_millis(lat), NodeId(0), req, PHASE_REQUEST);
            }
            r2.report()
        };
        let ids: Vec<u64> = rep.exemplars.iter().map(|x| x.req).collect();
        let ids2: Vec<u64> = again.exemplars.iter().map(|x| x.req).collect();
        assert_eq!(ids, ids2, "exemplar selection must be seed-deterministic");
    }

    #[test]
    fn health_events_surface_in_report() {
        let mut r = Recorder::enabled(ObsConfig::default());
        r.health_pending(SimTime::from_secs(1), NodeId(4), "commit", 2, 8);
        // Silence past the stall deadline; a span triggers the lazy scan.
        r.span_instant(SimTime::from_secs(4), NodeId(0), 0, PHASE_RECAST);
        let rep = r.report();
        assert_eq!(rep.health.len(), 1);
        assert!(matches!(rep.health[0], HealthEvent::IrmcWindowStall { .. }));
        assert_eq!(rep.gauges[&(4, "commit", 2)], (8, 8));
    }

    #[test]
    fn req_id_is_injective_over_practical_ranges() {
        assert_ne!(req_id(1, 0), req_id(0, 1));
        assert_ne!(req_id(10_000, 3), req_id(10_001, 3));
        assert_eq!(req_id(5, 9) >> 40, 5);
    }
}
