//! Streaming health watchdog: typed [`HealthEvent`]s on the sim timeline.
//!
//! The disaster suite computes availability metrics *after* a run; this
//! monitor watches the same instrumentation *during* the run, so a
//! stalled IRMC window or a view-change storm is visible at the moment
//! it happens (and can be asserted against a known fault schedule).
//!
//! The monitor is a pure observer fed from [`crate::Recorder`] hooks:
//!
//! * **Progress marks** ([`HealthMonitor::mark`]): an IRMC channel
//!   window moved, or a receiver delivered a slot. Stall state is kept
//!   per *logical* channel `(component, key)`, joining sender-side
//!   outstanding gauges with receiver-side delivery marks: ack windows
//!   legitimately sit still between checkpoints (and senders retain
//!   delivered-but-unacked content across request gaps), so neither
//!   window movement nor a bare `pending > 0` can tell a low-rate
//!   channel from a severed one. What can: a *transmission with no
//!   delivery behind it*. The stall clock arms when a link's summed
//!   gauge grows and disarms on any progress mark; if it stays armed
//!   for [`HealthConfig::stall_after`] the link raises
//!   [`HealthEvent::IrmcWindowStall`], and the next mark (or a drain
//!   to zero) raises [`HealthEvent::IrmcWindowRecover`].
//! * **Backpressure gauges** ([`HealthMonitor::pending`]): outstanding
//!   (unacked) work per endpoint; the current and high-water values are
//!   exported per `(node, component, key)`.
//! * **View changes** ([`HealthMonitor::view`]): each new view raises
//!   [`HealthEvent::ViewChange`]; several within
//!   [`HealthConfig::view_storm_window`] raise
//!   [`HealthEvent::ViewChangeStorm`].
//! * **Rolling latency windows** ([`HealthMonitor::latency`]):
//!   request latencies bucketed into fixed windows of
//!   [`HealthConfig::window`], each a full [`Histogram`], so tail
//!   behaviour over time survives into the report.
//!
//! Stall detection is *lazy*: there are no timers of its own (that
//! would perturb the simulation). Every feed call first scans tracked
//! channels against the latest observed time; a stall event is stamped
//! at the instant the deadline expired (first unserved transmission
//! plus `stall_after`) — not the (later) time the scan happened to
//! run, so event times are a deterministic function of the run.

use crate::metrics::Histogram;
use spider_types::{NodeId, SimTime};
use std::collections::BTreeMap;

/// Watchdog thresholds.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// A channel with outstanding work and no window movement for this
    /// long is declared stalled.
    pub stall_after: SimTime,
    /// Width of one rolling latency window.
    pub window: SimTime,
    /// Window over which view changes count towards a storm.
    pub view_storm_window: SimTime,
    /// View changes within [`Self::view_storm_window`] that raise a
    /// [`HealthEvent::ViewChangeStorm`].
    pub view_storm_count: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            stall_after: SimTime::from_secs(1),
            window: SimTime::from_secs(1),
            view_storm_window: SimTime::from_secs(10),
            view_storm_count: 3,
        }
    }
}

/// A typed event on the sim timeline, emitted by the watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// A logical channel (keyed by `(component, key)`) accepted new
    /// work but recorded no progress — no window movement and no
    /// delivery at any endpoint — for `stall_after`.
    IrmcWindowStall {
        /// When the stall deadline expired (first unserved
        /// transmission plus `stall_after`).
        at: SimTime,
        /// Endpoint with the deepest outstanding-work gauge at the
        /// stall (ties broken toward the lowest node id).
        node: NodeId,
        /// Channel family (e.g. `"commit"`).
        component: &'static str,
        /// Channel index within the family (e.g. the execution group).
        key: u32,
    },
    /// A previously stalled channel recorded progress again.
    IrmcWindowRecover {
        /// When the progress mark arrived.
        at: SimTime,
        /// Endpoint that reported the progress.
        node: NodeId,
        /// Channel family.
        component: &'static str,
        /// Channel index within the family.
        key: u32,
    },
    /// A consensus replica entered a new view.
    ViewChange {
        /// When the view change was observed.
        at: SimTime,
        /// The replica's node.
        node: NodeId,
        /// The new view number.
        view: u64,
    },
    /// At least `view_storm_count` view changes within
    /// `view_storm_window` on one node.
    ViewChangeStorm {
        /// When the threshold was crossed.
        at: SimTime,
        /// The replica's node.
        node: NodeId,
        /// View changes inside the window at the crossing.
        count: u32,
    },
}

impl HealthEvent {
    /// Event time.
    pub fn at(&self) -> SimTime {
        match *self {
            HealthEvent::IrmcWindowStall { at, .. }
            | HealthEvent::IrmcWindowRecover { at, .. }
            | HealthEvent::ViewChange { at, .. }
            | HealthEvent::ViewChangeStorm { at, .. } => at,
        }
    }

    /// Stable lowercase tag for rendering and digests.
    pub fn tag(&self) -> &'static str {
        match self {
            HealthEvent::IrmcWindowStall { .. } => "irmc_window_stall",
            HealthEvent::IrmcWindowRecover { .. } => "irmc_window_recover",
            HealthEvent::ViewChange { .. } => "view_change",
            HealthEvent::ViewChangeStorm { .. } => "view_change_storm",
        }
    }
}

/// Per-endpoint backpressure gauge, keyed `(component, key, node)`.
#[derive(Debug, Default)]
struct ChanState {
    pending: u64,
    high_water: u64,
}

/// Stall-detection state of one *logical* channel, keyed
/// `(component, key)`. A channel spans nodes — senders report
/// outstanding work, receivers (and sender window movements) report
/// progress — and only the global observer can join the two: a sender
/// alone cannot tell "the receiver is slow by design" (windows move in
/// checkpoint quanta) from "the receiver is unreachable".
#[derive(Debug, Default)]
struct LinkState {
    /// Earliest gauge growth (new transmission) not yet followed by a
    /// progress mark. `None` while every transmission has a delivery
    /// or window movement behind it — even if content is retained
    /// unacked, that is batching, not a stall.
    owed_since: Option<SimTime>,
    /// Outstanding work summed across the link's reporting endpoints.
    pending: u64,
    stalled: bool,
}

#[derive(Debug, Default)]
struct ViewState {
    last_view: u64,
    recent: Vec<SimTime>,
    storm_reported: bool,
}

/// The streaming watchdog state. Owned by an enabled [`crate::Recorder`].
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    chans: BTreeMap<(&'static str, u32, u32), ChanState>,
    links: BTreeMap<(&'static str, u32), LinkState>,
    views: BTreeMap<u32, ViewState>,
    events: Vec<HealthEvent>,
    windows: BTreeMap<u64, Histogram>,
}

impl HealthMonitor {
    /// A fresh monitor with thresholds from `cfg`.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            chans: BTreeMap::new(),
            links: BTreeMap::new(),
            views: BTreeMap::new(),
            events: Vec::new(),
            windows: BTreeMap::new(),
        }
    }

    /// Flags links whose stall deadline expired before `now`. Called
    /// from every feed, so detection latency is bounded by the inter-
    /// arrival time of *any* recorded activity, not by a dedicated timer.
    pub fn scan(&mut self, now: SimTime) {
        for (&(component, key), st) in self.links.iter_mut() {
            if st.stalled {
                continue;
            }
            let Some(since) = st.owed_since else { continue };
            let deadline = since + self.cfg.stall_after;
            if deadline <= now {
                st.stalled = true;
                // Blame the endpoint with the deepest backlog
                // (ties: lowest node id, for determinism).
                let node = self
                    .chans
                    .range((component, key, 0)..=(component, key, u32::MAX))
                    .max_by_key(|(&(_, _, n), s)| (s.pending, std::cmp::Reverse(n)))
                    .map_or(0, |(&(_, _, n), _)| n);
                self.events.push(HealthEvent::IrmcWindowStall {
                    at: deadline,
                    node: NodeId(node),
                    component,
                    key,
                });
            }
        }
    }

    /// Feeds a progress mark for a link: a sender's window moved, or a
    /// receiver delivered. Any endpoint's progress disarms the link's
    /// stall clock — the ack window legitimately sits still between
    /// checkpoints, so deliveries are what distinguish "batching toward
    /// the next checkpoint" from "partitioned".
    pub fn mark(&mut self, at: SimTime, node: NodeId, component: &'static str, key: u32) {
        self.scan(at);
        let st = self.links.entry((component, key)).or_default();
        st.owed_since = None;
        if st.stalled {
            st.stalled = false;
            self.events.push(HealthEvent::IrmcWindowRecover { at, node, component, key });
        }
    }

    /// Feeds one endpoint's outstanding-work gauge. A gauge *increase*
    /// is a new transmission: it arms the link's stall clock, which
    /// only the next progress mark (or a drain to zero) disarms. A
    /// gauge that merely stays positive — retained content waiting for
    /// a checkpoint ack, with nothing newly in flight — never stalls.
    pub fn pending(
        &mut self,
        at: SimTime,
        node: NodeId,
        component: &'static str,
        key: u32,
        pending: u64,
    ) {
        self.scan(at);
        let st = self.chans.entry((component, key, node.0)).or_default();
        let old = st.pending;
        st.pending = pending;
        st.high_water = st.high_water.max(pending);
        let link = self.links.entry((component, key)).or_default();
        link.pending = (link.pending - old) + pending;
        if pending > old && link.owed_since.is_none() {
            link.owed_since = Some(at);
        }
        if link.pending == 0 {
            link.owed_since = None;
            if link.stalled {
                link.stalled = false;
                self.events.push(HealthEvent::IrmcWindowRecover { at, node, component, key });
            }
        }
    }

    /// Feeds a consensus view observation for a replica.
    pub fn view(&mut self, at: SimTime, node: NodeId, view: u64) {
        self.scan(at);
        let st = self.views.entry(node.0).or_default();
        if view <= st.last_view && !(view == 0 && st.recent.is_empty()) {
            return;
        }
        st.last_view = view;
        if view == 0 {
            return;
        }
        self.events.push(HealthEvent::ViewChange { at, node, view });
        st.recent.push(at);
        let cutoff = at.saturating_sub(self.cfg.view_storm_window);
        st.recent.retain(|&t| t >= cutoff);
        let count = st.recent.len() as u32;
        if count >= self.cfg.view_storm_count {
            if !st.storm_reported {
                st.storm_reported = true;
                self.events.push(HealthEvent::ViewChangeStorm { at, node, count });
            }
        } else {
            st.storm_reported = false;
        }
    }

    /// Feeds one completed-request latency into the rolling windows.
    pub fn latency(&mut self, at: SimTime, latency: SimTime) {
        self.scan(at);
        let w = self.cfg.window.as_nanos().max(1);
        let idx = at.as_nanos() / w;
        self.windows.entry(idx).or_default().record(latency.as_nanos());
    }

    /// Events emitted so far, sorted by event time (stable within a tie).
    pub fn events(&self) -> Vec<HealthEvent> {
        let mut out = self.events.clone();
        out.sort_by_key(|e| e.at());
        out
    }

    /// Rolling latency windows as `(window_start, histogram)` pairs.
    pub fn windows(&self) -> Vec<(SimTime, Histogram)> {
        let w = self.cfg.window.as_nanos().max(1);
        self.windows.iter().map(|(&idx, h)| (SimTime::from_nanos(idx * w), h.clone())).collect()
    }

    /// Backpressure gauges as `((node, component, key), (current, high_water))`.
    pub fn gauges(&self) -> BTreeMap<(u32, &'static str, u32), (u64, u64)> {
        self.chans
            .iter()
            .map(|(&(component, key, node), st)| {
                ((node, component, key), (st.pending, st.high_water))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn healthy_channel_never_stalls() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.pending(ms(0), NodeId(1), "commit", 0, 3);
        for t in (100..5000).step_by(100) {
            m.mark(ms(t), NodeId(1), "commit", 0);
        }
        m.scan(ms(5500));
        assert!(m.events().is_empty(), "marks every 100ms must never stall");
        // Once the channel drains, silence is healthy for any duration.
        m.pending(ms(5600), NodeId(1), "commit", 0, 0);
        m.scan(ms(60_000));
        assert!(m.events().is_empty());
    }

    #[test]
    fn stall_is_stamped_at_the_deadline_and_recovers() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.pending(ms(1000), NodeId(1), "commit", 2, 4);
        // No progress; unrelated activity at 3.7s triggers the lazy scan.
        m.latency(ms(3700), ms(5));
        let evs = m.events();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            HealthEvent::IrmcWindowStall { at, node, component, key } => {
                assert_eq!(at, ms(2000), "stamped at transmission + stall_after, not scan time");
                assert_eq!((node, component, key), (NodeId(1), "commit", 2));
            }
            ref other => panic!("expected stall, got {other:?}"),
        }
        // A later mark recovers; no duplicate stall in between.
        m.latency(ms(4000), ms(5));
        m.mark(ms(4500), NodeId(1), "commit", 2);
        let evs = m.events();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[1], HealthEvent::IrmcWindowRecover { at, .. } if at == ms(4500)));
    }

    #[test]
    fn drained_channel_does_not_stall() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.pending(ms(0), NodeId(1), "commit", 0, 2);
        m.mark(ms(100), NodeId(1), "commit", 0);
        m.pending(ms(150), NodeId(1), "commit", 0, 0);
        m.scan(ms(10_000));
        assert!(m.events().is_empty(), "nothing outstanding => no stall");
        // The stall clock restarts when work appears again.
        m.pending(ms(20_000), NodeId(1), "commit", 0, 1);
        m.scan(ms(20_500));
        assert!(m.events().is_empty());
        m.scan(ms(21_100));
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn receiver_deliveries_keep_a_checkpoint_paced_link_healthy() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        // Sender (node 1) transmits every 100 ms and retains the cast
        // content across the whole span — its ack window only moves at
        // checkpoints, several seconds apart. Receiver (node 9)
        // delivers every 100 ms.
        let mut backlog = 16;
        m.pending(ms(0), NodeId(1), "commit", 0, backlog);
        for t in (100..5000).step_by(100) {
            backlog += 1;
            m.pending(ms(t), NodeId(1), "commit", 0, backlog);
            m.mark(ms(t), NodeId(9), "commit", 0);
        }
        m.scan(ms(5500));
        assert!(
            m.events().is_empty(),
            "deliveries are progress: a slow ack window alone must not stall the link"
        );
        // Retention with nothing newly in flight is batching, not a
        // stall — a quiet sender may sit on unacked content forever.
        m.scan(ms(60_000));
        assert!(m.events().is_empty());
        // A fresh transmission with no delivery behind it is the real
        // signal: the stall names the endpoint holding the backlog,
        // not the receiver.
        m.pending(ms(60_100), NodeId(1), "commit", 0, backlog + 1);
        m.latency(ms(62_000), ms(5));
        let evs = m.events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0],
            HealthEvent::IrmcWindowStall { at, node, component: "commit", key: 0 }
                if at == ms(61_100) && node == NodeId(1)
        ));
    }

    #[test]
    fn view_changes_and_storm_threshold() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.view(ms(0), NodeId(7), 0); // initial view: not a change
        m.view(ms(1000), NodeId(7), 1);
        m.view(ms(1000), NodeId(7), 1); // duplicate: ignored
        m.view(ms(2000), NodeId(7), 2);
        assert_eq!(m.events().len(), 2);
        m.view(ms(3000), NodeId(7), 3);
        let evs = m.events();
        assert_eq!(evs.len(), 4, "third change within 10s raises a storm");
        assert!(matches!(evs[3], HealthEvent::ViewChangeStorm { count: 3, .. }));
    }

    #[test]
    fn latency_windows_bucket_by_time() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.latency(ms(100), ms(5));
        m.latency(ms(900), ms(7));
        m.latency(ms(1500), ms(50));
        let w = m.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, SimTime::ZERO);
        assert_eq!(w[0].1.count(), 2);
        assert_eq!(w[1].1.count(), 1);
        assert!(w[1].1.quantile(0.5) >= ms(50).as_nanos());
    }

    #[test]
    fn gauges_track_high_water() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.pending(ms(0), NodeId(3), "commit", 1, 5);
        m.pending(ms(10), NodeId(3), "commit", 1, 12);
        m.pending(ms(20), NodeId(3), "commit", 1, 2);
        let g = m.gauges();
        assert_eq!(g[&(3, "commit", 1)], (2, 12));
    }
}
