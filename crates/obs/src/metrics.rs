//! Log-bucketed histograms for the per-node metrics registry.
//!
//! The bucketing follows the HdrHistogram idea specialized to a fixed
//! precision: values below [`SUB`] get exact unit buckets; above that,
//! each power-of-two range is split into [`SUB`] sub-buckets, so the
//! reported value for any recorded sample is at most a factor
//! `1 + 1/SUB` above the true value (relative error ≤ 1/32 ≈ 3.1%),
//! which is plenty for p99.9 latency reporting.

/// log2 of the sub-bucket count.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range (and the exact-bucket cutoff).
const SUB: u64 = 1 << SUB_BITS;

/// Index of the bucket `v` falls into.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    let shift = e - SUB_BITS;
    let mantissa = (v >> shift) & (SUB - 1);
    (((e - SUB_BITS + 1) as u64 * SUB) + mantissa) as usize
}

/// Largest value mapping into bucket `i` (the value reported for it).
fn upper_of(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let block = i / SUB;
    let m = i % SUB;
    let shift = (block - 1) as u32;
    ((SUB + m) << shift) + (1u64 << shift) - 1
}

/// A deterministic log-bucketed histogram of `u64` values.
///
/// Quantiles are reported as the upper bound of the bucket holding the
/// rank, so a reported quantile `r` for a true sample `v` satisfies
/// `v <= r <= v * (1 + 1/32) ` (exact below 32).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (exact), or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the holding bucket's upper
    /// bound, clamped to the exact max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample to report, 1-based; ceil so q=1.0 is the max.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Visits non-empty buckets as `(upper_bound, count)` in value order.
    pub fn for_each_bucket(&self, mut f: impl FnMut(u64, u64)) {
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                f(upper_of(i), c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(upper_of(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's upper bound maps back into that bucket, and the
        // next value up maps into the next bucket. Bucket 1919 is the
        // last one reachable from a u64 (it holds u64::MAX), so stop
        // short of it to keep `hi + 1` representable.
        for i in 0..1919usize {
            let hi = upper_of(i);
            assert_eq!(bucket_of(hi), i, "upper_of({i}) = {hi}");
            assert_eq!(bucket_of(hi + 1), i + 1, "upper bound {hi} must end bucket {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Property: for a spread of values, the bucket upper bound
        // over-reports by at most 1/SUB.
        let mut v = 1u64;
        while v < 1 << 50 {
            for off in [0u64, 1, v / 3, v / 2] {
                let x = v + off;
                let rep = upper_of(bucket_of(x));
                assert!(rep >= x, "reported {rep} < recorded {x}");
                let err = (rep - x) as f64 / x as f64;
                assert!(err <= 1.0 / SUB as f64, "error {err} too big at {x}");
            }
            v = v.wrapping_mul(3) + 7;
        }
    }

    #[test]
    fn quantiles_hit_bucket_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; reported value within the error bound.
        let p50 = h.quantile(0.50);
        assert!((500..=516).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile(0.999);
        assert!((999..=1000).contains(&p999), "p99.9 = {p999}");
        // Quantile never exceeds the true max even at q=1.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn quantile_of_singleton_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(77);
        for q in [0.0, 0.5, 0.999, 1.0] {
            let r = h.quantile(q);
            assert!((77..=77 + 77 / SUB).contains(&r), "q={q} r={r}");
        }
        // Reported quantile is clamped to the exact max.
        assert_eq!(h.quantile(1.0), 77);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 99, 1_000_000, 17, 40] {
            a.record(v);
            both.record(v);
        }
        for v in [8u64, 2_000_000, 5] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.quantile(0.5), both.quantile(0.5));
        assert_eq!(a.quantile(0.999), both.quantile(0.999));
        assert!((a.mean() - both.mean()).abs() < 1e-9);
    }

    #[test]
    fn recorded_quantile_within_error_bound_property() {
        // For a deterministic pseudo-random stream, check every decile
        // against the exact sorted answer.
        let mut vals = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            vals.push(x % 10_000_000);
        }
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: got {got} < exact {exact}");
            let err = (got - exact) as f64 / exact.max(1) as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-12, "q={q}: err {err}");
        }
    }
}
