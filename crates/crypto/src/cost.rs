//! CPU cost model for cryptographic operations.
//!
//! The paper's prototype runs on `t3.small` EC2 instances (2 vCPUs) with
//! 1024-bit RSA signatures and HMAC-SHA-256 MACs (§5). In the simulation,
//! protocol handlers charge the costs below to their node's (single-server)
//! CPU; these charges — not the real host's clock — determine processing
//! delay, saturation throughput (Fig 9b), and CPU utilization (Fig 9c).
//!
//! Defaults are calibrated to published OpenSSL/JCE numbers for small cloud
//! VMs of the 2020 era:
//!
//! * RSA-1024 sign ≈ 600 µs, verify ≈ 35 µs,
//! * HMAC-SHA-256 ≈ 1.5 µs + ~3 ns/byte,
//! * threshold-RSA share sign ≈ 1.3 ms, combine ≈ 650 µs (Shoup's scheme is
//!   several times costlier than plain RSA — the reason Steward's local
//!   protocol is CPU-heavy),
//! * a small per-message dispatch overhead.

use serde::{Deserialize, Serialize};
use spider_types::SimTime;

/// Per-operation CPU costs, charged to the simulated node.
///
/// # Examples
///
/// ```
/// use spider_crypto::CostModel;
///
/// let cost = CostModel::default();
/// assert!(cost.rsa_sign() > cost.rsa_verify());
/// let free = CostModel::zero(); // pure-logic tests
/// assert_eq!(free.rsa_sign(), spider_types::SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// RSA-1024 signature generation.
    pub rsa_sign_ns: u64,
    /// RSA-1024 signature verification.
    pub rsa_verify_ns: u64,
    /// Fixed cost of one HMAC computation (dominated by the keyed
    /// setup/finalization, not the data).
    pub hmac_base_ns: u64,
    /// Fixed cost of one *unkeyed* hash compression (SHA-256 block). An
    /// order of magnitude below `hmac_base_ns`: a digest pays no key
    /// schedule and no inner/outer re-hash.
    pub hash_base_ns: u64,
    /// Per-byte cost of hashing message payloads.
    pub hash_per_byte_ns: u64,
    /// Threshold-RSA share generation (Shoup).
    pub threshold_share_ns: u64,
    /// Combining f+1 threshold shares.
    pub threshold_combine_ns: u64,
    /// Verifying a combined threshold signature.
    pub threshold_verify_ns: u64,
    /// Fixed per-message dispatch overhead (deserialize, demux, bookkeep).
    pub msg_overhead_ns: u64,
    /// Cost of executing one application request (key-value store get/put).
    pub app_execute_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rsa_sign_ns: 600_000,
            rsa_verify_ns: 35_000,
            hmac_base_ns: 1_500,
            hash_base_ns: 150,
            hash_per_byte_ns: 3,
            threshold_share_ns: 1_300_000,
            threshold_combine_ns: 650_000,
            threshold_verify_ns: 35_000,
            msg_overhead_ns: 8_000,
            app_execute_ns: 5_000,
        }
    }
}

impl CostModel {
    /// A cost model where everything is free. Useful for pure-logic tests
    /// where simulated CPU time would only obscure the schedule.
    pub fn zero() -> Self {
        CostModel {
            rsa_sign_ns: 0,
            rsa_verify_ns: 0,
            hmac_base_ns: 0,
            hash_base_ns: 0,
            hash_per_byte_ns: 0,
            threshold_share_ns: 0,
            threshold_combine_ns: 0,
            threshold_verify_ns: 0,
            msg_overhead_ns: 0,
            app_execute_ns: 0,
        }
    }

    /// Cost of one RSA-1024 signature.
    pub fn rsa_sign(&self) -> SimTime {
        SimTime::from_nanos(self.rsa_sign_ns)
    }

    /// Cost of one RSA-1024 verification.
    pub fn rsa_verify(&self) -> SimTime {
        SimTime::from_nanos(self.rsa_verify_ns)
    }

    /// Cost of MAC/digest computation over `bytes` payload bytes.
    pub fn hmac(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos(self.hmac_base_ns + self.hash_per_byte_ns * bytes as u64)
    }

    /// Cost of one unkeyed hash over `bytes` (plain digest — no HMAC key
    /// schedule).
    pub fn hash(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos(self.hash_base_ns + self.hash_per_byte_ns * bytes as u64)
    }

    /// Cost of building (or recomputing) a Merkle tree over `leaves`
    /// 32-byte slot digests: `leaves` domain-separated leaf wraps plus
    /// `leaves - 1` 64-byte inner combines (see [`crate::merkle`]). Tree
    /// nodes are plain hash compressions, not keyed MACs — billing each
    /// of the `2·leaves - 1` ops an HMAC key-schedule base would
    /// overcharge a 32-leaf tree by ~85 µs and bury the real costs the
    /// commit-channel benchmarks measure (payload hashing and signing).
    pub fn merkle(&self, leaves: usize) -> SimTime {
        if leaves == 0 {
            return SimTime::ZERO;
        }
        let wraps = self.hash(32) * leaves as u64;
        let combines = self.hash(64) * (leaves as u64 - 1);
        wraps + combines
    }

    /// Cost of verifying one digest-only range vouch (IRMC-RC dedup): a
    /// MAC check over the fixed-size statement binding subchannel (8),
    /// first position (8), count (4), and Merkle root (32) — 52 bytes.
    /// Deliberately MAC-class, not RSA-class: a vouch is consumed only by
    /// the receiving endpoint and never forwarded as proof to a third
    /// party, so the authenticated point-to-point link suffices.
    pub fn vouch_verify(&self) -> SimTime {
        self.hmac(52)
    }

    /// Cost of producing a MAC vector for `receivers` receivers.
    pub fn mac_vector(&self, receivers: usize, bytes: usize) -> SimTime {
        // Hash the payload once, then one cheap keyed finalization per
        // receiver.
        self.hmac(bytes) + SimTime::from_nanos(self.hmac_base_ns * receivers as u64)
    }

    /// Cost of one threshold signature share.
    pub fn threshold_share(&self) -> SimTime {
        SimTime::from_nanos(self.threshold_share_ns)
    }

    /// Cost of combining threshold shares.
    pub fn threshold_combine(&self) -> SimTime {
        SimTime::from_nanos(self.threshold_combine_ns)
    }

    /// Cost of verifying a combined threshold signature.
    pub fn threshold_verify(&self) -> SimTime {
        SimTime::from_nanos(self.threshold_verify_ns)
    }

    /// Fixed per-message processing overhead.
    pub fn msg_overhead(&self) -> SimTime {
        SimTime::from_nanos(self.msg_overhead_ns)
    }

    /// Cost of executing one application request.
    pub fn app_execute(&self) -> SimTime {
        SimTime::from_nanos(self.app_execute_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_rsa_asymmetry() {
        let c = CostModel::default();
        assert!(c.rsa_sign() > c.rsa_verify() * 10, "sign ≫ verify for RSA");
        assert!(c.threshold_share() > c.rsa_sign(), "Shoup shares cost more");
    }

    #[test]
    fn hmac_scales_with_payload() {
        let c = CostModel::default();
        assert!(c.hmac(16_384) > c.hmac(256));
        let delta = c.hmac(1_000) - c.hmac(0);
        assert_eq!(delta, SimTime::from_nanos(c.hash_per_byte_ns * 1_000));
    }

    #[test]
    fn mac_vector_grows_per_receiver() {
        let c = CostModel::default();
        assert!(c.mac_vector(4, 100) > c.mac_vector(1, 100));
    }

    #[test]
    fn merkle_amortizes_below_per_slot_signing() {
        let c = CostModel::default();
        assert_eq!(c.merkle(0), SimTime::ZERO);
        assert_eq!(c.merkle(1), c.hash(32));
        assert!(c.merkle(64) > c.merkle(8), "cost grows with the range");
        // Tree nodes are unkeyed compressions: far below HMAC pricing.
        assert!(c.merkle(32) * 4 < c.hmac(32) * 63, "no HMAC key-schedule base per node");
        // The whole point: hashing a 64-slot tree plus ONE signature is far
        // cheaper than 64 signatures.
        assert!(c.merkle(64) + c.rsa_sign() < c.rsa_sign() * 8);
    }

    #[test]
    fn vouch_verify_is_mac_class() {
        let c = CostModel::default();
        assert_eq!(c.vouch_verify(), c.hmac(52));
        // The dedup premise: confirming a range by digest must be orders
        // of magnitude cheaper than verifying a signature over it.
        assert!(c.vouch_verify() * 20 < c.rsa_verify());
    }

    #[test]
    fn zero_model_is_free() {
        let c = CostModel::zero();
        assert_eq!(c.rsa_sign(), SimTime::ZERO);
        assert_eq!(c.hmac(10_000), SimTime::ZERO);
        assert_eq!(c.mac_vector(8, 10_000), SimTime::ZERO);
        assert_eq!(c.threshold_combine(), SimTime::ZERO);
    }
}
