//! Message digests over semantic content.
//!
//! Protocol messages in this workspace are not serialized (the simulator
//! models their wire size analytically), so signatures and MACs are
//! computed over a [`Digest`] derived from the message's semantic fields
//! via a [`DigestBuilder`]. Two messages with the same fields produce the
//! same digest; any field difference changes it.

use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Types whose content can be summarized as a [`Digest`].
///
/// Protocol payloads implement this so channels and consensus can vote on
/// and authenticate content without serializing it.
pub trait Digestible {
    /// Content digest. Equal values must produce equal digests; any
    /// semantic difference must change the digest.
    fn digest(&self) -> Digest;
}

/// A 32-byte SHA-256 digest identifying message content.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest; used as a placeholder for "no content".
    pub const ZERO: Digest = Digest([0; 32]);

    /// Hashes a byte string.
    pub fn of_bytes(data: &[u8]) -> Digest {
        Digest(Sha256::digest(data))
    }

    /// Starts building a digest over structured fields.
    pub fn builder() -> DigestBuilder {
        DigestBuilder::new()
    }

    /// First eight bytes as a u64, handy for compact logging.
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({:016x}…)", self.short())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.short())
    }
}

/// Incrementally hashes length-delimited fields into a [`Digest`].
///
/// Fields are length-prefixed so that `("ab", "c")` and `("a", "bc")`
/// produce different digests.
///
/// # Examples
///
/// ```
/// use spider_crypto::Digest;
///
/// let d1 = Digest::builder().u64(1).bytes(b"op").finish();
/// let d2 = Digest::builder().u64(1).bytes(b"op").finish();
/// let d3 = Digest::builder().u64(2).bytes(b"op").finish();
/// assert_eq!(d1, d2);
/// assert_ne!(d1, d3);
/// ```
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    hasher: Sha256,
}

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DigestBuilder { hasher: Sha256::new() }
    }

    /// Appends a length-prefixed byte field.
    #[must_use]
    pub fn bytes(mut self, data: &[u8]) -> Self {
        self.hasher.update(&(data.len() as u64).to_be_bytes());
        self.hasher.update(data);
        self
    }

    /// Appends a u64 field.
    #[must_use]
    pub fn u64(mut self, v: u64) -> Self {
        self.hasher.update(&[8]);
        self.hasher.update(&v.to_be_bytes());
        self
    }

    /// Appends a u32 field.
    #[must_use]
    pub fn u32(mut self, v: u32) -> Self {
        self.hasher.update(&[4]);
        self.hasher.update(&v.to_be_bytes());
        self
    }

    /// Appends another digest as a field.
    #[must_use]
    pub fn digest(self, d: &Digest) -> Self {
        self.bytes(&d.0)
    }

    /// Appends a UTF-8 string field.
    #[must_use]
    pub fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes())
    }

    /// Finishes and returns the digest.
    pub fn finish(self) -> Digest {
        Digest(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries_matter() {
        let a = Digest::builder().bytes(b"ab").bytes(b"c").finish();
        let b = Digest::builder().bytes(b"a").bytes(b"bc").finish();
        assert_ne!(a, b, "length prefixes must separate fields");
    }

    #[test]
    fn deterministic_across_builders() {
        let mk = || Digest::builder().u64(7).u32(3).str("x").finish();
        assert_eq!(mk(), mk());
    }

    #[test]
    fn nested_digest_changes_output() {
        let inner1 = Digest::of_bytes(b"1");
        let inner2 = Digest::of_bytes(b"2");
        let a = Digest::builder().digest(&inner1).finish();
        let b = Digest::builder().digest(&inner2).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn short_is_prefix() {
        let d = Digest::of_bytes(b"abc");
        let expected = u64::from_be_bytes(d.0[..8].try_into().unwrap());
        assert_eq!(d.short(), expected);
        assert_eq!(format!("{d}"), format!("{expected:016x}"));
    }
}
