//! Identity keys, signatures, and pairwise MACs.
//!
//! A [`Keyring`] derives every identity's secret from a single master seed,
//! so any component holding the keyring can sign for its own identity and
//! verify anyone else's tags — exactly the informational setup a simulated
//! PKI provides. Signatures stand in for the paper's 1024-bit RSA
//! signatures; MACs stand in for HMAC-SHA-256 authenticators. Byte sizes
//! and CPU costs of the real primitives are modeled in
//! [`crate::cost::CostModel`].

use crate::digest::Digest;
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Identity of a key owner (replica or client). Conventionally equals the
/// owner's `NodeId`/`ClientId` value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct KeyId(pub u32);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A simulation-grade digital signature over a [`Digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Claimed signer.
    pub signer: KeyId,
    tag: [u8; 32],
}

/// A pairwise message authentication code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mac {
    tag: [u8; 32],
}

/// Derives, signs with, and verifies per-identity keys.
#[derive(Debug, Clone)]
pub struct Keyring {
    master: [u8; 32],
}

impl Keyring {
    /// Creates a keyring from a master seed. All parties of one simulation
    /// share the seed (the simulated PKI).
    pub fn new(seed: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"spider-keyring-master");
        h.update(&seed.to_be_bytes());
        Keyring { master: h.finalize() }
    }

    /// The signing secret of identity `id`.
    fn secret(&self, id: KeyId) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.master);
        h.update(b"sig");
        h.update(&id.0.to_be_bytes());
        h.finalize()
    }

    /// The symmetric secret shared by the (unordered) pair `{a, b}`.
    fn pair_secret(&self, a: KeyId, b: KeyId) -> [u8; 32] {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let mut h = Sha256::new();
        h.update(&self.master);
        h.update(b"mac");
        h.update(&lo.0.to_be_bytes());
        h.update(&hi.0.to_be_bytes());
        h.finalize()
    }

    /// Signs `digest` as identity `signer`.
    pub fn sign(&self, signer: KeyId, digest: &Digest) -> Signature {
        Signature { signer, tag: hmac_sha256(&self.secret(signer), &digest.0) }
    }

    /// Verifies that `sig` is `signer`'s signature over `digest`.
    pub fn verify(&self, signer: KeyId, digest: &Digest, sig: &Signature) -> bool {
        sig.signer == signer && hmac_sha256(&self.secret(signer), &digest.0) == sig.tag
    }

    /// Computes the MAC authenticating `digest` from `from` to `to`.
    pub fn mac(&self, from: KeyId, to: KeyId, digest: &Digest) -> Mac {
        Mac { tag: hmac_sha256(&self.pair_secret(from, to), &digest.0) }
    }

    /// Verifies a pairwise MAC.
    pub fn verify_mac(&self, from: KeyId, to: KeyId, digest: &Digest, mac: &Mac) -> bool {
        hmac_sha256(&self.pair_secret(from, to), &digest.0) == mac.tag
    }

    /// Computes a PBFT-style MAC vector authenticating `digest` from
    /// `from` to every receiver in `to`.
    pub fn mac_vector(&self, from: KeyId, to: &[KeyId], digest: &Digest) -> Vec<(KeyId, Mac)> {
        to.iter().map(|r| (*r, self.mac(from, *r, digest))).collect()
    }

    /// Verifies the entry for `me` in a MAC vector produced by `from`.
    pub fn verify_mac_vector(
        &self,
        from: KeyId,
        me: KeyId,
        digest: &Digest,
        vector: &[(KeyId, Mac)],
    ) -> bool {
        vector
            .iter()
            .find(|(id, _)| *id == me)
            .is_some_and(|(_, mac)| self.verify_mac(from, me, digest, mac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Keyring {
        Keyring::new(7)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let r = ring();
        let d = Digest::of_bytes(b"msg");
        let sig = r.sign(KeyId(1), &d);
        assert!(r.verify(KeyId(1), &d, &sig));
    }

    #[test]
    fn verify_rejects_wrong_signer_or_content() {
        let r = ring();
        let d = Digest::of_bytes(b"msg");
        let sig = r.sign(KeyId(1), &d);
        assert!(!r.verify(KeyId(2), &d, &sig), "claimed wrong signer");
        let d2 = Digest::of_bytes(b"other");
        assert!(!r.verify(KeyId(1), &d2, &sig), "content mismatch");
    }

    #[test]
    fn different_seeds_are_different_pkis() {
        let a = Keyring::new(1);
        let b = Keyring::new(2);
        let d = Digest::of_bytes(b"msg");
        let sig = a.sign(KeyId(1), &d);
        assert!(!b.verify(KeyId(1), &d, &sig));
    }

    #[test]
    fn mac_is_symmetric_pairwise() {
        let r = ring();
        let d = Digest::of_bytes(b"m");
        let mac = r.mac(KeyId(3), KeyId(9), &d);
        // Receiver verifies with the same unordered pair.
        assert!(r.verify_mac(KeyId(3), KeyId(9), &d, &mac));
        assert!(r.verify_mac(KeyId(9), KeyId(3), &d, &mac), "pair key is unordered");
        assert!(!r.verify_mac(KeyId(3), KeyId(8), &d, &mac));
    }

    #[test]
    fn mac_vector_covers_each_receiver() {
        let r = ring();
        let d = Digest::of_bytes(b"m");
        let receivers = [KeyId(10), KeyId(11), KeyId(12)];
        let v = r.mac_vector(KeyId(1), &receivers, &d);
        assert_eq!(v.len(), 3);
        for me in receivers {
            assert!(r.verify_mac_vector(KeyId(1), me, &d, &v));
        }
        assert!(!r.verify_mac_vector(KeyId(1), KeyId(13), &d, &v), "not addressed");
        let d2 = Digest::of_bytes(b"m2");
        assert!(!r.verify_mac_vector(KeyId(1), KeyId(10), &d2, &v));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A signature verifies only under the exact (signer, digest) it
        /// was produced for.
        #[test]
        fn signatures_bind_signer_and_content(
            seed in any::<u64>(),
            signer in 0u32..1000,
            other in 0u32..1000,
            data in prop::collection::vec(any::<u8>(), 0..64),
            tweak in prop::collection::vec(any::<u8>(), 1..64),
        ) {
            let ring = Keyring::new(seed);
            let d = Digest::of_bytes(&data);
            let sig = ring.sign(KeyId(signer), &d);
            prop_assert!(ring.verify(KeyId(signer), &d, &sig));
            if other != signer {
                prop_assert!(!ring.verify(KeyId(other), &d, &sig));
            }
            let mut changed = data.clone();
            changed.extend_from_slice(&tweak);
            let d2 = Digest::of_bytes(&changed);
            prop_assert!(!ring.verify(KeyId(signer), &d2, &sig));
        }

        /// MAC verification is symmetric in the pair and rejects third
        /// parties' pair keys.
        #[test]
        fn macs_bind_the_pair(
            seed in any::<u64>(),
            a in 0u32..100,
            b in 0u32..100,
            c in 0u32..100,
            data in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            let ring = Keyring::new(seed);
            let d = Digest::of_bytes(&data);
            let mac = ring.mac(KeyId(a), KeyId(b), &d);
            prop_assert!(ring.verify_mac(KeyId(a), KeyId(b), &d, &mac));
            prop_assert!(ring.verify_mac(KeyId(b), KeyId(a), &d, &mac));
            if c != a && c != b {
                prop_assert!(!ring.verify_mac(KeyId(a), KeyId(c), &d, &mac));
            }
        }
    }
}
