//! Threshold signatures (Shoup-style interface, simulation-grade).
//!
//! The Steward baseline (the paper's HFT system) requires each site to
//! speak with one voice: `t = f+1` replicas of a site contribute signature
//! shares which any replica can combine into a single site signature. This
//! module reproduces that interface — [`ThresholdKeyring::share`],
//! [`ThresholdKeyring::combine`], [`ThresholdKeyring::verify`] — with
//! secrets derived from a master seed, plus the RSA-1024 cost model hooks
//! in [`crate::cost::CostModel`] (threshold operations are what made
//! Steward's local protocol expensive).

use crate::digest::Digest;
use crate::hmac::hmac_sha256;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Identity of a share-holding group (e.g. one Steward site).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ThresholdGroupId(pub u32);

/// A signature share produced by one group member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SigShare {
    /// The group whose key is being used.
    pub group: ThresholdGroupId,
    /// Index of the member that produced this share.
    pub member: u32,
    tag: [u8; 32],
}

/// A combined threshold signature: one tag speaking for the whole group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThresholdSig {
    /// The group this signature speaks for.
    pub group: ThresholdGroupId,
    tag: [u8; 32],
}

/// Derives group/member secrets, produces shares, combines and verifies.
#[derive(Debug, Clone)]
pub struct ThresholdKeyring {
    master: [u8; 32],
    /// Number of shares required to combine (`f + 1` in Steward).
    threshold: usize,
}

impl ThresholdKeyring {
    /// Creates a threshold keyring with combine threshold `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(seed: u64, threshold: usize) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        let mut h = Sha256::new();
        h.update(b"spider-threshold-master");
        h.update(&seed.to_be_bytes());
        ThresholdKeyring { master: h.finalize(), threshold }
    }

    /// The combine threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn group_secret(&self, group: ThresholdGroupId) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.master);
        h.update(b"group");
        h.update(&group.0.to_be_bytes());
        h.finalize()
    }

    fn member_secret(&self, group: ThresholdGroupId, member: u32) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.group_secret(group));
        h.update(b"member");
        h.update(&member.to_be_bytes());
        h.finalize()
    }

    /// Member `member` of `group` produces its share over `digest`.
    pub fn share(&self, group: ThresholdGroupId, member: u32, digest: &Digest) -> SigShare {
        SigShare { group, member, tag: hmac_sha256(&self.member_secret(group, member), &digest.0) }
    }

    /// Checks an individual share (collectors do this before combining).
    pub fn verify_share(&self, digest: &Digest, share: &SigShare) -> bool {
        hmac_sha256(&self.member_secret(share.group, share.member), &digest.0) == share.tag
    }

    /// Combines shares into a group signature.
    ///
    /// Returns `None` unless at least `threshold` *valid* shares from
    /// *distinct* members of the same group are present — mirroring the
    /// `f+1`-of-`n` semantics of Shoup's scheme as used by Steward.
    pub fn combine(&self, digest: &Digest, shares: &[SigShare]) -> Option<ThresholdSig> {
        let group = shares.first()?.group;
        let mut seen = std::collections::BTreeSet::new();
        let valid = shares
            .iter()
            .filter(|s| s.group == group && self.verify_share(digest, s) && seen.insert(s.member))
            .count();
        if valid >= self.threshold {
            Some(ThresholdSig { group, tag: hmac_sha256(&self.group_secret(group), &digest.0) })
        } else {
            None
        }
    }

    /// Verifies a combined signature.
    pub fn verify(&self, digest: &Digest, sig: &ThresholdSig) -> bool {
        hmac_sha256(&self.group_secret(sig.group), &digest.0) == sig.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: ThresholdGroupId = ThresholdGroupId(1);

    fn ring() -> ThresholdKeyring {
        ThresholdKeyring::new(9, 2) // f = 1, threshold = f + 1 = 2
    }

    fn digest() -> Digest {
        Digest::of_bytes(b"proposal")
    }

    #[test]
    fn combine_needs_threshold_distinct_valid_shares() {
        let r = ring();
        let d = digest();
        let s0 = r.share(G, 0, &d);
        let s1 = r.share(G, 1, &d);
        assert!(r.combine(&d, &[s0]).is_none(), "one share is not enough");
        assert!(r.combine(&d, &[s0, s0]).is_none(), "duplicate member does not count twice");
        let sig = r.combine(&d, &[s0, s1]).expect("two valid shares combine");
        assert!(r.verify(&d, &sig));
    }

    #[test]
    fn invalid_shares_are_ignored() {
        let r = ring();
        let d = digest();
        let other = Digest::of_bytes(b"other");
        let good = r.share(G, 0, &d);
        let stale = r.share(G, 1, &other); // share over different content
        assert!(r.combine(&d, &[good, stale]).is_none());
    }

    #[test]
    fn combined_sig_fails_on_other_digest() {
        let r = ring();
        let d = digest();
        let sig = r.combine(&d, &[r.share(G, 0, &d), r.share(G, 2, &d)]).unwrap();
        assert!(!r.verify(&Digest::of_bytes(b"other"), &sig));
    }

    #[test]
    fn shares_from_mixed_groups_do_not_combine() {
        let r = ring();
        let d = digest();
        let a = r.share(ThresholdGroupId(1), 0, &d);
        let b = r.share(ThresholdGroupId(2), 1, &d);
        assert!(r.combine(&d, &[a, b]).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_panics() {
        let _ = ThresholdKeyring::new(1, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any set of >= threshold distinct valid shares combines; any
        /// set with fewer distinct valid shares does not.
        #[test]
        fn combine_threshold_is_exact(
            seed in any::<u64>(),
            threshold in 1usize..5,
            members in prop::collection::hash_set(0u32..20, 0..8),
            data in prop::collection::vec(any::<u8>(), 0..32),
        ) {
            let ring = ThresholdKeyring::new(seed, threshold);
            let d = Digest::of_bytes(&data);
            let g = ThresholdGroupId(3);
            let shares: Vec<SigShare> =
                members.iter().map(|m| ring.share(g, *m, &d)).collect();
            let combined = ring.combine(&d, &shares);
            if members.len() >= threshold {
                let sig = combined.expect("enough shares");
                prop_assert!(ring.verify(&d, &sig));
            } else {
                prop_assert!(combined.is_none());
            }
        }
    }
}
