//! HMAC-SHA-256 (RFC 2104), validated against the RFC 4231 test vectors.
//!
//! # Examples
//!
//! ```
//! use spider_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! assert_ne!(tag, hmac_sha256(b"other-key", b"message"));
//! ```

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = Sha256::digest(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish tag comparison. (Timing side channels are irrelevant
/// in a simulation, but the habit is free.)
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8; 32]) -> bool {
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ tag[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m2", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
    }
}
