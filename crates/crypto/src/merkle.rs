//! Merkle trees over slot digests.
//!
//! The IRMC's multi-slot range certification (appendix §A.9 direction)
//! signs **one digest for a whole contiguous slot range** instead of one
//! RSA signature per slot: the per-slot content digests become the leaves
//! of a Merkle tree and the single signature covers the root. A verifier
//! holding all range content recomputes the root ([`merkle_root`]); a
//! verifier holding a single slot checks an audit path ([`MerkleProof`]).
//!
//! Construction notes:
//!
//! * Leaves and internal nodes are domain-separated (`"mleaf"` /
//!   `"mnode"`), so an internal node can never be reinterpreted as a leaf
//!   (second-preimage hardening).
//! * Odd nodes are promoted unchanged to the next level (no duplication),
//!   so a tree over `n` leaves hashes exactly `n` leaf wraps plus `n - 1`
//!   inner combines.
//! * The root over a single leaf is the wrapped leaf, and the root over
//!   zero leaves is [`Digest::ZERO`] (ranges are never empty on the wire).
//!
//! # Examples
//!
//! ```
//! use spider_crypto::{merkle_proof, merkle_root, Digest};
//!
//! let leaves: Vec<Digest> = (0..5u64)
//!     .map(|i| Digest::builder().u64(i).finish())
//!     .collect();
//! let root = merkle_root(&leaves);
//! let proof = merkle_proof(&leaves, 3);
//! assert!(proof.verify(&root, &leaves[3]));
//! assert!(!proof.verify(&root, &leaves[2]), "wrong leaf for this path");
//! ```

use crate::digest::Digest;
use std::collections::BTreeMap;

/// Wraps a leaf digest (domain-separated from inner nodes).
fn leaf_hash(leaf: &Digest) -> Digest {
    Digest::builder().str("mleaf").digest(leaf).finish()
}

/// Combines two child digests into their parent.
fn node_hash(left: &Digest, right: &Digest) -> Digest {
    Digest::builder().str("mnode").digest(left).digest(right).finish()
}

/// Computes the Merkle root over `leaves` (per-slot content digests).
///
/// Returns [`Digest::ZERO`] for an empty slice.
pub fn merkle_root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return Digest::ZERO;
    }
    let mut level: Vec<Digest> = leaves.iter().map(leaf_hash).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(node_hash(l, r)),
                [odd] => next.push(*odd), // promoted unchanged
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
    }
    level[0]
}

/// An audit path proving one leaf's membership under a [`merkle_root`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Sibling digests from leaf level to root; the flag says whether the
    /// sibling sits on the left.
    path: Vec<(Digest, bool)>,
}

impl MerkleProof {
    /// Number of siblings on the path (tree depth for this leaf).
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the path is empty (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Verifies that `leaf` (a raw content digest, unwrapped) sits under
    /// `root` at the position this proof was generated for.
    pub fn verify(&self, root: &Digest, leaf: &Digest) -> bool {
        let mut acc = leaf_hash(leaf);
        for (sibling, sibling_is_left) in &self.path {
            acc =
                if *sibling_is_left { node_hash(sibling, &acc) } else { node_hash(&acc, sibling) };
        }
        acc == *root
    }
}

/// A bounded, deterministic cache of already-verified range statements,
/// keyed by digest.
///
/// The IRMC-RC dedup path verifies each certified range statement (the
/// signed digest binding subchannel, first position, count, and Merkle
/// root) at most once: the first content copy pays the full signature
/// check, and every later copy of the same statement is accepted by root
/// comparison against this cache instead of being re-verified
/// member-by-member. Eviction is strict insertion order (oldest first),
/// so two runs that insert the same digests in the same order hold the
/// same cache — a requirement for the deterministic simulator.
///
/// # Examples
///
/// ```
/// use spider_crypto::{Digest, RootCache};
///
/// let mut cache = RootCache::new(2);
/// let a = Digest::of_bytes(b"a");
/// let b = Digest::of_bytes(b"b");
/// let c = Digest::of_bytes(b"c");
/// cache.insert(a);
/// cache.insert(b);
/// cache.insert(c); // evicts `a`, the oldest entry
/// assert!(!cache.contains(&a));
/// assert!(cache.contains(&b) && cache.contains(&c));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RootCache {
    cap: usize,
    seq: u64,
    by_digest: BTreeMap<Digest, u64>,
    by_age: BTreeMap<u64, Digest>,
}

impl RootCache {
    /// Creates a cache holding at most `cap` digests (`cap == 0` caches
    /// nothing and every lookup misses).
    pub fn new(cap: usize) -> Self {
        RootCache { cap, seq: 0, by_digest: BTreeMap::new(), by_age: BTreeMap::new() }
    }

    /// Whether `digest` was inserted and has not been evicted.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.by_digest.contains_key(digest)
    }

    /// Records `digest` as verified, evicting the oldest entry when full.
    /// Re-inserting an existing digest is a no-op (its age is preserved).
    pub fn insert(&mut self, digest: Digest) {
        if self.cap == 0 || self.by_digest.contains_key(&digest) {
            return;
        }
        if self.by_digest.len() == self.cap {
            if let Some((&oldest, &evicted)) = self.by_age.iter().next() {
                self.by_age.remove(&oldest);
                self.by_digest.remove(&evicted);
            }
        }
        self.by_digest.insert(digest, self.seq);
        self.by_age.insert(self.seq, digest);
        self.seq += 1;
    }

    /// Number of cached digests.
    pub fn len(&self) -> usize {
        self.by_digest.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }
}

/// Builds the audit path for `leaves[index]`.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
pub fn merkle_proof(leaves: &[Digest], index: usize) -> MerkleProof {
    assert!(index < leaves.len(), "merkle proof index out of range");
    let mut level: Vec<Digest> = leaves.iter().map(leaf_hash).collect();
    let mut idx = index;
    let mut path = Vec::new();
    while level.len() > 1 {
        let sibling = idx ^ 1;
        if sibling < level.len() {
            path.push((level[sibling], sibling < idx));
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(node_hash(l, r)),
                [odd] => next.push(*odd),
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
        idx /= 2;
    }
    MerkleProof { path }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: u64) -> Vec<Digest> {
        (0..n).map(|i| Digest::builder().u64(i).finish()).collect()
    }

    #[test]
    fn empty_root_is_zero() {
        assert_eq!(merkle_root(&[]), Digest::ZERO);
    }

    #[test]
    fn single_leaf_root_is_wrapped_leaf() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), leaf_hash(&l[0]));
        assert_ne!(merkle_root(&l), l[0], "leaf wrap is domain-separated");
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let base = leaves(7);
        let root = merkle_root(&base);
        for i in 0..base.len() {
            let mut tampered = base.clone();
            tampered[i] = Digest::of_bytes(b"evil");
            assert_ne!(merkle_root(&tampered), root, "leaf {i} tampering must change the root");
        }
    }

    #[test]
    fn root_depends_on_order_and_length() {
        let mut l = leaves(4);
        let root = merkle_root(&l);
        l.swap(0, 1);
        assert_ne!(merkle_root(&l), root, "order matters");
        l.swap(0, 1);
        l.push(Digest::of_bytes(b"extra"));
        assert_ne!(merkle_root(&l), root, "length matters");
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in 1..=9u64 {
            let l = leaves(n);
            let root = merkle_root(&l);
            for (i, leaf) in l.iter().enumerate() {
                let proof = merkle_proof(&l, i);
                assert!(proof.verify(&root, leaf), "n={n} i={i}");
                let other = Digest::of_bytes(b"not-a-member");
                assert!(!proof.verify(&root, &other), "n={n} i={i} foreign leaf");
            }
        }
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let l = leaves(6);
        let proof = merkle_proof(&l, 2);
        let wrong = merkle_root(&leaves(5));
        assert!(!proof.verify(&wrong, &l[2]));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn proof_index_out_of_range_panics() {
        let _ = merkle_proof(&leaves(3), 3);
    }

    #[test]
    fn root_cache_evicts_oldest_first() {
        let mut cache = RootCache::new(3);
        let digests = leaves(5);
        for d in &digests[..3] {
            cache.insert(*d);
        }
        assert_eq!(cache.len(), 3);
        cache.insert(digests[0]); // refresh is a no-op, age preserved
        cache.insert(digests[3]); // evicts digests[0], still the oldest
        assert!(!cache.contains(&digests[0]));
        assert!(cache.contains(&digests[1]));
        cache.insert(digests[4]); // evicts digests[1]
        assert!(!cache.contains(&digests[1]));
        assert!(cache.contains(&digests[2]));
        assert!(cache.contains(&digests[3]));
        assert!(cache.contains(&digests[4]));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn root_cache_zero_capacity_never_hits() {
        let mut cache = RootCache::new(0);
        let d = Digest::of_bytes(b"x");
        cache.insert(d);
        assert!(!cache.contains(&d));
        assert!(cache.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any tampering of any leaf changes the root, and every honest
        /// audit path verifies while a shifted one does not.
        #[test]
        fn roots_bind_all_leaves(n in 1usize..24, tamper in 0usize..24, seed in any::<u64>()) {
            let tamper = tamper % n;
            let leaves: Vec<Digest> = (0..n as u64)
                .map(|i| Digest::builder().u64(seed).u64(i).finish())
                .collect();
            let root = merkle_root(&leaves);
            let mut bad = leaves.clone();
            bad[tamper] = Digest::builder().u64(seed).str("tampered").finish();
            prop_assert_ne!(merkle_root(&bad), root);
            let proof = merkle_proof(&leaves, tamper);
            prop_assert!(proof.verify(&root, &leaves[tamper]));
            prop_assert!(!proof.verify(&root, &bad[tamper]));
        }
    }
}
