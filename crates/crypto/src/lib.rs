//! Cryptographic substrate for the Spider reproduction.
//!
//! The paper authenticates client/replica messages with HMAC-SHA-256 and
//! protects IRMC-internal messages with 1024-bit RSA signatures (§5). This
//! crate provides:
//!
//! * A from-scratch [`sha256`] implementation (FIPS 180-4, validated against
//!   the NIST test vectors) and [`hmac`] (RFC 2104, validated against the
//!   RFC 4231 vectors).
//! * [`Keyring`]-based **simulation-grade signatures**: deterministic,
//!   verifiable tags derived from per-identity secrets. They preserve the
//!   message-flow semantics of digital signatures (who can produce what,
//!   what verifies against what) while staying cheap enough for
//!   million-message simulations. Unforgeability against real-world
//!   adversaries is *not* a goal — Byzantine behaviour in this workspace is
//!   injected via explicit fault hooks, never via forged bytes.
//! * A [`CostModel`] charging simulated CPU time per operation, calibrated
//!   to RSA-1024 / HMAC-SHA-256 on small cloud VMs, which drives the
//!   latency, throughput, and CPU-usage results (Figs 9b–9d).
//! * [`threshold`] signatures with the `f+1`-of-`n` combine semantics the
//!   Steward baseline needs (Shoup-style interface).
//! * [`merkle`] trees over slot digests, used by the IRMC's multi-slot
//!   range certification to amortize one RSA signature over a contiguous
//!   slot range (§A.9 direction).
//!
//! # Examples
//!
//! ```
//! use spider_crypto::{Digest, Keyring, KeyId};
//!
//! let ring = Keyring::new(42);
//! let digest = Digest::of_bytes(b"hello");
//! let sig = ring.sign(KeyId(3), &digest);
//! assert!(ring.verify(KeyId(3), &digest, &sig));
//! assert!(!ring.verify(KeyId(4), &digest, &sig), "wrong signer");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod digest;
pub mod hmac;
pub mod keyring;
pub mod merkle;
pub mod sha256;
pub mod threshold;

pub use cost::CostModel;
pub use digest::{Digest, DigestBuilder, Digestible};
pub use keyring::{KeyId, Keyring, Mac, Signature};
pub use merkle::{merkle_proof, merkle_root, MerkleProof, RootCache};
pub use threshold::{SigShare, ThresholdKeyring, ThresholdSig};
