//! Figures 9b–9d — IRMC throughput, CPU usage, and network usage.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_harness::experiments::fig9bcd;
use spider_irmc::Variant;
use spider_types::SimTime;

fn regenerate() {
    let rows = fig9bcd::run(&fig9bcd::Config::default());
    println!("\n{}", fig9bcd::render(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let quick = fig9bcd::Config {
        sizes: vec![1024],
        duration: SimTime::from_secs(2),
        ..fig9bcd::Config::default()
    };
    let mut g = c.benchmark_group("fig9bcd");
    g.sample_size(10);
    g.bench_function("irmc_rc_1kb_flood", |b| {
        b.iter(|| fig9bcd::run_point(Variant::ReceiverCollect, 1024, &quick))
    });
    g.bench_function("irmc_sc_1kb_flood", |b| {
        b.iter(|| fig9bcd::run_point(Variant::SenderCollect, 1024, &quick))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
