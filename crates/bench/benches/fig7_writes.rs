//! Figure 7 — write latencies by client region and leader location.
//!
//! Prints the regenerated figure data, then benchmarks one scenario per
//! system family.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_bench::{bench_scale, figure_scale};
use spider_harness::experiments::fig7;
use spider_harness::scenarios::{run_scenario, SystemKind};

fn regenerate() {
    let cfg = fig7::Config { scenario: figure_scale(), only: None };
    let rows = fig7::run(&cfg);
    println!("\n{}", fig7::render(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("spider_leader_v1", |b| {
        b.iter(|| run_scenario(SystemKind::Spider { leader_zone: 0 }, &scale))
    });
    g.bench_function("bft_leader_virginia", |b| {
        b.iter(|| run_scenario(SystemKind::Bft { leader: 0 }, &scale))
    });
    g.bench_function("hft_leader_virginia", |b| {
        b.iter(|| run_scenario(SystemKind::Hft { leader_site: 0 }, &scale))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
