//! Micro-benchmarks of the PBFT black-box: pure state-machine throughput
//! (no simulator), measured on the real host CPU.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spider_consensus::{Input, Msg, Output, Pbft, PbftConfig, TestPayload};
use spider_crypto::CostModel;
use spider_types::SimTime;
use std::collections::VecDeque;

/// Orders `n` payloads through a 4-replica in-memory cluster.
fn order_n(n: u64) -> usize {
    let cfg = PbftConfig::new(1).with_cost(CostModel::zero());
    let mut replicas: Vec<Pbft<TestPayload>> = (0..4).map(|i| Pbft::new(cfg.clone(), i)).collect();
    let mut inbox: VecDeque<(usize, usize, Msg<TestPayload>)> = VecDeque::new();
    let mut delivered = 0usize;
    for k in 0..n {
        for (i, replica) in replicas.iter_mut().enumerate() {
            let mut out = Vec::new();
            replica.handle(SimTime::ZERO, Input::Order(TestPayload(k)), &mut out);
            for o in out {
                if let Output::Send { to, msg } = o {
                    inbox.push_back((i, to, msg));
                }
            }
        }
        while let Some((from, to, msg)) = inbox.pop_front() {
            let mut out = Vec::new();
            replicas[to].handle(SimTime::ZERO, Input::Message { from, msg }, &mut out);
            for o in out {
                match o {
                    Output::Send { to: t, msg } => inbox.push_back((to, t, msg)),
                    Output::Deliver { batch, .. } => delivered += batch.len(),
                    _ => {}
                }
            }
        }
    }
    delivered
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pbft");
    g.throughput(Throughput::Elements(64));
    g.bench_function("order_64_requests_4_replicas", |b| {
        b.iter(|| order_n(std::hint::black_box(64)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
