//! Figure 10 — response time over time when a new client site joins.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_harness::experiments::fig10;
use spider_types::SimTime;

fn regenerate() {
    let result = fig10::run(&fig10::Config::default());
    println!("\n{}", fig10::render(&result));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let quick = fig10::Config {
        clients_per_region: 2,
        duration: SimTime::from_secs(20),
        join_at: SimTime::from_secs(12),
        bucket: SimTime::from_secs(4),
        ..fig10::Config::default()
    };
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("adaptability_all_systems", |b| b.iter(|| fig10::run(&quick)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
