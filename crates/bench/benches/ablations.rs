//! Ablation benches for the design choices DESIGN.md calls out:
//! consensus batch size, global flow control `z` with a slow execution
//! group, checkpoint interval, and IRMC subchannel capacity.
//!
//! Each ablation prints a small sweep table (the interesting output) and
//! registers one Criterion measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use spider::{DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_app::{kv_op_factory, KvStore};
use spider_harness::ec2_topology;
use spider_harness::experiments::{batching, commit_channel, fig9bcd};
use spider_harness::stats::LatencySummary;
use spider_irmc::Variant;
use spider_sim::Simulation;
use spider_types::SimTime;

/// Runs a two-group Spider deployment with the given config knobs and a
/// deliberately slowed Tokyo execution group; returns Virginia's p50 and
/// the total completed requests.
fn run_with(cfg: SpiderConfig, slow_tokyo_ms: u64, seed: u64) -> (f64, usize) {
    let mut sim = Simulation::new(ec2_topology(), seed);
    let mut dep = DeploymentBuilder::new(cfg)
        .with_app(KvStore::new)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(&mut sim);
    let workload = WorkloadSpec {
        rate_per_sec: 8.0,
        payload_bytes: 200,
        write_fraction: 1.0,
        strong_read_fraction: 0.0,
        max_ops: 0,
        start_delay: SimTime::from_millis(200),
        op_factory: kv_op_factory(100),
    };
    dep.spawn_clients(&mut sim, 0, 4, workload.clone());
    dep.spawn_clients(&mut sim, 1, 4, workload);
    if slow_tokyo_ms > 0 {
        // Delay everything the agreement group sends to Tokyo's replicas:
        // the commit channel drags, exercising the `z` skip rule (§3.5).
        let tokyo = dep.group_nodes(1).to_vec();
        for a in dep.agreement.clone() {
            for t in &tokyo {
                sim.net_control_mut().set_extra_delay(a, *t, SimTime::from_millis(slow_tokyo_ms));
            }
        }
    }
    sim.run_until(SimTime::from_secs(12));
    let samples = dep.collect_samples(&sim);
    let virginia: Vec<_> = samples
        .iter()
        .filter(|(_, g, _)| g.0 == 0)
        .flat_map(|(_, _, s)| s.iter().map(|x| x.latency()))
        .collect();
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    let p50 = LatencySummary::of(&virginia).map(|s| s.p50_ms).unwrap_or(f64::NAN);
    (p50, total)
}

fn ablation_z() {
    // The slow group must actually exhaust the commit-channel window for
    // `z` to matter: small capacity + a 2s-per-hop straggler + enough
    // load. With z = 0 the agreement group couples everyone to the
    // straggler (Virginia latency explodes); with z = 1 it skips the
    // trailing group, which later catches up via checkpoints (§3.5).
    println!("\nAblation — global flow control z with a slow (+2s) Tokyo group:");
    println!("{:<6} {:>16} {:>12}", "z", "virginia p50[ms]", "completed");
    for z in [0usize, 1] {
        let cfg = SpiderConfig {
            z,
            commit_capacity: 16,
            ke: 8,
            ka: 8,
            ag_win: 16,
            ..SpiderConfig::default()
        };
        let (p50, total) = run_with(cfg, 2_000, 7);
        println!("{z:<6} {p50:>16.1} {total:>12}");
    }
}

fn ablation_batching() {
    // The real sweep: greedy (the legacy fixed cut with no delay cap) vs
    // fixed-size batching (linger-capped) vs rate-adaptive batching,
    // across offered load. See `spider_harness::experiments::batching`;
    // the `bench_summary` binary records the same sweep as JSON for the
    // CI perf gate.
    println!();
    let rows = batching::run(&batching::Config::default());
    println!("{}", batching::render(&rows));
}

fn ablation_checkpoint_interval() {
    println!("\nAblation — checkpoint intervals ka = ke (liveness needs k <= capacity):");
    println!("{:<6} {:>16} {:>12}", "k", "virginia p50[ms]", "completed");
    for k in [8u64, 32, 128] {
        let mut cfg = SpiderConfig::default();
        cfg.ka = k;
        cfg.ke = k;
        cfg.commit_capacity = cfg.commit_capacity.max(k);
        cfg.ag_win = cfg.ag_win.max(k);
        let (p50, total) = run_with(cfg, 0, 9);
        println!("{k:<6} {p50:>16.1} {total:>12}");
    }
}

fn ablation_commit_range() {
    // The amortization curve of multi-slot commit certification: one RSA
    // signature (and one verification per signer) per range instead of
    // per slot. Range 1 is the legacy per-slot baseline; the curve is
    // what `bench_summary` records in BENCH_*.json and gates at >= 3x
    // for range 32.
    println!("\nAblation — commit-channel range certification (slots per certificate):");
    let cfg = commit_channel::Config::default();
    let rows = commit_channel::run_range_sweep(&[1, 8, 32, 128], &cfg);
    println!("{}", commit_channel::render(&rows));
}

fn ablation_irmc_capacity() {
    println!("\nAblation — IRMC subchannel capacity (flooded RC channel, 1 KiB):");
    println!("{:<10} {:>14}", "capacity", "thruput[r/s]");
    for cap in [16u64, 64, 256] {
        let cfg = fig9bcd::Config {
            sizes: vec![1024],
            duration: SimTime::from_secs(3),
            capacity: cap,
            seed: 42,
        };
        let row = fig9bcd::run_point(Variant::ReceiverCollect, 1024, &cfg);
        println!("{cap:<10} {:>14.0}", row.throughput_rps);
    }
}

fn bench(c: &mut Criterion) {
    ablation_z();
    ablation_batching();
    ablation_commit_range();
    ablation_checkpoint_interval();
    ablation_irmc_capacity();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("spider_two_groups_12s", |b| {
        b.iter(|| run_with(SpiderConfig::default(), 0, 7))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
