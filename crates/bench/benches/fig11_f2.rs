//! Figure 11 — write latencies when tolerating f = 2 faults per group.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_bench::{bench_scale, figure_scale};
use spider_harness::experiments::fig11;

fn regenerate() {
    let rows = fig11::run(&fig11::Config { scenario: figure_scale() });
    println!("\n{}", fig11::render(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut scenario = bench_scale();
    scenario.clients_per_region = 2;
    let cfg = fig11::Config { scenario };
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("f2_sweep", |b| b.iter(|| fig11::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
