//! Micro-benchmarks of the cryptographic substrate: real host-CPU
//! throughput of the from-scratch SHA-256/HMAC and the simulated
//! signature/threshold operations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spider_crypto::sha256::Sha256;
use spider_crypto::threshold::ThresholdGroupId;
use spider_crypto::{hmac::hmac_sha256, Digest, Keyring, ThresholdKeyring};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| Sha256::digest(std::hint::black_box(&data)))
        });
        g.bench_function(format!("hmac/{size}"), |b| {
            b.iter(|| hmac_sha256(b"key", std::hint::black_box(&data)))
        });
    }
    g.finish();

    let ring = Keyring::new(1);
    let d = Digest::of_bytes(b"content");
    let sig = ring.sign(spider_crypto::KeyId(1), &d);
    let mut g = c.benchmark_group("signatures");
    g.bench_function("sign", |b| b.iter(|| ring.sign(spider_crypto::KeyId(1), &d)));
    g.bench_function("verify", |b| b.iter(|| ring.verify(spider_crypto::KeyId(1), &d, &sig)));
    g.finish();

    let tkr = ThresholdKeyring::new(1, 2);
    let s0 = tkr.share(ThresholdGroupId(0), 0, &d);
    let s1 = tkr.share(ThresholdGroupId(0), 1, &d);
    let mut g = c.benchmark_group("threshold");
    g.bench_function("share", |b| b.iter(|| tkr.share(ThresholdGroupId(0), 0, &d)));
    g.bench_function("combine", |b| b.iter(|| tkr.combine(&d, &[s0, s1])));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
