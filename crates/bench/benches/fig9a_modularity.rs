//! Figure 9a — modularity impact (SPIDER-0E / SPIDER-1E / SPIDER).

use criterion::{criterion_group, criterion_main, Criterion};
use spider_bench::{bench_scale, figure_scale};
use spider_harness::experiments::fig9a;
use spider_harness::scenarios::{run_scenario, SystemKind};

fn regenerate() {
    let rows = fig9a::run(&fig9a::Config { scenario: figure_scale() });
    println!("\n{}", fig9a::render(&rows));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let scale = bench_scale();
    let mut g = c.benchmark_group("fig9a");
    g.sample_size(10);
    for (name, kind) in [
        ("spider_0e", SystemKind::Spider0E),
        ("spider_1e", SystemKind::Spider1E),
        ("spider_full", SystemKind::Spider { leader_zone: 0 }),
    ] {
        g.bench_function(name, |b| b.iter(|| run_scenario(kind, &scale)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
