//! Figure 8 — strongly and weakly consistent read latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use spider_bench::{bench_scale, figure_scale};
use spider_harness::experiments::fig8;

fn regenerate() {
    let result = fig8::run(&fig8::Config { scenario: figure_scale() });
    println!("\n{}", fig8::render(&result));
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut scale = bench_scale();
    scale.write_fraction = 0.0;
    scale.strong_read_fraction = 0.0; // weak reads
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("spider_weak_reads", |b| {
        b.iter(|| {
            spider_harness::scenarios::run_scenario(
                spider_harness::scenarios::SystemKind::Spider { leader_zone: 0 },
                &scale,
            )
        })
    });
    let mut strong = bench_scale();
    strong.write_fraction = 0.0;
    strong.strong_read_fraction = 1.0;
    g.bench_function("spider_strong_reads", |b| {
        b.iter(|| {
            spider_harness::scenarios::run_scenario(
                spider_harness::scenarios::SystemKind::Spider { leader_zone: 0 },
                &strong,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
