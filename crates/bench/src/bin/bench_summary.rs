//! Headless bench summary: regenerates the CI-tracked performance
//! numbers and writes them as machine-readable JSON.
//!
//! Runs (at a CI-friendly scale, all on the deterministic simulator):
//!
//! 1. the Figure 7 write-latency sweep (every system × client region),
//! 2. the Figure 10 adaptability write workload (whole-run summary per
//!    system),
//! 3. the batching ablation (greedy / fixed / adaptive across offered
//!    load),
//! 4. the commit-channel range-certification sweep (slots/s at
//!    agreement-replica saturation for range sizes 1/8/32/128, for
//!    legacy IRMC-RC, digest-only dedup IRMC-RC, and IRMC-SC) and the
//!    IRMC-SC §A.9 overlap latency comparison,
//! 5. the disaster suite (correlated outage, WAN partition, view-change
//!    storm, placement frontier) with goodput/unavailability/recovery
//!    per scenario.
//!
//! On top of the numbers it runs two traced repeats with the
//! observability recorder on: a Spider fig7-scale run (per-phase
//! request-latency breakdown + Perfetto trace) and a dedup-RC range-32
//! flood (per-(component, operation) CPU attribution + folded stacks
//! for flamegraphs). The flood trace additionally records causal edges
//! and sampled request spans, from which the differential critical-path
//! profile (p99.9 cohort vs p50 cohort) is assembled; the traced
//! WAN-partition run feeds the streaming health watchdog, whose event
//! stream is checked against the fault schedule.
//!
//! Output: `BENCH_adaptive_batching.json` (override with `--out PATH`),
//! plus `BENCH_trace_perfetto.json` (load in ui.perfetto.dev),
//! `BENCH_cpu_folded.txt` (feed to flamegraph.pl / inferno),
//! `BENCH_critical_path_folded.txt` (speedscope-shaped differential
//! critical-path stacks), and `BENCH_health_events.jsonl` (the
//! watchdog's typed event stream from the traced partition run).
//!
//! `--check BASELINE` additionally gates (exit non-zero on failure):
//!
//! * fig7 Spider p50 within +20 % of the baseline's
//!   `fig7_spider_p50_ms`,
//! * adaptive batching still beating the static policies at both ends,
//! * commit-channel range certification delivering >= 3x the per-slot
//!   saturation throughput at range 32,
//! * the digest-only RC fan-in saturating above 100k slots/s at range 32
//!   with per-slot receiver CPU within 2x of IRMC-SC's,
//! * IRMC-SC overlapped shipping showing lower commit latency than
//!   ship-after-bundle,
//! * the WAN-partition disaster scenario losing zero ops, duplicating
//!   zero ops, converging every store, and recovering within 10 s of
//!   simulated time after the heal,
//! * CPU attribution naming range signing as the dominant sender cost
//!   of the dedup-RC flood at range 32,
//! * the traced WAN-partition run containing a commit-channel recast
//!   span after the heal (the liveness mechanism actually fired),
//! * the p99.9-cohort differential critical path of the traced flood
//!   attributing its dominant segment (>= 40 % of tail critical-path
//!   time) to the `(hop, component, operation)` named by the baseline's
//!   `tail_dominant_segment`,
//! * the health watchdog flagging the WAN partition as an
//!   `IrmcWindowStall` within 2 s of the cut and recovering after the
//!   heal, with zero stall events in the unfaulted traced fig7 run.

use spider_harness::experiments::{batching, commit_channel, disaster, fig10, fig7};
use spider_harness::scenarios::{run_scenario_obs, ScenarioCfg, SystemKind};
use spider_irmc::ChannelMode;
use spider_obs::export as obs_export;
use spider_obs::{causal, HealthEvent, ObsReport};
use spider_types::SimTime;
use std::fmt::Write as _;

/// Regression tolerance of the `--check` gate: fail above +20 %.
const P50_REGRESSION_TOLERANCE: f64 = 1.20;

/// Required commit-channel speedup of range-32 certification over the
/// per-slot baseline at saturation.
const COMMIT_RANGE_SPEEDUP_FLOOR: f64 = 3.0;

/// Range sizes of the commit-channel amortization curve.
const COMMIT_RANGES: [usize; 4] = [1, 8, 32, 128];

/// Saturation floor of the digest-only RC fan-in at range 32 (slots/s).
/// The hash wall this redesign removes capped the legacy RC receiver
/// well below this.
const DEDUP_SATURATION_FLOOR: f64 = 100_000.0;

/// Ceiling on dedup-RC per-slot receiver CPU relative to IRMC-SC's at
/// range 32. SC receivers verify one signature per range and hash
/// content once — the dedup fan-in must stay within 2x of that even
/// though it still collects `fs` extra digest vouches.
const DEDUP_RX_CPU_RATIO_CEIL: f64 = 2.0;

/// Recovery-time ceiling of the WAN-partition disaster gate: goodput
/// must return to 90 % of pre-fault within this much simulated time
/// after the heal.
const DISASTER_RECOVERY_CEIL_MS: f64 = 10_000.0;

/// The fig7 cell the perf gate tracks: Spider with the leader in
/// Virginia zone 1, measured from Virginia clients.
const GATED_SYSTEM: &str = "SPIDER(leader=V-1)";
const GATED_REGION: &str = "virginia";

/// Minimum share of p99.9-cohort critical-path time the dominant
/// segment must hold for the tail-forensics gate: the differential
/// profile must *name* where the tail goes, not spread it thin.
const TAIL_DOMINANT_SHARE_FLOOR: f64 = 0.40;

/// Detection-latency ceiling of the watchdog gate: the WAN-partition
/// stall event must be stamped within this long of the cut.
const STALL_DETECT_CEIL: SimTime = SimTime::from_secs(2);

fn fig7_scale() -> ScenarioCfg {
    ScenarioCfg {
        clients_per_region: 3,
        rate_per_client: 2.0,
        duration: SimTime::from_secs(12),
        warmup: SimTime::from_secs(2),
        ..ScenarioCfg::default()
    }
}

/// Disaster scale: the same scaled-down clock the CI `disaster` job's
/// integration tests use (fault at 6 s, heal at 14 s, 24 s of load).
fn disaster_scale() -> disaster::Config {
    disaster::Config {
        clients_per_region: 2,
        rate_per_client: 3.0,
        fault_at: SimTime::from_secs(6),
        heal_at: SimTime::from_secs(14),
        duration: SimTime::from_secs(24),
        ..disaster::Config::default()
    }
}

fn fig10_scale() -> fig10::Config {
    fig10::Config {
        clients_per_region: 3,
        duration: SimTime::from_secs(40),
        join_at: SimTime::from_secs(25),
        bucket: SimTime::from_secs(5),
        ..fig10::Config::default()
    }
}

/// Formats a float for JSON (`null` for non-finite values).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_owned()
    }
}

/// Extracts the number following `"key":` in a (flat) JSON document.
/// Hand-rolled because the workspace builds offline without serde_json;
/// the documents it reads are the ones this binary writes.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the quoted string following `"key":` in a (flat) JSON
/// document. Same hand-rolled spirit as [`extract_number`]; the strings
/// it reads (segment names) never contain escapes.
fn extract_string<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// Prints the non-silent-truncation warning for a traced run. Dropped
/// events skew aggregate profiles toward the retained window; the
/// exemplar reservoir (slowest-K + uniform sample) keeps full detail
/// for its requests regardless, so tail forensics stay possible.
fn warn_drops(label: &str, rep: &ObsReport) {
    if rep.spans_dropped > 0 || rep.edges_dropped > 0 {
        println!(
            "WARNING: {label} trace truncated ({} span events, {} edge events dropped); \
             aggregate profiles cover retained events only — use the {} exemplar \
             requests (slowest-K + uniform sample) for full-detail tail forensics",
            rep.spans_dropped,
            rep.edges_dropped,
            rep.exemplars.len()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_adaptive_batching.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                baseline_path = Some(args.get(i + 1).expect("--check needs a path").clone());
                i += 2;
            }
            other => panic!("unknown argument: {other} (expected --out PATH / --check PATH)"),
        }
    }

    println!("bench_summary: fig7 write-latency sweep…");
    let fig7_rows = fig7::run(&fig7::Config { scenario: fig7_scale(), only: None });
    println!("{}", fig7::render(&fig7_rows));
    let fig7_cfg = fig7_scale();
    let fig7_measured = (fig7_cfg.duration - fig7_cfg.warmup).as_secs_f64();

    println!("bench_summary: traced Spider run (fig7 scale, end-to-end request tracing)…");
    let (_, spider_trace) = run_scenario_obs(SystemKind::Spider { leader_zone: 0 }, &fig7_scale());
    let phase_rows = obs_export::phase_breakdown(&spider_trace);
    println!("per-phase request latency breakdown (traced Spider run):");
    println!(
        "  {:<16} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "segment", "n", "p50[ms]", "p90[ms]", "p99[ms]", "mean[ms]"
    );
    for r in &phase_rows {
        println!(
            "  {:<16} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.segment, r.count, r.p50_ms, r.p90_ms, r.p99_ms, r.mean_ms
        );
    }
    println!();

    println!("bench_summary: fig10 adaptability write workload…");
    let fig10_rows = fig10::run_write_summaries(&fig10_scale());
    for r in &fig10_rows {
        println!(
            "  {:<8} p50={:>7.1}ms p90={:>7.1}ms thruput={:>7.1}r/s",
            r.system, r.summary.p50_ms, r.summary.p90_ms, r.throughput_rps
        );
    }

    println!("\nbench_summary: batching ablation sweep…");
    let sweep_cfg = batching::Config::default();
    let sweep = batching::run(&sweep_cfg);
    println!("{}", batching::render(&sweep));

    println!("bench_summary: commit-channel range certification sweep…");
    let commit_cfg = commit_channel::Config::default();
    let commit_rows = commit_channel::run_range_sweep(&COMMIT_RANGES, &commit_cfg);
    println!("{}", commit_channel::render(&commit_rows));
    let commit_row = |variant: &str, range: usize| {
        commit_rows.iter().find(|r| r.variant == variant && r.range == range)
    };
    let commit_cell = |variant: &str, range: usize| {
        commit_row(variant, range).map(|r| r.slots_per_sec).unwrap_or(f64::NAN)
    };
    // Per-slot receiver CPU in µs of CPU per delivered slot (utilization
    // normalized by throughput — raw utilization is meaningless across
    // variants that saturate at different rates).
    let rx_us_per_slot = |variant: &str, range: usize| {
        commit_row(variant, range)
            .map(|r| r.receiver_cpu / r.slots_per_sec * 1e6)
            .unwrap_or(f64::NAN)
    };
    let commit_slots_range1 = commit_cell("IRMC-RC", 1);
    let commit_slots_range32 = commit_cell("IRMC-RC", 32);
    let commit_speedup = commit_slots_range32 / commit_slots_range1;
    println!(
        "commit-channel saturation: {commit_slots_range1:.0} slots/s per-slot -> \
         {commit_slots_range32:.0} slots/s at range 32 ({commit_speedup:.1}x)"
    );
    // Headline of the digest-only fan-in: the commit mode Spider deploys
    // by default (IRMC-RC with dedup).
    let dedup_slots_range32 = commit_cell("IRMC-RC-dedup", 32);
    let rc_dedup_rx_us = rx_us_per_slot("IRMC-RC-dedup", 32);
    let rc_legacy_rx_us = rx_us_per_slot("IRMC-RC", 32);
    let sc_rx_us = rx_us_per_slot("IRMC-SC", 32);
    println!(
        "dedup fan-in at range 32: {dedup_slots_range32:.0} slots/s, receiver \
         {rc_dedup_rx_us:.2} µs/slot (legacy RC {rc_legacy_rx_us:.2}, SC {sc_rx_us:.2})\n"
    );

    println!("bench_summary: traced dedup-RC range-32 flood (CPU attribution)…");
    let (_, commit_trace) = commit_channel::run_flood_traced(
        ChannelMode::ReliableCast { dedup: true },
        32,
        &commit_cfg,
    );
    println!("{}", obs_export::cpu_table(&commit_trace));
    let top_sender = obs_export::top_op(&commit_trace, "sender");
    warn_drops("dedup-RC flood", &commit_trace);

    println!("bench_summary: differential critical-path profile (p99.9 vs p50 cohort)…");
    let commit_paths = causal::assemble(&commit_trace);
    let commit_profiles = causal::differential_profile(&commit_paths);
    for p in &commit_profiles {
        println!(
            "  cohort {:<5} {:>5} requests, mean latency {:.2} ms",
            p.cohort,
            p.requests,
            p.mean_latency.as_millis_f64()
        );
        for row in p.rows.iter().take(5) {
            println!(
                "    {:<32} {:>5.1}%  {:>9.3} ms  (in {} requests)",
                format!("{}/{}/{}", row.hop, row.component, row.op),
                row.share * 100.0,
                row.total.as_millis_f64(),
                row.count
            );
        }
    }
    // The tail-forensics headline: where does the p99.9 cohort's
    // critical-path time go?
    let (tail_dominant, tail_share) = commit_profiles
        .iter()
        .find(|p| p.cohort == "p999")
        .and_then(|p| p.rows.first())
        .map(|r| (format!("{}/{}/{}", r.hop, r.component, r.op), r.share))
        .unwrap_or_else(|| ("none".to_owned(), 0.0));
    println!(
        "  tail-dominant segment: {tail_dominant} ({:.0} % of p99.9-cohort \
         critical-path time)\n",
        tail_share * 100.0
    );

    println!("bench_summary: disaster suite…");
    let dis_cfg = disaster_scale();
    let (partition_traced_row, partition_trace) = disaster::run_wan_partition_traced(&dis_cfg);
    let mut disaster_rows = vec![disaster::run_correlated_outage(&dis_cfg), partition_traced_row];
    disaster_rows.push(disaster::run_view_change_storm(&dis_cfg));
    disaster_rows.extend(disaster::run_placement_sweep(&dis_cfg, &[0, 3]));
    println!("{}", disaster::render(&disaster_rows));
    let partition_row = disaster_rows
        .iter()
        .find(|r| r.scenario == "wan-partition")
        .expect("disaster suite includes the wan-partition scenario");
    warn_drops("wan-partition", &partition_trace);
    warn_drops("spider fig7", &spider_trace);

    // Watchdog event stream vs the known fault schedule: the partition
    // cut must surface as an IRMC window stall shortly after `fault_at`,
    // the first post-heal window movement as a recovery; the unfaulted
    // fig7 run must stay stall-free (false-positive check).
    let first_stall = partition_trace.health.iter().find_map(|e| match e {
        HealthEvent::IrmcWindowStall { at, .. } => Some(*at),
        _ => None,
    });
    let recover_after_heal = partition_trace
        .health
        .iter()
        .any(|e| matches!(e, HealthEvent::IrmcWindowRecover { at, .. } if *at > dis_cfg.heal_at));
    let fig7_stalls = spider_trace
        .health
        .iter()
        .filter(|e| matches!(e, HealthEvent::IrmcWindowStall { .. }))
        .count();
    println!(
        "watchdog: wan-partition first stall at {} (cut at {} ms), recovery after heal: \
         {recover_after_heal}; stalls in unfaulted fig7 run: {fig7_stalls}",
        first_stall.map_or_else(|| "none".to_owned(), |t| format!("{} ms", t.as_millis())),
        dis_cfg.fault_at.as_millis()
    );

    println!("bench_summary: IRMC-SC §A.9 overlap latency…");
    let overlap_cfg =
        commit_channel::Config { msg_size: 16 * 1024, ..commit_channel::Config::default() };
    let overlapped =
        commit_channel::run_paced(ChannelMode::SenderCast { overlap: true }, 64, &overlap_cfg);
    let after_bundle =
        commit_channel::run_paced(ChannelMode::SenderCast { overlap: false }, 64, &overlap_cfg);
    let sc_overlap_p50 = overlapped.commit_p50_ms;
    let sc_after_bundle_p50 = after_bundle.commit_p50_ms;
    println!(
        "SC commit p50: overlapped {sc_overlap_p50:.2} ms vs ship-after-bundle \
         {sc_after_bundle_p50:.2} ms\n"
    );

    // Headline number for the CI gate.
    let spider_p50 = fig7_rows
        .iter()
        .find(|r| r.system == GATED_SYSTEM && r.client_region == GATED_REGION)
        .map(|r| r.summary.p50_ms)
        .unwrap_or(f64::NAN);

    // Did adaptive beat the static policies where each is weak? At low
    // load, fixed-size batching wastes its linger (p50); at high load,
    // the seed's greedy cut (fixed max_batch, no delay cap) under-batches
    // (throughput).
    let cell = |mode: &str, rps: f64| sweep.iter().find(|r| r.mode == mode && r.offered_rps == rps);
    let low = sweep_cfg.loads.first().map(|l| l.offered_rps()).unwrap_or(f64::NAN);
    let high = sweep_cfg.loads.last().map(|l| l.offered_rps()).unwrap_or(f64::NAN);
    let low_win = match (cell("adaptive", low), cell("fixed", low)) {
        (Some(a), Some(f)) => a.summary.p50_ms < f.summary.p50_ms,
        _ => false,
    };
    let high_win = match (cell("adaptive", high), cell("greedy", high)) {
        (Some(a), Some(g)) => a.throughput_rps > g.throughput_rps,
        _ => false,
    };
    println!("adaptive beats fixed-size batching at low load (p50): {low_win}");
    println!("adaptive beats the greedy default at high load (throughput): {high_win}");

    let mut json = String::from("{\n  \"schema\": 3,\n");
    let _ = writeln!(json, "  \"fig7_spider_p50_ms\": {},", json_f64(spider_p50));
    let _ = writeln!(json, "  \"tail_dominant_segment\": \"{tail_dominant}\",");
    let _ = writeln!(json, "  \"tail_dominant_share\": {},", json_f64(tail_share));
    let _ = writeln!(json, "  \"flood_spans_dropped\": {},", commit_trace.spans_dropped);
    let _ = writeln!(json, "  \"flood_edges_dropped\": {},", commit_trace.edges_dropped);
    let _ = writeln!(json, "  \"partition_spans_dropped\": {},", partition_trace.spans_dropped);
    let _ = writeln!(
        json,
        "  \"partition_first_stall_ms\": {},",
        first_stall.map_or_else(|| "null".to_owned(), |t| json_f64(t.as_millis_f64()))
    );
    let _ = writeln!(json, "  \"partition_recover_after_heal\": {recover_after_heal},");
    let _ = writeln!(json, "  \"fig7_stall_events\": {fig7_stalls},");
    let _ = writeln!(json, "  \"adaptive_beats_fixed_low_load_p50\": {low_win},");
    let _ = writeln!(json, "  \"adaptive_beats_greedy_high_load_throughput\": {high_win},");
    let _ = writeln!(json, "  \"commit_slots_per_sec_range1\": {},", json_f64(commit_slots_range1));
    let _ =
        writeln!(json, "  \"commit_slots_per_sec_range32\": {},", json_f64(commit_slots_range32));
    let _ = writeln!(json, "  \"commit_range32_speedup\": {},", json_f64(commit_speedup));
    let _ = writeln!(
        json,
        "  \"commit_slots_per_sec_range32_dedup\": {},",
        json_f64(dedup_slots_range32)
    );
    let _ = writeln!(json, "  \"rc_dedup_rx_us_per_slot\": {},", json_f64(rc_dedup_rx_us));
    let _ = writeln!(json, "  \"rc_legacy_rx_us_per_slot\": {},", json_f64(rc_legacy_rx_us));
    let _ = writeln!(json, "  \"sc_rx_us_per_slot\": {},", json_f64(sc_rx_us));
    let _ = writeln!(json, "  \"sc_overlap_p50_ms\": {},", json_f64(sc_overlap_p50));
    let _ = writeln!(json, "  \"sc_ship_after_bundle_p50_ms\": {},", json_f64(sc_after_bundle_p50));
    json.push_str("  \"commit_channel\": [\n");
    for (i, r) in commit_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"variant\": \"{}\", \"range\": {}, \"slots_per_sec\": {}, \
             \"sender_cpu\": {}, \"receiver_cpu\": {}}}",
            r.variant,
            r.range,
            json_f64(r.slots_per_sec),
            json_f64(r.sender_cpu),
            json_f64(r.receiver_cpu)
        );
        json.push_str(if i + 1 < commit_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"fig7\": [\n");
    for (i, r) in fig7_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"system\": \"{}\", \"region\": \"{}\", \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \"throughput_rps\": {}}}",
            r.system,
            r.client_region,
            json_f64(r.summary.p50_ms),
            json_f64(r.summary.p90_ms),
            json_f64(r.summary.p99_ms),
            json_f64(r.summary.p999_ms),
            json_f64(r.summary.count as f64 / fig7_measured)
        );
        json.push_str(if i + 1 < fig7_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"fig10_writes\": [\n");
    for (i, r) in fig10_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"system\": \"{}\", \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \"throughput_rps\": {}}}",
            r.system,
            json_f64(r.summary.p50_ms),
            json_f64(r.summary.p90_ms),
            json_f64(r.summary.p99_ms),
            json_f64(r.summary.p999_ms),
            json_f64(r.throughput_rps)
        );
        json.push_str(if i + 1 < fig10_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"adaptive_batching\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"offered_rps\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"throughput_rps\": {}}}",
            r.mode,
            json_f64(r.offered_rps),
            json_f64(r.summary.p50_ms),
            json_f64(r.summary.p90_ms),
            json_f64(r.summary.p99_ms),
            json_f64(r.throughput_rps)
        );
        json.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"phase_breakdown\": [\n");
    for (i, r) in phase_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"segment\": \"{}\", \"count\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
             \"p99_ms\": {}, \"mean_ms\": {}}}",
            r.segment,
            r.count,
            json_f64(r.p50_ms),
            json_f64(r.p90_ms),
            json_f64(r.p99_ms),
            json_f64(r.mean_ms)
        );
        json.push_str(if i + 1 < phase_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"critical_path\": [\n");
    let cp_rows: Vec<_> =
        commit_profiles.iter().flat_map(|p| p.rows.iter().map(move |r| (p.cohort, r))).collect();
    for (i, (cohort, r)) in cp_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"cohort\": \"{}\", \"hop\": \"{}\", \"component\": \"{}\", \"op\": \"{}\", \
             \"total_ms\": {}, \"share\": {}, \"count\": {}}}",
            cohort,
            r.hop,
            r.component,
            r.op,
            json_f64(r.total.as_millis_f64()),
            json_f64(r.share),
            r.count
        );
        json.push_str(if i + 1 < cp_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"disaster\": [\n");
    for (i, r) in disaster_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"pre_fault_rps\": {}, \"goodput_rps\": {}, \
             \"pre_fault_p50_ms\": {}, \"unavailability_ms\": {}, \"recovery_ms\": {}, \
             \"lost_ops\": {}, \"duplicated_ops\": {}, \"diverged_replicas\": {}, \
             \"final_view\": {}}}",
            r.scenario,
            json_f64(r.pre_fault_rps),
            json_f64(r.goodput_rps),
            json_f64(r.pre_fault_p50_ms),
            json_f64(r.unavailability_ms),
            r.recovery_ms.map_or_else(|| "null".to_owned(), json_f64),
            r.lost_ops,
            r.duplicated_ops,
            r.diverged_replicas,
            r.final_view
        );
        json.push_str(if i + 1 < disaster_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench summary JSON");
    println!("\nwrote {out_path}");

    // Trace artifacts: the Perfetto track view of the traced Spider run
    // and the folded stacks of the traced commit-channel flood.
    let perfetto_path = "BENCH_trace_perfetto.json";
    std::fs::write(perfetto_path, obs_export::perfetto_json(&spider_trace))
        .expect("write Perfetto trace");
    println!("wrote {perfetto_path}");
    let folded_path = "BENCH_cpu_folded.txt";
    std::fs::write(folded_path, obs_export::folded_stacks(&commit_trace))
        .expect("write folded stacks");
    println!("wrote {folded_path}");
    let cp_path = "BENCH_critical_path_folded.txt";
    std::fs::write(cp_path, obs_export::critical_path_folded(&commit_profiles))
        .expect("write critical-path folded stacks");
    println!("wrote {cp_path}");
    let health_path = "BENCH_health_events.jsonl";
    std::fs::write(health_path, obs_export::health_jsonl(&partition_trace))
        .expect("write health event stream");
    println!("wrote {health_path}");

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base_p50 = extract_number(&baseline, "fig7_spider_p50_ms")
            .expect("baseline lacks fig7_spider_p50_ms");
        assert!(
            spider_p50.is_finite() && base_p50.is_finite() && base_p50 > 0.0,
            "fig7 Spider p50 unavailable (current {spider_p50}, baseline {base_p50})"
        );
        let limit = base_p50 * P50_REGRESSION_TOLERANCE;
        println!(
            "perf gate: fig7 {GATED_SYSTEM} {GATED_REGION} p50 = {spider_p50:.2} ms \
             (baseline {base_p50:.2} ms, limit {limit:.2} ms)"
        );
        if spider_p50 > limit {
            eprintln!(
                "PERF REGRESSION: p50 {spider_p50:.2} ms exceeds baseline {base_p50:.2} ms \
                 by more than {:.0} %",
                (P50_REGRESSION_TOLERANCE - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        // The headline property of adaptive batching must keep holding,
        // not just be recorded.
        if !(low_win && high_win) {
            eprintln!(
                "ADAPTIVE-BATCHING REGRESSION: adaptive no longer beats the static \
                 policies (low-load p50 win: {low_win}, high-load throughput win: {high_win})"
            );
            std::process::exit(1);
        }
        // Commit-channel range certification must keep amortizing: >= 3x
        // the per-slot saturation throughput at range 32.
        println!(
            "perf gate: commit-channel range-32 speedup = {commit_speedup:.2}x \
             (floor {COMMIT_RANGE_SPEEDUP_FLOOR:.1}x)"
        );
        if !(commit_speedup.is_finite() && commit_speedup >= COMMIT_RANGE_SPEEDUP_FLOOR) {
            eprintln!(
                "COMMIT-CHANNEL REGRESSION: range 32 delivers only {commit_speedup:.2}x the \
                 per-slot saturation throughput (floor {COMMIT_RANGE_SPEEDUP_FLOOR:.1}x)"
            );
            std::process::exit(1);
        }
        // The digest-only fan-in must keep the RC receiver off the hash
        // wall: saturation above the floor, and per-slot receiver CPU
        // within the SC ratio ceiling.
        let rx_ratio = rc_dedup_rx_us / sc_rx_us;
        println!(
            "perf gate: dedup RC range-32 saturation = {dedup_slots_range32:.0} slots/s \
             (floor {DEDUP_SATURATION_FLOOR:.0}), receiver {rc_dedup_rx_us:.2} µs/slot = \
             {rx_ratio:.2}x SC (ceiling {DEDUP_RX_CPU_RATIO_CEIL:.1}x)"
        );
        if !(dedup_slots_range32.is_finite() && dedup_slots_range32 > DEDUP_SATURATION_FLOOR) {
            eprintln!(
                "DEDUP REGRESSION: digest-only RC saturates at {dedup_slots_range32:.0} slots/s \
                 at range 32 (floor {DEDUP_SATURATION_FLOOR:.0})"
            );
            std::process::exit(1);
        }
        if !(rx_ratio.is_finite() && rx_ratio <= DEDUP_RX_CPU_RATIO_CEIL) {
            eprintln!(
                "DEDUP REGRESSION: digest-only RC burns {rc_dedup_rx_us:.2} µs of receiver CPU \
                 per slot at range 32 = {rx_ratio:.2}x SC's {sc_rx_us:.2} µs \
                 (ceiling {DEDUP_RX_CPU_RATIO_CEIL:.1}x)"
            );
            std::process::exit(1);
        }
        // The §A.9 overlap must keep lowering IRMC-SC commit latency.
        println!(
            "perf gate: SC overlap p50 = {sc_overlap_p50:.2} ms vs ship-after-bundle \
             {sc_after_bundle_p50:.2} ms"
        );
        if !(sc_overlap_p50.is_finite()
            && sc_after_bundle_p50.is_finite()
            && sc_overlap_p50 < sc_after_bundle_p50)
        {
            eprintln!(
                "SC-OVERLAP REGRESSION: overlapped shipping no longer lowers commit latency \
                 ({sc_overlap_p50:.2} ms vs {sc_after_bundle_p50:.2} ms)"
            );
            std::process::exit(1);
        }
        // The WAN-partition disaster must stay loss-free and bounded:
        // zero lost/duplicated ops, every store converged, goodput back
        // to 90 % of pre-fault within the recovery ceiling.
        let recovery = partition_row.recovery_ms.unwrap_or(f64::INFINITY);
        println!(
            "disaster gate: wan-partition lost={} dup={} diverged={} recovery={:.0} ms \
             (ceiling {DISASTER_RECOVERY_CEIL_MS:.0} ms)",
            partition_row.lost_ops,
            partition_row.duplicated_ops,
            partition_row.diverged_replicas,
            recovery
        );
        if partition_row.lost_ops != 0
            || partition_row.duplicated_ops != 0
            || partition_row.diverged_replicas != 0
            || recovery > DISASTER_RECOVERY_CEIL_MS
        {
            eprintln!(
                "DISASTER REGRESSION: wan-partition lost {} ops, duplicated {}, \
                 {} diverged replicas, recovery {recovery:.0} ms \
                 (gate: 0 / 0 / 0 / <= {DISASTER_RECOVERY_CEIL_MS:.0} ms)",
                partition_row.lost_ops,
                partition_row.duplicated_ops,
                partition_row.diverged_replicas
            );
            std::process::exit(1);
        }
        // CPU attribution must keep naming range signing as the dominant
        // sender cost of the dedup-RC flood — if another operation takes
        // the top slot, either the attribution plumbing broke or the
        // sender picked up an unplanned hot spot.
        match top_sender {
            Some(("range_sign", share)) => {
                println!(
                    "obs gate: dedup-RC range-32 top sender op = range_sign \
                     ({:.0} % of sender CPU)",
                    share * 100.0
                );
            }
            other => {
                eprintln!(
                    "OBS REGRESSION: expected range_sign as the top sender operation of the \
                     dedup-RC range-32 flood, got {other:?}"
                );
                std::process::exit(1);
            }
        }
        // Smoke gate on the traced partition run: the commit channel
        // must have recast unacked ranges after the heal, otherwise the
        // post-partition catch-up worked by accident (or the trace lost
        // the recast instants).
        let recast_after_heal = partition_trace
            .spans
            .iter()
            .any(|e| e.phase == spider_obs::PHASE_RECAST && e.at > dis_cfg.heal_at);
        println!("obs gate: wan-partition trace has a recast span after heal: {recast_after_heal}");
        if !recast_after_heal {
            eprintln!(
                "OBS REGRESSION: traced wan-partition run recorded no commit-channel recast \
                 span after the heal at {} ms",
                dis_cfg.heal_at.as_millis()
            );
            std::process::exit(1);
        }
        // Tail forensics: the p99.9-cohort differential critical path
        // must keep *naming* the tail — a dominant segment matching the
        // baseline, holding at least the floor share. A shifted name
        // means the tail moved (or the edge/span plumbing broke); a
        // diluted share means the profile no longer localizes it.
        let base_tail = extract_string(&baseline, "tail_dominant_segment")
            .expect("baseline lacks tail_dominant_segment");
        println!(
            "tail gate: dominant p99.9 critical-path segment = {tail_dominant} at \
             {:.0} % (baseline {base_tail}, floor {:.0} %)",
            tail_share * 100.0,
            TAIL_DOMINANT_SHARE_FLOOR * 100.0
        );
        if tail_dominant != base_tail || tail_share < TAIL_DOMINANT_SHARE_FLOOR {
            eprintln!(
                "TAIL-FORENSICS REGRESSION: expected {base_tail} to dominate the p99.9 \
                 cohort's critical path with >= {:.0} % share, got {tail_dominant} at {:.0} %",
                TAIL_DOMINANT_SHARE_FLOOR * 100.0,
                tail_share * 100.0
            );
            std::process::exit(1);
        }
        // Watchdog: the partition cut must be detected as a window stall
        // within the ceiling, the heal must produce a recovery event,
        // and the unfaulted fig7 run must produce no stalls at all.
        let stall_deadline = dis_cfg.fault_at + STALL_DETECT_CEIL;
        let stall_ok = first_stall.is_some_and(|at| at >= dis_cfg.fault_at && at <= stall_deadline);
        println!(
            "watchdog gate: stall detected in [{}, {}] ms: {stall_ok}; recovery after \
             heal: {recover_after_heal}; unfaulted fig7 stalls: {fig7_stalls}",
            dis_cfg.fault_at.as_millis(),
            stall_deadline.as_millis()
        );
        if !stall_ok || !recover_after_heal || fig7_stalls != 0 {
            eprintln!(
                "WATCHDOG REGRESSION: first partition stall at {} (must land within {} ms \
                 of the cut at {} ms), recovery after heal: {recover_after_heal}, \
                 stalls in unfaulted fig7 run: {fig7_stalls} (must be 0)",
                first_stall.map_or_else(|| "none".to_owned(), |t| format!("{} ms", t.as_millis())),
                STALL_DETECT_CEIL.as_millis(),
                dis_cfg.fault_at.as_millis()
            );
            std::process::exit(1);
        }
        println!("perf gate: OK");
    }
}
