//! Shared helpers for the figure-regeneration benches.
//!
//! Each bench binary (one per paper figure) does two things:
//!
//! 1. **Regenerates the figure's data** at a laptop-friendly scale and
//!    prints the rows/series the paper reports (this is the primary
//!    purpose — absolute wall-clock numbers of a simulator run are not
//!    the paper's metric).
//! 2. Registers a Criterion measurement of the underlying scenario so
//!    regressions in simulator/protocol performance are visible.

#![forbid(unsafe_code)]

use spider_harness::scenarios::ScenarioCfg;
use spider_types::SimTime;

/// Very small scenario scale used inside Criterion iteration loops.
pub fn bench_scale() -> ScenarioCfg {
    ScenarioCfg {
        clients_per_region: 2,
        rate_per_client: 2.0,
        duration: SimTime::from_secs(5),
        warmup: SimTime::from_secs(1),
        ..ScenarioCfg::default()
    }
}

/// Moderate scale used for the printed figure data.
pub fn figure_scale() -> ScenarioCfg {
    ScenarioCfg {
        clients_per_region: 8,
        rate_per_client: 2.0,
        duration: SimTime::from_secs(25),
        warmup: SimTime::from_secs(3),
        ..ScenarioCfg::default()
    }
}
