//! Deployment-wide configuration.

use spider_consensus::PbftConfig;
use spider_crypto::CostModel;
use spider_irmc::{ChannelMode, Variant};
use spider_types::SimTime;

/// Configuration of a Spider deployment.
///
/// Field constraints follow the paper: the checkpoint interval of a group
/// must stay below the capacity of its input IRMC (§3.4 — liveness), and
/// the agreement window must cover at least one checkpoint interval
/// (Fig 17, `AG-WIN >= ka`).
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Faults tolerated by the agreement group (group size `3·fa + 1`).
    pub fa: usize,
    /// Faults tolerated by each execution group (group size `2·fe + 1`).
    pub fe: usize,
    /// Agreement checkpoint interval `ka`.
    pub ka: u64,
    /// Execution checkpoint interval `ke`.
    pub ke: u64,
    /// Agreement window size (`AG-WIN`): how far ordering may run ahead of
    /// the last stable agreement checkpoint.
    pub ag_win: u64,
    /// Number of trailing execution groups the agreement group may skip
    /// when inserting `Execute`s (§3.5, `0 <= z < ne`).
    pub z: usize,
    /// Capacity of each client's request subchannel (Fig 16 uses 2).
    pub request_capacity: u64,
    /// Capacity of the commit subchannel (must be `>= ke`).
    pub commit_capacity: u64,
    /// IRMC implementation for request channels.
    pub request_variant: Variant,
    /// IRMC implementation and tuning for commit channels: which fan-in
    /// the channel uses plus the knob that matters for it (digest-only
    /// dedup for IRMC-RC, §A.9 overlap for IRMC-SC).
    pub commit_mode: ChannelMode,
    /// Client retry interval (Fig 15 `t_retry`).
    pub client_retry: SimTime,
    /// Retransmissions before a client assumes its execution group is
    /// unavailable (more than `fe` faulty members) and temporarily
    /// switches to another group (§3.1).
    pub group_failover_retries: u32,
    /// How many times a weakly consistent read is retried before being
    /// escalated to a strongly consistent read (§3.3).
    pub weak_read_retries: u32,
    /// View-change timeout of the agreement group's consensus protocol.
    pub view_change_timeout: SimTime,
    /// Maximum consensus batch size.
    pub max_batch: usize,
    /// Maximum payload wire bytes per consensus batch.
    pub batch_max_bytes: usize,
    /// Maximum time a request may linger in the consensus leader's queue
    /// before it is proposed. Zero = propose immediately (legacy greedy).
    pub batch_delay: SimTime,
    /// Rate-adaptive consensus batch sizing: the leader targets the
    /// expected number of arrivals within one `batch_delay` window
    /// instead of always waiting for `max_batch`. Requires a non-zero
    /// `batch_delay`.
    pub adaptive_batching: bool,
    /// Consensus pipelining window: proposed-but-undelivered instances
    /// the leader keeps in flight concurrently.
    pub pipeline_depth: usize,
    /// Maximum slots per commit-channel range certificate: a batch of
    /// consecutively ordered requests is certified with **one** RSA
    /// signature over the Merkle root of its per-slot digests instead of
    /// one signature per slot. 1 disables range certification (legacy
    /// per-slot wire messages).
    pub commit_max_range: usize,
    /// Optional commit-channel range linger (mirrors `batch_delay`):
    /// consecutive single-slot commit sends accumulate into a pending
    /// range for at most this long before shipping. Zero = ship
    /// immediately at consensus batch boundaries (the default; batches
    /// already amortize well).
    pub commit_range_linger: SimTime,
    /// CPU cost model applied by all nodes.
    pub cost: CostModel,
    /// Seed for the shared simulated PKI.
    pub key_seed: u64,
    /// End-to-end request tracing: when set, the deployment harness
    /// enables the simulator's observability recorder so replicas record
    /// request-scoped phase spans, per-node metrics, and CPU attribution.
    /// Off by default — with tracing disabled every record call is a
    /// single branch.
    pub tracing: bool,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        SpiderConfig {
            fa: 1,
            fe: 1,
            ka: 32,
            ke: 32,
            ag_win: 64,
            z: 0,
            request_capacity: 2,
            commit_capacity: 128,
            request_variant: Variant::ReceiverCollect,
            commit_mode: ChannelMode::ReliableCast { dedup: true },
            client_retry: SimTime::from_millis(2_000),
            group_failover_retries: 3,
            weak_read_retries: 2,
            view_change_timeout: SimTime::from_millis(500),
            max_batch: 8,
            batch_max_bytes: 1 << 20,
            batch_delay: SimTime::ZERO,
            adaptive_batching: false,
            pipeline_depth: 32,
            commit_max_range: 32,
            commit_range_linger: SimTime::ZERO,
            cost: CostModel::default(),
            key_seed: 7,
            tracing: false,
        }
    }
}

impl SpiderConfig {
    /// Validates the liveness-critical relations between parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ke > commit_capacity` (execution liveness, §3.4), if
    /// `ag_win < ka` (Fig 17), or if bounds are degenerate.
    pub fn validate(&self) {
        assert!(self.fa >= 1 && self.fe >= 1, "need at least f = 1");
        assert!(
            self.commit_capacity >= self.ke,
            "commit capacity must be >= ke for liveness (§3.4)"
        );
        assert!(self.ag_win >= self.ka, "AG-WIN must be >= ka (Fig 17)");
        assert!(self.request_capacity >= 1);
        assert!(self.max_batch >= 1 && self.batch_max_bytes >= 1 && self.pipeline_depth >= 1);
        assert!(
            !self.adaptive_batching || self.batch_delay > SimTime::ZERO,
            "adaptive batching needs a non-zero batch_delay (the linger cap it adapts within)"
        );
        assert!(self.commit_max_range >= 1, "commit_max_range must be at least 1");
    }

    /// Size of the agreement group.
    pub fn agreement_size(&self) -> usize {
        3 * self.fa + 1
    }

    /// Size of each execution group.
    pub fn execution_size(&self) -> usize {
        2 * self.fe + 1
    }

    /// Sets both IRMC variants (builder-style). The commit channel gets
    /// the variant's default mode ([`ChannelMode::from`]): IRMC-RC without
    /// dedup, IRMC-SC with §A.9 overlap. Use [`Self::with_commit_mode`]
    /// afterwards to tune the commit channel independently.
    #[must_use]
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.request_variant = v;
        self.commit_mode = v.into();
        self
    }

    /// Sets the commit-channel mode (builder-style).
    #[must_use]
    pub fn with_commit_mode(mut self, mode: impl Into<ChannelMode>) -> Self {
        self.commit_mode = mode.into();
        self
    }

    /// Sets the cost model (builder-style).
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets fault thresholds (builder-style).
    #[must_use]
    pub fn with_faults(mut self, fa: usize, fe: usize) -> Self {
        self.fa = fa;
        self.fe = fe;
        self
    }

    /// Enables rate-adaptive consensus batching with the given linger cap
    /// and a larger batch-size ceiling for the adaptive policy to grow
    /// into (builder-style).
    #[must_use]
    pub fn with_adaptive_batching(mut self, delay: SimTime, max_batch: usize) -> Self {
        assert!(delay > SimTime::ZERO, "adaptive batching needs a non-zero linger cap");
        self.adaptive_batching = true;
        self.batch_delay = delay;
        self.max_batch = max_batch;
        self
    }

    /// Enables end-to-end request tracing (builder-style).
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Sets the commit-channel range certification knobs (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `max_range` is zero.
    #[must_use]
    pub fn with_commit_range(mut self, max_range: usize, linger: SimTime) -> Self {
        assert!(max_range >= 1, "commit_max_range must be at least 1");
        self.commit_max_range = max_range;
        self.commit_range_linger = linger;
        self
    }

    /// Applies every consensus tuning knob of this deployment config to a
    /// PBFT configuration. Used by the agreement group and by all PBFT
    /// baselines so scenario sweeps exercise identical batching policies.
    #[must_use]
    pub fn tune_pbft(&self, pbft: PbftConfig) -> PbftConfig {
        pbft.with_cost(self.cost)
            .with_view_change_timeout(self.view_change_timeout)
            .with_max_batch(self.max_batch)
            .with_batch_max_bytes(self.batch_max_bytes)
            .with_batch_delay(self.batch_delay)
            .with_adaptive_batching(self.adaptive_batching)
            .with_pipeline_depth(self.pipeline_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SpiderConfig::default().validate();
        assert_eq!(SpiderConfig::default().agreement_size(), 4);
        assert_eq!(SpiderConfig::default().execution_size(), 3);
    }

    #[test]
    fn f2_sizes() {
        let c = SpiderConfig::default().with_faults(2, 2);
        assert_eq!(c.agreement_size(), 7);
        assert_eq!(c.execution_size(), 5);
    }

    #[test]
    fn tune_pbft_carries_batching_knobs() {
        let c = SpiderConfig::default().with_adaptive_batching(SimTime::from_millis(3), 64);
        c.validate();
        let p = c.tune_pbft(PbftConfig::new(c.fa));
        assert_eq!(p.max_batch, 64);
        assert_eq!(p.batch_delay, SimTime::from_millis(3));
        assert!(p.adaptive_batching);
        assert_eq!(p.pipeline_depth, c.pipeline_depth);
        assert_eq!(p.batch_max_bytes, c.batch_max_bytes);
    }

    #[test]
    #[should_panic(expected = "non-zero batch_delay")]
    fn adaptive_batching_without_linger_rejected() {
        let c = SpiderConfig { adaptive_batching: true, ..SpiderConfig::default() };
        c.validate();
    }

    #[test]
    fn commit_range_knobs_roundtrip() {
        let c = SpiderConfig::default().with_commit_range(64, SimTime::from_millis(2));
        c.validate();
        assert_eq!(c.commit_max_range, 64);
        assert_eq!(c.commit_range_linger, SimTime::from_millis(2));
        assert_eq!(
            c.commit_mode,
            ChannelMode::ReliableCast { dedup: true },
            "digest-only fan-in is on by default"
        );
    }

    #[test]
    fn with_variant_resets_commit_mode_to_the_variant_default() {
        let c = SpiderConfig::default().with_variant(Variant::SenderCollect);
        assert_eq!(c.commit_mode, ChannelMode::SenderCast { overlap: true }, "§A.9 default");
        let c = c.with_commit_mode(ChannelMode::SenderCast { overlap: false });
        assert!(!c.commit_mode.overlap());
        let c = SpiderConfig::default().with_variant(Variant::ReceiverCollect);
        assert_eq!(c.commit_mode, ChannelMode::ReliableCast { dedup: false }, "legacy RC");
    }

    #[test]
    #[should_panic(expected = "commit_max_range")]
    fn zero_commit_range_rejected() {
        let c = SpiderConfig { commit_max_range: 0, ..SpiderConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "commit capacity")]
    fn checkpoint_interval_above_capacity_rejected() {
        let mut c = SpiderConfig::default();
        c.ke = c.commit_capacity + 1;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "AG-WIN")]
    fn agreement_window_below_ka_rejected() {
        let mut c = SpiderConfig::default();
        c.ag_win = c.ka - 1;
        c.validate();
    }
}
