//! Execution replicas (Fig 16).
//!
//! An execution replica validates and forwards client requests into the
//! request channel, applies the `Execute` stream arriving on the commit
//! channel to its local [`Application`], replies to clients of its own
//! group, answers weakly consistent reads directly, and participates in
//! execution checkpointing (with cross-group state transfer for catch-up).

use crate::app::Application;
use crate::checkpoint::{CheckpointComponent, CpAction};
use crate::config::SpiderConfig;
use crate::directory::Directory;
use crate::keys;
use crate::messages::{
    ChannelLeg, CheckpointMsg, ClientRequest, Execute, ExecutePayload, OrderedRequest, Reply,
    SpiderMsg, StateBlob,
};
use bytes::{BufMut, Bytes, BytesMut};
use spider_crypto::Keyring;
use spider_irmc::{
    Action, IrmcConfig, ReceiveResult, ReceiverEndpoint, SendStatus, SenderEndpoint, Variant,
};
use spider_sim::{req_id, Actor, Context, Timer, TimerId, PHASE_DELIVER, PHASE_EXEC};
use spider_types::{ClientId, GroupId, NodeId, OpKind, Position, SeqNr, SimTime, WireSize};
use std::collections::BTreeMap;

/// Timer tags used by execution replicas.
const TAG_SC_TICK: u64 = 1;
const TAG_COMMIT_COLLECTOR: u64 = 2;
const TAG_FETCH_RETRY: u64 = 3;
const TAG_CP_GOSSIP: u64 = 4;

/// Interval of the checkpoint-gossip heartbeat (§A.4.3).
const CP_GOSSIP_INTERVAL: SimTime = SimTime::from_millis(1_000);

/// Fault behaviours injectable into an execution replica for testing §3.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecFault {
    /// Behaves correctly.
    #[default]
    None,
    /// Never forwards client requests to the agreement group (tests that
    /// `fe + 1` correct forwarders suffice).
    SilentForward,
    /// Sends corrupted results to clients (tests `fe + 1` reply matching).
    WrongReply,
}

/// Cached reply state per client (Fig 16 `u[c]`).
#[derive(Debug, Clone)]
enum CachedReply {
    /// A real result for counter `tc`.
    Result { tc: u64, result: Bytes },
    /// A placeholder for a strong read executed at another group (§3.3 /
    /// Lemma A.35): the client must resubmit if it still needs the value.
    Placeholder { tc: u64 },
}

impl CachedReply {
    fn tc(&self) -> u64 {
        match self {
            CachedReply::Result { tc, .. } | CachedReply::Placeholder { tc } => *tc,
        }
    }
}

/// An execution replica actor.
pub struct ExecutionReplica<A: Application> {
    cfg: SpiderConfig,
    group: GroupId,
    me: usize,
    directory: Directory,
    fault: ExecFault,

    // --- Fig 16 protocol state ---
    sn: u64,
    forwarded: BTreeMap<ClientId, u64>,
    replies: BTreeMap<ClientId, CachedReply>,
    app: A,
    req_sender: SenderEndpoint<OrderedRequest>,
    commit_recv: ReceiverEndpoint<Execute>,
    cp: CheckpointComponent,

    /// Outstanding checkpoint fetch (sequence we must reach).
    fetching: Option<SeqNr>,
    timers: BTreeMap<u64, TimerId>,
    /// Executed request count (metrics).
    pub executed: u64,
}

impl<A: Application> ExecutionReplica<A> {
    /// Creates replica `me` of execution group `group`.
    pub fn new(cfg: SpiderConfig, group: GroupId, me: usize, directory: Directory, app: A) -> Self {
        cfg.validate();
        let keyring = Keyring::new(cfg.key_seed);
        let n_exec = cfg.execution_size();
        let n_agree = cfg.agreement_size();
        let req_cfg = IrmcConfig::new(
            cfg.request_variant,
            n_exec,
            cfg.fe,
            n_agree,
            cfg.fa,
            cfg.request_capacity,
        )
        .with_cost(cfg.cost)
        .with_keys(keys::exec_keys(group, n_exec), keys::agreement_keys(n_agree));
        let commit_cfg =
            IrmcConfig::new(cfg.commit_mode, n_agree, cfg.fa, n_exec, cfg.fe, cfg.commit_capacity)
                .with_cost(cfg.cost)
                .with_range(cfg.commit_max_range, cfg.commit_range_linger)
                .with_keys(keys::agreement_keys(n_agree), keys::exec_keys(group, n_exec));
        ExecutionReplica {
            group,
            me,
            directory,
            fault: ExecFault::None,
            sn: 0,
            forwarded: BTreeMap::new(),
            replies: BTreeMap::new(),
            app,
            req_sender: SenderEndpoint::new(req_cfg, me, keyring.clone()),
            commit_recv: ReceiverEndpoint::new(commit_cfg, me, keyring.clone()),
            cp: CheckpointComponent::new(group, me, cfg.fe, keyring, cfg.cost),
            fetching: None,
            timers: BTreeMap::new(),
            executed: 0,
            cfg,
        }
    }

    /// Injects a fault behaviour (tests only; defaults to correct).
    pub fn set_fault(&mut self, fault: ExecFault) {
        self.fault = fault;
    }

    /// Current execution sequence number (last applied).
    pub fn sequence(&self) -> SeqNr {
        SeqNr(self.sn)
    }

    /// Digest of the application state (for cross-replica comparison in
    /// tests).
    pub fn app_digest(&self) -> spider_crypto::Digest {
        self.app.state_digest()
    }

    /// Read-only view of the application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Current commit-channel flow-control window (diagnostics).
    pub fn commit_window(&self) -> spider_irmc::Window {
        self.commit_recv.window(0)
    }

    /// Outstanding checkpoint-fetch target, if any (diagnostics).
    pub fn fetch_target(&self) -> Option<SeqNr> {
        self.fetching
    }

    /// Latest stable checkpoint sequence known locally (diagnostics).
    pub fn stable_checkpoint(&self) -> Option<SeqNr> {
        self.cp.stable_seq()
    }

    // ------------------------------------------------------------------
    // Client requests (Fig 16 L8-22)
    // ------------------------------------------------------------------

    fn on_client_request(&mut self, ctx: &mut Context<'_, SpiderMsg>, req: ClientRequest) {
        // MAC check on every request.
        ctx.charge(self.cfg.cost.hmac(req.wire_size()));
        let c = req.client;

        if req.operation.kind == OpKind::WeakRead {
            // §3.3: answered locally, no ordering.
            ctx.charge(self.cfg.cost.app_execute());
            let result = if self.fault == ExecFault::WrongReply {
                Bytes::from_static(b"corrupted")
            } else {
                self.app.execute_read(&req.operation.op)
            };
            ctx.charge(self.cfg.cost.hmac(result.len()));
            self.reply_to(ctx, c, Reply { tc: req.tc, result, weak: true, resubmit: false });
            return;
        }

        let last = self.forwarded.get(&c).copied().unwrap_or(0);
        if req.tc <= last {
            // Old or retried request: serve from the reply cache.
            match self.replies.get(&c) {
                Some(CachedReply::Result { tc, result }) if *tc == req.tc => {
                    let result = result.clone();
                    ctx.charge(self.cfg.cost.hmac(result.len()));
                    self.reply_to(
                        ctx,
                        c,
                        Reply { tc: req.tc, result, weak: false, resubmit: false },
                    );
                }
                Some(CachedReply::Placeholder { tc }) if *tc == req.tc => {
                    // The read was skipped here (§A.7.9 remark): tell the
                    // client to resubmit under a fresh counter.
                    self.reply_to(
                        ctx,
                        c,
                        Reply { tc: req.tc, result: Bytes::new(), weak: false, resubmit: true },
                    );
                }
                _ => {} // Silent: still being processed.
            }
            return;
        }

        // First sight of this counter: verify the client signature.
        ctx.charge(self.cfg.cost.rsa_verify());
        if self.fault == ExecFault::SilentForward {
            return;
        }
        self.forwarded.insert(c, req.tc);
        let sc = c.0 as u64;
        let pos = Position(req.tc);
        let mut actions = Vec::new();
        self.req_sender.move_window(sc, pos, &mut actions);
        // analyzer: allow(edge-pairing, "apply_request_channel_actions records the edges at the actual transmit sites")
        let status = self.req_sender.send_batch(
            sc,
            pos,
            vec![OrderedRequest { request: req, origin: self.group }],
            &mut actions,
        );
        debug_assert!(status != SendStatus::TooOld(Position(0)));
        self.apply_request_channel_actions(ctx, actions);
    }

    fn reply_to(&self, ctx: &mut Context<'_, SpiderMsg>, c: ClientId, reply: Reply) {
        if let Some(node) = self.directory.client_node(c) {
            // The Reply wire format has no client id, so the edge is
            // recorded explicitly from the addressee we resolved here.
            ctx.edge(node, "reply", req_id(c.0, reply.tc));
            // analyzer: allow(charge-coverage, "callers charge the reply MAC (hmac of result) right before invoking")
            ctx.send(node, SpiderMsg::Reply(reply));
        }
    }

    // ------------------------------------------------------------------
    // Commit channel -> application (Fig 16 L24-40)
    // ------------------------------------------------------------------

    fn drain_commits(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        let mut delivered = false;
        loop {
            match self.commit_recv.try_receive(0, Position(self.sn + 1)) {
                ReceiveResult::Ready(delivery) => {
                    self.apply_execute(ctx, delivery.payload);
                    delivered = true;
                }
                ReceiveResult::TooOld(start) => {
                    // Fell behind: recover via checkpoint (Fig 16 L27-29).
                    self.start_fetch(ctx, SeqNr(start.0.saturating_sub(1)));
                    break;
                }
                ReceiveResult::Pending => break,
            }
        }
        // Receiver-side progress mark: deliveries advance even while the
        // ack window waits for the next checkpoint, so the watchdog's
        // stall clock follows delivery cadence, not checkpoint cadence.
        if delivered && ctx.obs_enabled() {
            ctx.health_mark("commit-channel", self.group.0 as u32);
        }
    }

    fn apply_execute(&mut self, ctx: &mut Context<'_, SpiderMsg>, exec: Execute) {
        debug_assert_eq!(exec.seq.0, self.sn + 1);
        self.sn += 1;
        ctx.charge(self.cfg.cost.msg_overhead());
        match exec.payload {
            ExecutePayload::Full(ordered) => {
                let c = ordered.request.client;
                let tc = ordered.request.tc;
                let rid = req_id(c.0, tc);
                ctx.span_instant(rid, PHASE_DELIVER);
                // At-most-once (Fig 16 L34 / E-Validity II).
                let fresh = self.replies.get(&c).is_none_or(|r| r.tc() < tc);
                if fresh {
                    ctx.span_enter(rid, PHASE_EXEC);
                    ctx.charge_op("execution", "app_execute", self.cfg.cost.app_execute());
                    let result = self.app.execute(&ordered.request.operation.op);
                    ctx.span_exit(rid, PHASE_EXEC);
                    self.executed += 1;
                    ctx.metric_inc("executed", 1);
                    let result = if self.fault == ExecFault::WrongReply {
                        Bytes::from_static(b"corrupted")
                    } else {
                        result
                    };
                    self.replies.insert(c, CachedReply::Result { tc, result: result.clone() });
                    if ordered.origin == self.group {
                        ctx.charge(self.cfg.cost.hmac(result.len()));
                        self.reply_to(ctx, c, Reply { tc, result, weak: false, resubmit: false });
                    }
                }
            }
            ExecutePayload::Placeholder { client, tc, .. } => {
                // A strong read executed at another group: remember the
                // counter so duplicates are skipped (Lemma A.35).
                let fresh = self.replies.get(&client).is_none_or(|r| r.tc() < tc);
                if fresh {
                    self.replies.insert(client, CachedReply::Placeholder { tc });
                }
            }
        }
        if self.sn.is_multiple_of(self.cfg.ke) {
            let snapshot = self.encode_snapshot();
            let mut actions = Vec::new();
            self.cp.generate(SeqNr(self.sn), snapshot, &mut actions);
            self.apply_cp_actions(ctx, actions);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints (Fig 16 L42-48, §3.4/§3.5)
    // ------------------------------------------------------------------

    /// Serializes `(sn, replies, app)` into the snapshot format.
    fn encode_snapshot(&self) -> Bytes {
        let app = self.app.snapshot();
        let mut buf = BytesMut::new();
        buf.put_u64(self.sn);
        buf.put_u32(self.replies.len() as u32);
        let mut entries: Vec<(&ClientId, &CachedReply)> = self.replies.iter().collect();
        entries.sort_by_key(|(c, _)| c.0);
        for (c, r) in entries {
            buf.put_u32(c.0);
            match r {
                CachedReply::Result { tc, result } => {
                    buf.put_u8(0);
                    buf.put_u64(*tc);
                    buf.put_u32(result.len() as u32);
                    buf.put_slice(result);
                }
                CachedReply::Placeholder { tc } => {
                    buf.put_u8(1);
                    buf.put_u64(*tc);
                }
            }
        }
        buf.put_u32(app.len() as u32);
        buf.put_slice(&app);
        buf.freeze()
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Option<u64> {
        use bytes::Buf;
        let mut buf = bytes;
        if buf.remaining() < 12 {
            return None;
        }
        let sn = buf.get_u64();
        let n = buf.get_u32() as usize;
        let mut replies = BTreeMap::new();
        for _ in 0..n {
            if buf.remaining() < 13 {
                return None;
            }
            let c = ClientId(buf.get_u32());
            match buf.get_u8() {
                0 => {
                    let tc = buf.get_u64();
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return None;
                    }
                    let result = Bytes::copy_from_slice(buf.get(..len)?);
                    buf.advance(len);
                    replies.insert(c, CachedReply::Result { tc, result });
                }
                1 => {
                    let tc = buf.get_u64();
                    replies.insert(c, CachedReply::Placeholder { tc });
                }
                _ => return None,
            }
        }
        if buf.remaining() < 4 {
            return None;
        }
        let app_len = buf.get_u32() as usize;
        if buf.remaining() < app_len {
            return None;
        }
        self.app.restore(buf.get(..app_len)?);
        self.replies = replies;
        Some(sn)
    }

    fn start_fetch(&mut self, ctx: &mut Context<'_, SpiderMsg>, need: SeqNr) {
        if self.fetching.is_some_and(|s| s >= need) {
            return;
        }
        self.fetching = Some(need);
        let mut actions = Vec::new();
        self.cp.fetch(need, &mut actions);
        self.apply_cp_actions(ctx, actions);
        // Retry while we stay behind.
        self.arm_timer(ctx, TAG_FETCH_RETRY, SimTime::from_millis(500));
    }

    fn on_stable_checkpoint(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        seq: SeqNr,
        state: Option<Bytes>,
    ) {
        // Allow garbage collection of the commit channel (Fig 16 L44)
        // regardless of whether we are ahead or behind.
        let mut actions = Vec::new();
        self.commit_recv.move_window(0, Position(seq.0 + 1), &mut actions);
        self.apply_commit_channel_actions(ctx, actions);
        if seq.0 > self.sn {
            match state {
                Some(bytes) => {
                    ctx.charge(self.cfg.cost.hmac(bytes.len()));
                    if let Some(sn) = self.restore_snapshot(&bytes) {
                        debug_assert_eq!(sn, seq.0);
                        self.sn = seq.0;
                        if self.fetching.is_some_and(|f| f <= seq) {
                            self.fetching = None;
                        }
                    }
                }
                None => {
                    // A stable checkpoint exists somewhere ahead of us but
                    // we lack the snapshot: fetch it (§3.4).
                    self.start_fetch(ctx, seq);
                }
            }
        } else if self.fetching.is_some_and(|f| f <= SeqNr(self.sn)) {
            self.fetching = None;
        }
        self.drain_commits(ctx);
    }

    // ------------------------------------------------------------------
    // Action plumbing
    // ------------------------------------------------------------------

    fn apply_request_channel_actions(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        actions: Vec<Action<OrderedRequest>>,
    ) {
        let agreement = self.directory.agreement();
        let peers = self.directory.group_replicas(self.group);
        for a in actions {
            match a {
                Action::ToReceiver { to, msg } => {
                    if let Some(node) = agreement.get(to) {
                        let msg = SpiderMsg::RequestChannel {
                            group: self.group,
                            leg: ChannelLeg::ToReceiver(msg),
                        };
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::ToPeerSender { to, msg } => {
                    if let Some(node) = peers.get(to) {
                        let msg = SpiderMsg::RequestChannel {
                            group: self.group,
                            leg: ChannelLeg::Peer(msg),
                        };
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::Charge(c, op) => ctx.charge_op("req-channel", op, c),
                Action::WindowMoved { .. } | Action::Unblocked { .. } => {
                    ctx.health_mark("req-channel", self.group.0 as u32);
                }
                _ => {}
            }
        }
        if ctx.obs_enabled() {
            ctx.health_pending("req-channel", self.group.0 as u32, self.req_sender.unacked_slots());
        }
        // RC request channels have no standing heartbeat: keep the tick
        // armed only while submitted requests await receiver-window
        // acknowledgement, so a partition that swallowed the one-shot
        // casts cannot wedge the channel, yet idle runs still quiesce.
        if self.cfg.request_variant != Variant::SenderCollect && self.req_sender.has_unacked() {
            self.ensure_timer(ctx, TAG_SC_TICK, SimTime::from_millis(20));
        }
    }

    fn apply_commit_channel_actions(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        actions: Vec<Action<Execute>>,
    ) {
        let agreement = self.directory.agreement();
        let mut poll = false;
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    if let Some(node) = agreement.get(to) {
                        let msg = SpiderMsg::CommitChannel {
                            group: self.group,
                            leg: ChannelLeg::ToSender(msg),
                        };
                        // Window moves/acks carry no request payload, so
                        // this records no edges; kept for uniform pairing.
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::Ready { .. } | Action::WindowMoved { .. } => poll = true,
                Action::SetTimer { token, delay } => {
                    debug_assert_eq!(token, 0, "single commit subchannel");
                    self.arm_timer(ctx, TAG_COMMIT_COLLECTOR, delay);
                }
                Action::Charge(c, op) => ctx.charge_op("commit-channel", op, c),
                _ => {}
            }
        }
        if poll {
            self.drain_commits(ctx);
        }
    }

    fn apply_cp_actions(&mut self, ctx: &mut Context<'_, SpiderMsg>, actions: Vec<CpAction>) {
        let mut stable = Vec::new();
        for a in actions {
            match a {
                CpAction::ToGroup(msg) => {
                    let peers = self.directory.group_replicas(self.group);
                    let is_fetch = matches!(msg, CheckpointMsg::FetchRequest { .. });
                    for (i, node) in peers.iter().enumerate() {
                        if i != self.me {
                            // analyzer: allow(edge-pairing, "checkpoint gossip and state transfer carry no per-request payload; request latency never blocks on them")
                            ctx.send(
                                *node,
                                SpiderMsg::Checkpoint {
                                    group: self.group,
                                    msg: msg.clone(),
                                    state: None,
                                },
                            );
                        }
                    }
                    // Fetches also go to other execution groups (§3.5):
                    // a freshly added or skipped group needs foreign state.
                    if is_fetch {
                        for g in self.directory.active_groups() {
                            if g == self.group {
                                continue;
                            }
                            for node in self.directory.group_replicas(g) {
                                ctx.send(
                                    node,
                                    SpiderMsg::Checkpoint {
                                        group: self.group,
                                        msg: msg.clone(),
                                        state: None,
                                    },
                                );
                            }
                        }
                    }
                }
                CpAction::ToPeer { group, idx, msg, state } => {
                    let nodes = if group == self.group {
                        self.directory.group_replicas(self.group)
                    } else {
                        self.directory.group_replicas(group)
                    };
                    if let Some(node) = nodes.get(idx) {
                        let blob = state.map(|bytes| StateBlob {
                            seq: match msg {
                                CheckpointMsg::FetchResponse { seq, .. } => seq,
                                _ => SeqNr(0),
                            },
                            bytes,
                        });
                        ctx.send(
                            *node,
                            SpiderMsg::Checkpoint { group: self.group, msg, state: blob },
                        );
                    }
                }
                CpAction::Stable { seq, state } => stable.push((seq, state)),
                CpAction::Charge(c, op) => ctx.charge_op("checkpoint", op, c),
            }
        }
        for (seq, state) in stable {
            self.on_stable_checkpoint(ctx, seq, state);
        }
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }

    /// Arms `tag` only if it is not already pending (unlike [`Self::arm_timer`],
    /// which reschedules).
    fn ensure_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64, delay: SimTime) {
        self.timers.entry(tag).or_insert_with(|| ctx.set_timer(delay, tag));
    }

    fn replica_index_in(&self, group: GroupId, node: NodeId) -> Option<usize> {
        if group == keys::AGREEMENT_GROUP {
            self.directory.agreement().iter().position(|n| *n == node)
        } else {
            self.directory.group_replicas(group).iter().position(|n| *n == node)
        }
    }
}

impl<A: Application> Actor<SpiderMsg> for ExecutionReplica<A> {
    fn on_start(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        if self.cfg.request_variant == Variant::SenderCollect {
            self.arm_timer(ctx, TAG_SC_TICK, SimTime::from_millis(20));
        }
        self.arm_timer(ctx, TAG_CP_GOSSIP, CP_GOSSIP_INTERVAL);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SpiderMsg>, from: NodeId, msg: SpiderMsg) {
        ctx.charge(self.cfg.cost.msg_overhead());
        match msg {
            SpiderMsg::Request(req) => self.on_client_request(ctx, req),
            SpiderMsg::RequestChannel { group, leg } if group == self.group => {
                match leg {
                    // IRMC-SC shares from our own sender group.
                    ChannelLeg::Peer(m) => {
                        let Some(idx) = self.replica_index_in(self.group, from) else {
                            return;
                        };
                        let mut actions = Vec::new();
                        let _ = self.req_sender.on_peer_message(idx, m, &mut actions);
                        self.apply_request_channel_actions(ctx, actions);
                    }
                    // Window moves / collector selections from the
                    // agreement replicas (the channel's receiver side).
                    ChannelLeg::ToSender(m) => {
                        let Some(idx) = self.replica_index_in(keys::AGREEMENT_GROUP, from) else {
                            return;
                        };
                        let mut actions = Vec::new();
                        let _ = self.req_sender.on_receiver_message(idx, m, &mut actions);
                        self.apply_request_channel_actions(ctx, actions);
                    }
                    // We are the sender side; receiver frames are not ours.
                    ChannelLeg::ToReceiver(_) => {}
                }
            }
            SpiderMsg::RequestChannel { .. } => {}
            SpiderMsg::CommitChannel { group, leg } if group == self.group => {
                let Some(idx) = self.replica_index_in(keys::AGREEMENT_GROUP, from) else {
                    return;
                };
                if let ChannelLeg::ToReceiver(m) = leg {
                    let mut actions = Vec::new();
                    let _ = self.commit_recv.on_sender_message(ctx.now(), idx, m, &mut actions);
                    self.apply_commit_channel_actions(ctx, actions);
                }
            }
            SpiderMsg::CommitChannel { .. } => {}
            SpiderMsg::Checkpoint { group, msg, state } => {
                self.on_checkpoint_msg(ctx, from, group, msg, state)
            }
            SpiderMsg::Reply(_) | SpiderMsg::Agreement(_) | SpiderMsg::Admin(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        match timer.tag {
            TAG_SC_TICK => {
                let mut actions = Vec::new();
                self.req_sender.tick(ctx.now(), &mut actions);
                self.apply_request_channel_actions(ctx, actions);
                // SC keeps a standing heartbeat; RC re-arms only while
                // content is undelivered (recast liveness + quiescence).
                if self.cfg.request_variant == Variant::SenderCollect
                    || self.req_sender.has_unacked()
                {
                    self.arm_timer(ctx, TAG_SC_TICK, SimTime::from_millis(20));
                }
            }
            TAG_COMMIT_COLLECTOR => {
                let mut actions = Vec::new();
                // A `CarrierTimeout` is informational: `actions` already
                // carries the refetch traffic that works around the slow
                // or faulty carrier.
                let _ = self.commit_recv.on_timer(0, ctx.now(), &mut actions);
                self.apply_commit_channel_actions(ctx, actions);
            }
            TAG_FETCH_RETRY => {
                if let Some(need) = self.fetching {
                    self.fetching = None;
                    self.start_fetch(ctx, need);
                }
            }
            TAG_CP_GOSSIP => {
                let mut actions = Vec::new();
                self.cp.gossip(&mut actions);
                self.apply_cp_actions(ctx, actions);
                self.arm_timer(ctx, TAG_CP_GOSSIP, CP_GOSSIP_INTERVAL);
            }
            _ => {}
        }
    }
}

impl<A: Application> ExecutionReplica<A> {
    fn on_checkpoint_msg(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        from: NodeId,
        sender_group: GroupId,
        msg: CheckpointMsg,
        state: Option<StateBlob>,
    ) {
        let mut actions = Vec::new();
        match msg {
            CheckpointMsg::Announce { seq, state_hash, sig } => {
                if sender_group != self.group {
                    return; // Announcements are group-internal.
                }
                let Some(idx) = self.replica_index_in(self.group, from) else {
                    return;
                };
                self.cp.on_announce(idx, seq, state_hash, sig, &mut actions);
            }
            CheckpointMsg::FetchRequest { seq } => {
                // May come from our own group or a foreign execution
                // group (§3.5). Answer with our stable state either way.
                let Some(idx) = self.replica_index_in(sender_group, from) else {
                    return;
                };
                self.cp.on_fetch_request(sender_group, idx, seq, &mut actions);
            }
            CheckpointMsg::FetchResponse { seq, state_hash, cert, .. } => {
                let Some(blob) = state else { return };
                let provider_keys = keys::group_keys(sender_group, self.cfg.execution_size());
                self.cp.on_fetch_response(
                    sender_group,
                    &provider_keys,
                    seq,
                    state_hash,
                    cert,
                    blob.bytes,
                    &mut actions,
                );
            }
        }
        self.apply_cp_actions(ctx, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;
    use crate::directory::{Directory, GroupInfo};

    fn replica() -> ExecutionReplica<CounterApp> {
        let dir = Directory::new();
        dir.register_group(
            GroupId(0),
            GroupInfo {
                replicas: vec![NodeId(0), NodeId(1), NodeId(2)],
                region: spider_types::RegionId(0),
                active: true,
            },
        );
        ExecutionReplica::new(SpiderConfig::default(), GroupId(0), 0, dir, CounterApp::default())
    }

    #[test]
    fn execution_snapshot_roundtrip_preserves_replies_and_app() {
        let mut a = replica();
        a.sn = 16;
        a.app.execute(b"add:5");
        a.replies
            .insert(ClientId(1), CachedReply::Result { tc: 4, result: Bytes::from_static(b"5") });
        a.replies.insert(ClientId(2), CachedReply::Placeholder { tc: 9 });
        let snap = a.encode_snapshot();

        let mut b = replica();
        let sn = b.restore_snapshot(&snap).expect("valid snapshot");
        assert_eq!(sn, 16);
        assert_eq!(b.app.value(), 5);
        match b.replies.get(&ClientId(1)) {
            Some(CachedReply::Result { tc, result }) => {
                assert_eq!(*tc, 4);
                assert_eq!(&result[..], b"5");
            }
            other => panic!("unexpected cache entry {other:?}"),
        }
        assert!(matches!(b.replies.get(&ClientId(2)), Some(CachedReply::Placeholder { tc: 9 })));
        // Digest equality: the roundtripped snapshot re-encodes
        // identically (CP-E-Equivalence A.23 at the encoding level). The
        // caller is responsible for adopting the sequence number.
        b.sn = sn;
        assert_eq!(a.encode_snapshot(), b.encode_snapshot());
    }

    #[test]
    fn execution_snapshot_rejects_garbage() {
        let mut a = replica();
        assert!(a.restore_snapshot(&[0, 1, 2]).is_none());
        assert!(a.restore_snapshot(&[]).is_none());
    }

    #[test]
    fn cached_reply_counter_accessor() {
        assert_eq!(CachedReply::Result { tc: 3, result: Bytes::new() }.tc(), 3);
        assert_eq!(CachedReply::Placeholder { tc: 8 }.tc(), 8);
    }
}
