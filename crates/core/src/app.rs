//! The application interface (§A.4.4): a deterministic state machine with
//! snapshot support.

use bytes::Bytes;
use spider_crypto::{Digest, Digestible};

/// A deterministic replicated application (RSM, §A.4.4).
///
/// Implementations must be deterministic: identical operation sequences
/// produce identical states and replies on every replica. Snapshots must
/// capture the full state so a trailing replica can catch up without
/// re-executing (§3.4).
pub trait Application: 'static {
    /// Executes an operation that may modify state; returns the reply.
    fn execute(&mut self, op: &[u8]) -> Bytes;

    /// Executes a read-only operation against current (possibly stale
    /// relative to the global order) state. Used for weakly consistent
    /// reads, which bypass agreement (§3.3).
    fn execute_read(&self, op: &[u8]) -> Bytes;

    /// Serializes the full application state.
    fn snapshot(&self) -> Bytes;

    /// Replaces the state with a snapshot produced by [`Application::snapshot`].
    fn restore(&mut self, snapshot: &[u8]);

    /// Digest of the current state (defaults to hashing the snapshot).
    fn state_digest(&self) -> Digest {
        Digest::of_bytes(&self.snapshot())
    }
}

/// A minimal test application: a counter supporting `add:<n>` writes and
/// `get` reads. Deterministic and snapshotable.
///
/// # Examples
///
/// ```
/// use spider::{Application, CounterApp};
///
/// let mut app = CounterApp::default();
/// app.execute(b"add:5");
/// assert_eq!(&app.execute_read(b"get")[..], b"5");
/// ```
#[derive(Debug, Default, Clone)]
pub struct CounterApp {
    value: i64,
}

impl CounterApp {
    /// Current counter value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl Application for CounterApp {
    fn execute(&mut self, op: &[u8]) -> Bytes {
        // Operations may be padded to a target wire size; trim first.
        let s = std::str::from_utf8(op).unwrap_or("").trim();
        if let Some(n) = s.strip_prefix("add:") {
            self.value += n.trim().parse::<i64>().unwrap_or(0);
            Bytes::from(self.value.to_string())
        } else if s == "get" {
            Bytes::from(self.value.to_string())
        } else {
            Bytes::from_static(b"err")
        }
    }

    fn execute_read(&self, op: &[u8]) -> Bytes {
        let s = std::str::from_utf8(op).unwrap_or("").trim();
        if s == "get" {
            Bytes::from(self.value.to_string())
        } else {
            Bytes::from_static(b"err")
        }
    }

    fn snapshot(&self) -> Bytes {
        Bytes::from(self.value.to_be_bytes().to_vec())
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&snapshot[..8]);
        self.value = i64::from_be_bytes(buf);
    }
}

impl Digestible for CounterApp {
    fn digest(&self) -> Digest {
        self.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_deterministic() {
        let mut a = CounterApp::default();
        let mut b = CounterApp::default();
        for op in ["add:3", "add:-1", "add:10"] {
            assert_eq!(a.execute(op.as_bytes()), b.execute(op.as_bytes()));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut a = CounterApp::default();
        a.execute(b"add:41");
        let snap = a.snapshot();
        let mut b = CounterApp::default();
        b.restore(&snap);
        assert_eq!(b.value(), 41);
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn reads_do_not_modify() {
        let mut a = CounterApp::default();
        a.execute(b"add:1");
        let before = a.state_digest();
        let _ = a.execute_read(b"get");
        assert_eq!(a.state_digest(), before);
    }

    #[test]
    fn unknown_ops_return_err() {
        let mut a = CounterApp::default();
        assert_eq!(&a.execute(b"frobnicate")[..], b"err");
        assert_eq!(&a.execute_read(b"frobnicate")[..], b"err");
    }
}
