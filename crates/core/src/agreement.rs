//! Agreement replicas (Fig 17).
//!
//! An agreement replica pulls new requests out of the request channels
//! (one per execution group, one subchannel per client), feeds them into
//! the consensus black-box, assigns agreement sequence numbers to the
//! delivered total order, pushes `Execute`s into every commit channel
//! (skipping up to `z` trailing groups, §3.5), checkpoints `(t, hist)`
//! periodically, and applies ordered reconfiguration commands (§3.6).

use crate::checkpoint::{CheckpointComponent, CpAction};
use crate::config::SpiderConfig;
use crate::directory::Directory;
use crate::keys;
use crate::messages::{
    AdminCommand, ChannelLeg, CheckpointMsg, Execute, ExecutePayload, OrderItem, OrderedRequest,
    SpiderMsg, StateBlob,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spider_consensus::{Input, Output, Pbft, PbftConfig, TimerToken};
use spider_crypto::Keyring;
use spider_irmc::{
    Action, IrmcConfig, ReceiveResult, ReceiverEndpoint, SenderEndpoint, Variant, OP_RECAST,
};
use spider_sim::{
    req_id, Actor, Context, Timer, TimerId, PHASE_BATCH, PHASE_COMMIT, PHASE_PROPOSE, PHASE_RECAST,
    PHASE_SHIP,
};
use spider_types::{ClientId, GroupId, NodeId, OpKind, Position, SeqNr, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Timer tags (consensus tokens are offset to avoid collisions).
const TAG_PBFT_BASE: u64 = 100;
const TAG_SC_TICK: u64 = 1;
const TAG_FETCH_RETRY: u64 = 3;
const TAG_CP_GOSSIP: u64 = 4;

/// Interval of the checkpoint-gossip heartbeat (§A.4.3).
const CP_GOSSIP_INTERVAL: SimTime = SimTime::from_millis(1_000);

/// Decoded agreement snapshot: `(sn, t, hist)` as written by
/// `encode_snapshot`.
type DecodedSnapshot = (u64, BTreeMap<ClientId, u64>, VecDeque<(u64, OrderItem)>);

/// Fault behaviours injectable into an agreement replica (§3.7 tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AgreementFault {
    /// Behaves correctly.
    #[default]
    None,
    /// Sends corrupted `Execute` messages into every commit channel. The
    /// IRMC's `fa + 1` matching-content rule must prevent delivery of the
    /// manipulated ordering (§3.7).
    CorruptExecutes,
}

/// The pair of IRMC endpoints an agreement replica maintains per
/// execution group (§3.2: one request channel + one commit channel).
struct GroupChannels {
    req_recv: ReceiverEndpoint<OrderedRequest>,
    commit_send: SenderEndpoint<Execute>,
}

/// An agreement replica actor.
pub struct AgreementReplica {
    cfg: SpiderConfig,
    me: usize,
    directory: Directory,
    keyring: Keyring,

    pbft: Pbft<OrderItem>,
    /// Last assigned agreement sequence number (Fig 17 `sn`).
    sn: u64,
    /// Upper bound of the agreement window (Fig 17 `win`).
    win_upper: u64,
    /// Counter value of the latest agreed request per client (`t`).
    t: BTreeMap<ClientId, u64>,
    /// Next expected request counter per client (`t+`).
    t_next: BTreeMap<ClientId, u64>,
    /// The last `commit_capacity` ordered items (Fig 17 `hist`).
    hist: VecDeque<(u64, OrderItem)>,
    channels: BTreeMap<GroupId, GroupChannels>,
    cp: CheckpointComponent,
    /// Items delivered by consensus awaiting sequence assignment (the
    /// sans-IO equivalent of blocking the deliver callback on `win` and
    /// the `ne - z` commit-channel rule).
    backlog: VecDeque<(u64, OrderItem, bool)>, // (pbft instance, item, last of instance)
    /// Delivered consensus instances and the highest agreement sequence
    /// number each produced (for black-box gc).
    instance_map: VecDeque<(u64, u64)>,
    timers: BTreeMap<u64, TimerId>,
    fetching: bool,
    fault: AgreementFault,
    /// Ordered request count (metrics).
    pub ordered: u64,
}

impl AgreementReplica {
    /// Creates agreement replica `me`. `initial_groups` are the execution
    /// groups active from the start.
    pub fn new(
        cfg: SpiderConfig,
        me: usize,
        directory: Directory,
        initial_groups: &[GroupId],
    ) -> Self {
        cfg.validate();
        let keyring = Keyring::new(cfg.key_seed);
        let pbft_cfg = cfg.tune_pbft(PbftConfig::new(cfg.fa));
        let mut me_new = AgreementReplica {
            me,
            directory,
            keyring: keyring.clone(),
            pbft: Pbft::new(pbft_cfg, me),
            sn: 0,
            win_upper: cfg.ag_win,
            t: BTreeMap::new(),
            t_next: BTreeMap::new(),
            hist: VecDeque::new(),
            channels: BTreeMap::new(),
            cp: CheckpointComponent::new(keys::AGREEMENT_GROUP, me, cfg.fa, keyring, cfg.cost),
            backlog: VecDeque::new(),
            instance_map: VecDeque::new(),
            timers: BTreeMap::new(),
            fetching: false,
            fault: AgreementFault::None,
            ordered: 0,
            cfg,
        };
        for g in initial_groups {
            me_new.create_channels(*g);
        }
        me_new
    }

    fn create_channels(&mut self, group: GroupId) {
        let n_exec = self.cfg.execution_size();
        let n_agree = self.cfg.agreement_size();
        let req_cfg = IrmcConfig::new(
            self.cfg.request_variant,
            n_exec,
            self.cfg.fe,
            n_agree,
            self.cfg.fa,
            self.cfg.request_capacity,
        )
        .with_cost(self.cfg.cost)
        .with_keys(keys::exec_keys(group, n_exec), keys::agreement_keys(n_agree));
        let commit_cfg = IrmcConfig::new(
            self.cfg.commit_mode,
            n_agree,
            self.cfg.fa,
            n_exec,
            self.cfg.fe,
            self.cfg.commit_capacity,
        )
        .with_cost(self.cfg.cost)
        .with_range(self.cfg.commit_max_range, self.cfg.commit_range_linger)
        .with_keys(keys::agreement_keys(n_agree), keys::exec_keys(group, n_exec));
        self.channels.insert(
            group,
            GroupChannels {
                req_recv: ReceiverEndpoint::new(req_cfg, self.me, self.keyring.clone()),
                commit_send: SenderEndpoint::new(commit_cfg, self.me, self.keyring.clone()),
            },
        );
    }

    /// Injects a fault behaviour (tests only; defaults to correct).
    pub fn set_fault(&mut self, fault: AgreementFault) {
        self.fault = fault;
    }

    /// Applies the configured Byzantine mutation to an outgoing Execute.
    fn maybe_corrupt(&self, exec: Execute) -> Execute {
        match self.fault {
            AgreementFault::None => exec,
            AgreementFault::CorruptExecutes => {
                let mut exec = exec;
                if let ExecutePayload::Full(req) = &mut exec.payload {
                    req.request.operation.op = bytes::Bytes::from_static(b"add:666");
                }
                exec
            }
        }
    }

    /// Last assigned agreement sequence number.
    pub fn sequence(&self) -> SeqNr {
        SeqNr(self.sn)
    }

    /// Current consensus view (for leader-location instrumentation).
    pub fn view(&self) -> spider_types::ViewNr {
        self.pbft.view()
    }

    // ------------------------------------------------------------------
    // Request intake (Fig 17 L13-22)
    // ------------------------------------------------------------------

    fn poll_client(&mut self, ctx: &mut Context<'_, SpiderMsg>, group: GroupId, client: ClientId) {
        let mut delivered = false;
        loop {
            let next = *self.t_next.entry(client).or_insert(1);
            let Some(ch) = self.channels.get_mut(&group) else {
                break;
            };
            match ch.req_recv.try_receive(client.0 as u64, Position(next)) {
                ReceiveResult::Ready(delivery) => {
                    // The channel guarantees fe+1 execution replicas vouch
                    // for the request; verify the client's own signature
                    // before ordering (A-Validity).
                    ctx.charge_op("agreement", "req_verify", self.cfg.cost.rsa_verify());
                    ctx.span_instant(req_id(client.0, next), PHASE_PROPOSE);
                    delivered = true;
                    self.t_next.insert(client, next + 1);
                    let mut out = Vec::new();
                    self.pbft.handle(
                        ctx.now(),
                        Input::Order(OrderItem::Request(delivery.payload)),
                        &mut out,
                    );
                    self.apply_pbft_outputs(ctx, out);
                }
                ReceiveResult::TooOld(p) => {
                    // The client has moved on (Fig 17 L16-18).
                    self.t_next.insert(client, p.0);
                }
                ReceiveResult::Pending => break,
            }
        }
        // Receiver-side progress mark (see `drain_commits`): deliveries,
        // not window moves, are what a healthy low-rate channel shows.
        if delivered && ctx.obs_enabled() {
            ctx.health_mark("req-channel", group.0 as u32);
        }
    }

    // ------------------------------------------------------------------
    // Consensus plumbing
    // ------------------------------------------------------------------

    fn apply_pbft_outputs(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        outputs: Vec<Output<OrderItem>>,
    ) {
        let agreement = self.directory.agreement();
        for o in outputs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(node) = agreement.get(to) {
                        let msg = SpiderMsg::Agreement(msg);
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Output::Deliver { seq, batch } => {
                    let n = batch.len();
                    for (i, item) in batch.into_iter().enumerate() {
                        if let OrderItem::Request(req) = &item {
                            let rid = req_id(req.request.client.0, req.request.tc);
                            ctx.span_instant(rid, PHASE_COMMIT);
                        }
                        self.backlog.push_back((seq.0, item, i + 1 == n));
                    }
                    if n == 0 {
                        // No-op instance: completes immediately at the
                        // current sequence number.
                        self.instance_map.push_back((seq.0, self.sn));
                    }
                }
                Output::SetTimer { token, delay } => {
                    self.arm_timer(ctx, TAG_PBFT_BASE + token.0, delay);
                }
                Output::CancelTimer { token } => {
                    if let Some(id) = self.timers.remove(&(TAG_PBFT_BASE + token.0)) {
                        ctx.cancel_timer(id);
                    }
                }
                Output::Charge(c) => ctx.charge_op("consensus", "handle", c),
                Output::ViewChanged { view, .. } => {
                    ctx.health_view(view.0);
                }
                Output::Skipped { .. } => {
                    // We missed decided instances: catch up via the
                    // agreement checkpoint (§3.4).
                    self.start_fetch(ctx);
                }
            }
        }
        self.process_backlog(ctx);
    }

    /// Assigns agreement sequence numbers to delivered items, respecting
    /// the agreement window and the `ne - z` commit-channel rule (§3.5).
    ///
    /// Consecutive ordered requests are collected into contiguous runs
    /// and flushed into every commit channel through **one**
    /// `send_batch` — one range certificate (one RSA signature) per run
    /// instead of one per slot. Runs cut at admin commands, checkpoint
    /// boundaries (`ka`), and — so boundaries re-synchronize across
    /// replicas — at absolute multiples of `commit_max_range`; those cut
    /// points derive from the agreed order alone and are identical on
    /// every correct replica, which keeps range boundaries aligned so
    /// IRMC-SC share collection (and the RC dedup vouch quorum) combines
    /// across the group. A run can additionally cut at replica-local
    /// back-pressure or backlog exhaustion, which may transiently
    /// misalign boundaries between replicas; the grid cut bounds the
    /// divergence to one grid cell, and the IRMCs recover the stretch
    /// that is already out — IRMC-SC by per-slot share fallback
    /// (`SenderEndpoint::tick`), RC dedup by refetching each voucher's
    /// own copy and converging on per-slot quorums receiver-side.
    fn process_backlog(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        loop {
            let mut run: Vec<(u64, OrderedRequest, OrderItem)> = Vec::new();
            let mut completed: Vec<(u64, u64)> = Vec::new();
            let max_run = self.cfg.commit_max_range.max(1);
            let mut stalled = false;
            let mut applied_admin = false;
            while run.len() < max_run {
                let Some((instance, item, last)) = self.backlog.front().cloned() else {
                    break;
                };
                match &item {
                    OrderItem::Admin(cmd) => {
                        if !run.is_empty() {
                            break; // Flush the run before reconfiguring.
                        }
                        let cmd = cmd.clone();
                        self.backlog.pop_front();
                        self.apply_admin(ctx, cmd);
                        applied_admin = true;
                        if last {
                            self.instance_map.push_back((instance, self.sn));
                        }
                    }
                    OrderItem::Request(req) => {
                        let s = self.sn + run.len() as u64 + 1;
                        if s > self.win_upper {
                            stalled = true; // Fig 17 L27: wait for a checkpoint.
                            break;
                        }
                        // §3.5: at least ne - z commit channels must accept
                        // the Execute at position s without blocking.
                        let groups = self.directory.active_groups();
                        let ne = groups.len();
                        if ne > 0 {
                            let sendable = groups
                                .iter()
                                .filter(|g| {
                                    self.channels.get(g).is_some_and(|ch| {
                                        !ch.commit_send.window(0).is_above(Position(s))
                                    })
                                })
                                .count();
                            if sendable + self.cfg.z < ne {
                                stalled = true; // Resume on window movement.
                                break;
                            }
                        }
                        let req = req.clone();
                        self.backlog.pop_front();
                        if last {
                            completed.push((instance, s));
                        }
                        let at_checkpoint = s.is_multiple_of(self.cfg.ka);
                        // Grid cut: never straddle a multiple of the range
                        // cap, so replicas whose runs diverged at local
                        // back-pressure re-align at the next grid line.
                        let at_grid = s.is_multiple_of(max_run as u64);
                        run.push((s, req, item));
                        if at_checkpoint || at_grid {
                            break;
                        }
                    }
                }
            }
            if run.is_empty() {
                if applied_admin && !stalled {
                    continue; // Reconfigured; rescan the backlog.
                }
                return;
            }
            self.assign_and_forward_run(ctx, run);
            self.instance_map.extend(completed);
            if stalled {
                return;
            }
        }
    }

    /// Assigns sequence numbers to a contiguous run of ordered requests
    /// and flushes it into every commit channel as one range.
    fn assign_and_forward_run(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        run: Vec<(u64, OrderedRequest, OrderItem)>,
    ) {
        let Some(first) = run.first().map(|r| r.0) else {
            return;
        };
        ctx.span_enter(0, PHASE_BATCH);
        ctx.metric_hist("commit_run_len", run.len() as u64);
        for (s, req, item) in &run {
            self.sn = *s;
            self.ordered += 1;
            ctx.metric_inc("ordered", 1);
            let c = req.request.client;
            let tc = req.request.tc;
            self.t.insert(c, tc);
            let entry = self.t_next.entry(c).or_insert(1);
            *entry = (*entry).max(tc + 1);
            self.hist.push_back((*s, item.clone()));
        }
        while self.hist.len() as u64 > self.cfg.commit_capacity {
            self.hist.pop_front();
        }
        let linger = self.cfg.commit_range_linger;
        for group in self.directory.active_groups() {
            let execs: Vec<Execute> = run
                .iter()
                .map(|(s, req, _)| self.maybe_corrupt(execute_for_group(*s, req, group)))
                .collect();
            let mut actions = Vec::new();
            if let Some(ch) = self.channels.get_mut(&group) {
                if linger > SimTime::ZERO {
                    // Linger knob: let the endpoint coalesce across runs.
                    for (i, exec) in execs.into_iter().enumerate() {
                        // analyzer: allow(charge-coverage, "the IRMC endpoint emits Action::Charge; apply_commit_actions applies it")
                        // analyzer: allow(edge-pairing, "apply_commit_actions records the edges at the actual transmit sites")
                        ch.commit_send.send_buffered(
                            0,
                            Position(first + i as u64),
                            exec,
                            ctx.now(),
                            &mut actions,
                        );
                    }
                } else {
                    ch.commit_send.send_batch(0, Position(first), execs, &mut actions);
                }
            }
            self.apply_commit_actions(ctx, group, actions);
        }
        for (_, req, _) in &run {
            ctx.span_instant(req_id(req.request.client.0, req.request.tc), PHASE_SHIP);
        }
        ctx.span_exit(0, PHASE_BATCH);
        if self.sn.is_multiple_of(self.cfg.ka) {
            let snapshot = self.encode_snapshot();
            let mut actions = Vec::new();
            self.cp.generate(SeqNr(self.sn), snapshot, &mut actions);
            self.apply_cp_actions(ctx, actions);
        }
    }

    /// Replays already-ordered history into one group's commit channel in
    /// contiguous `send_batch` chunks (AddGroup bootstrap and post-restore
    /// catch-up).
    fn replay_execs(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        group: GroupId,
        items: &[(u64, OrderItem)],
    ) {
        let max_run = self.cfg.commit_max_range.max(1);
        let mut i = 0;
        while i < items.len() {
            let Some((first, OrderItem::Request(req0))) = items.get(i) else {
                i += 1;
                continue;
            };
            let mut execs = vec![self.maybe_corrupt(execute_for_group(*first, req0, group))];
            let mut j = i + 1;
            while j < items.len() && execs.len() < max_run {
                let Some((s, OrderItem::Request(req))) = items.get(j) else { break };
                if *s != first + execs.len() as u64 {
                    break;
                }
                execs.push(self.maybe_corrupt(execute_for_group(*s, req, group)));
                j += 1;
            }
            let first = *first;
            let mut actions = Vec::new();
            if let Some(ch) = self.channels.get_mut(&group) {
                // analyzer: allow(charge-coverage, "the IRMC endpoint emits Action::Charge; apply_commit_actions applies it")
                // analyzer: allow(edge-pairing, "apply_commit_actions records the edges at the actual transmit sites")
                ch.commit_send.send_batch(0, Position(first), execs, &mut actions);
            }
            self.apply_commit_actions(ctx, group, actions);
            i = j;
        }
    }

    fn apply_admin(&mut self, ctx: &mut Context<'_, SpiderMsg>, cmd: AdminCommand) {
        match cmd {
            AdminCommand::AddGroup { group } => {
                if self.channels.contains_key(&group) {
                    return;
                }
                self.create_channels(group);
                self.directory.activate_group(group);
                // The new group starts at sequence 0. Move its commit
                // window to the start of `hist` and replay the recent
                // Executes; everything older arrives via an execution
                // checkpoint fetched from another group (§3.6).
                let start = self.hist.front().map(|(s, _)| *s).unwrap_or(self.sn + 1);
                let mut actions = Vec::new();
                if let Some(ch) = self.channels.get_mut(&group) {
                    ch.commit_send.move_window(0, Position(start), &mut actions);
                }
                self.apply_commit_actions(ctx, group, actions);
                // Every replica replays the identical `hist` at this point
                // of the total order, so the replay ranges align too.
                let items: Vec<(u64, OrderItem)> = self.hist.iter().cloned().collect();
                self.replay_execs(ctx, group, &items);
            }
            AdminCommand::RemoveGroup { group } => {
                self.channels.remove(&group);
                self.directory.deactivate_group(group);
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoints (Fig 17 L39-57)
    // ------------------------------------------------------------------

    fn encode_snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64(self.sn);
        buf.put_u32(self.t.len() as u32);
        let mut t: Vec<(&ClientId, &u64)> = self.t.iter().collect();
        t.sort_by_key(|(c, _)| c.0);
        for (c, tc) in t {
            buf.put_u32(c.0);
            buf.put_u64(*tc);
        }
        buf.put_u32(self.hist.len() as u32);
        for (s, item) in &self.hist {
            buf.put_u64(*s);
            encode_order_item(&mut buf, item);
        }
        buf.freeze()
    }

    fn restore_snapshot(&mut self, bytes: &[u8]) -> Option<DecodedSnapshot> {
        let mut buf = bytes;
        if buf.remaining() < 12 {
            return None;
        }
        let sn = buf.get_u64();
        let n = buf.get_u32() as usize;
        let mut t = BTreeMap::new();
        for _ in 0..n {
            if buf.remaining() < 12 {
                return None;
            }
            let c = ClientId(buf.get_u32());
            t.insert(c, buf.get_u64());
        }
        if buf.remaining() < 4 {
            return None;
        }
        let h = buf.get_u32() as usize;
        let mut hist = VecDeque::new();
        for _ in 0..h {
            if buf.remaining() < 8 {
                return None;
            }
            let s = buf.get_u64();
            let item = decode_order_item(&mut buf)?;
            hist.push_back((s, item));
        }
        Some((sn, t, hist))
    }

    fn start_fetch(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        if self.fetching {
            return;
        }
        self.fetching = true;
        let mut actions = Vec::new();
        self.cp.fetch(SeqNr(self.sn + 1), &mut actions);
        self.apply_cp_actions(ctx, actions);
        self.arm_timer(ctx, TAG_FETCH_RETRY, SimTime::from_millis(500));
    }

    fn on_stable_checkpoint(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        seq: SeqNr,
        state: Option<Bytes>,
    ) {
        // Fig 17 L44-45: move commit windows + collect consensus garbage.
        let hist_len = self.hist.len() as u64;
        let window_start = seq.0.saturating_sub(hist_len).saturating_add(1);
        let groups: Vec<GroupId> = self.channels.keys().copied().collect();
        for g in groups {
            let mut actions = Vec::new();
            if let Some(ch) = self.channels.get_mut(&g) {
                ch.commit_send.move_window(0, Position(window_start), &mut actions);
            }
            self.apply_commit_actions(ctx, g, actions);
        }
        // Consensus gc: forget instances whose requests are all covered.
        let mut gc_before = None;
        while let Some((instance, last_seq)) = self.instance_map.front().copied() {
            if last_seq <= seq.0 {
                gc_before = Some(instance + 1);
                self.instance_map.pop_front();
            } else {
                break;
            }
        }
        if let Some(before) = gc_before {
            self.pbft.gc(SeqNr(before));
        }

        if seq.0 > self.sn {
            if state.is_none() {
                // A stable checkpoint exists ahead of us but we lack the
                // snapshot: fetch it (Fig 17 L47 path).
                self.start_fetch(ctx);
            }
            if let Some(bytes) = state {
                ctx.charge(self.cfg.cost.hmac(bytes.len()));
                if let Some((sn, t, hist)) = self.restore_snapshot(&bytes) {
                    debug_assert_eq!(sn, seq.0);
                    // Fig 17 L47-55: apply and replay the skipped tail.
                    let old_sn = self.sn;
                    self.sn = sn;
                    for (c, tc) in &t {
                        let e = self.t_next.entry(*c).or_insert(1);
                        *e = (*e).max(tc + 1);
                    }
                    self.t = t;
                    self.hist = hist;
                    let items: Vec<(u64, OrderItem)> =
                        self.hist.iter().filter(|(s, _)| *s > old_sn).cloned().collect();
                    // The replayed tail may chunk differently than the
                    // ranges the healthy replicas originally sent; the
                    // IRMC's per-slot fallback covers that (and receivers
                    // usually hold these certificates already).
                    for group in self.directory.active_groups() {
                        self.replay_execs(ctx, group, &items);
                    }
                    self.fetching = false;
                }
            }
        }
        // Fig 17 L57: slide the agreement window.
        self.win_upper = self.win_upper.max(seq.0 + self.cfg.ag_win);
        self.process_backlog(ctx);
    }

    // ------------------------------------------------------------------
    // Action plumbing
    // ------------------------------------------------------------------

    fn apply_request_channel_actions(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        group: GroupId,
        actions: Vec<Action<OrderedRequest>>,
    ) {
        let exec_nodes = self.directory.group_replicas(group);
        let mut to_poll: Vec<ClientId> = Vec::new();
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    if let Some(node) = exec_nodes.get(to) {
                        let msg =
                            SpiderMsg::RequestChannel { group, leg: ChannelLeg::ToSender(msg) };
                        // Window moves/acks carry no request payload, so
                        // this records no edges; kept for uniform pairing.
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::Ready { sc, .. } | Action::WindowMoved { sc, .. } => {
                    let c = ClientId(sc as u32);
                    if !to_poll.contains(&c) {
                        to_poll.push(c);
                    }
                }
                Action::Charge(c, op) => ctx.charge_op("req-channel", op, c),
                Action::SetTimer { .. } => {
                    // Request channels use one collector timer per client
                    // subchannel; with RC as default this is unused. SC
                    // request channels rely on retries instead.
                }
                _ => {}
            }
        }
        for c in to_poll {
            self.poll_client(ctx, group, c);
        }
    }

    fn apply_commit_actions(
        &mut self,
        ctx: &mut Context<'_, SpiderMsg>,
        group: GroupId,
        actions: Vec<Action<Execute>>,
    ) {
        let exec_nodes = self.directory.group_replicas(group);
        let agreement = self.directory.agreement();
        let mut window_moved = false;
        for a in actions {
            match a {
                Action::ToReceiver { to, msg } => {
                    if let Some(node) = exec_nodes.get(to) {
                        let msg =
                            SpiderMsg::CommitChannel { group, leg: ChannelLeg::ToReceiver(msg) };
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::ToPeerSender { to, msg } => {
                    if let Some(node) = agreement.get(to) {
                        let msg = SpiderMsg::CommitChannel { group, leg: ChannelLeg::Peer(msg) };
                        ctx.edge_for(*node, &msg);
                        ctx.send(*node, msg);
                    }
                }
                Action::WindowMoved { .. } | Action::Unblocked { .. } => {
                    window_moved = true;
                    ctx.health_mark("commit-channel", group.0 as u32);
                }
                Action::Charge(c, op) => {
                    if op == OP_RECAST {
                        // Liveness milestone: the disaster smoke gate
                        // checks a recast appears after a partition heal.
                        ctx.span_instant(0, PHASE_RECAST);
                    }
                    ctx.charge_op("commit-channel", op, c);
                }
                _ => {}
            }
        }
        if ctx.obs_enabled() {
            if let Some(ch) = self.channels.get(&group) {
                ctx.health_pending(
                    "commit-channel",
                    group.0 as u32,
                    ch.commit_send.unacked_slots(),
                );
            }
        }
        if window_moved {
            self.process_backlog(ctx);
        }
        // RC commit channels have no standing heartbeat: arm the recast
        // tick lazily while any channel holds undelivered content, so a
        // partition that swallowed the one-shot casts cannot wedge the
        // system, yet idle runs still quiesce.
        if self.cfg.commit_mode.variant() != Variant::SenderCollect
            && self.channels.values().any(|ch| ch.commit_send.has_unacked())
        {
            let interval = self.commit_tick_interval();
            self.ensure_timer(ctx, TAG_SC_TICK, interval);
        }
    }

    fn apply_cp_actions(&mut self, ctx: &mut Context<'_, SpiderMsg>, actions: Vec<CpAction>) {
        let agreement = self.directory.agreement();
        let mut stable = Vec::new();
        for a in actions {
            match a {
                CpAction::ToGroup(msg) => {
                    for (i, node) in agreement.iter().enumerate() {
                        if i != self.me {
                            // analyzer: allow(edge-pairing, "checkpoint gossip and state transfer carry no per-request payload; request latency never blocks on them")
                            ctx.send(
                                *node,
                                SpiderMsg::Checkpoint {
                                    group: keys::AGREEMENT_GROUP,
                                    msg: msg.clone(),
                                    state: None,
                                },
                            );
                        }
                    }
                }
                CpAction::ToPeer { idx, msg, state, .. } => {
                    if let Some(node) = agreement.get(idx) {
                        let blob = state.map(|bytes| StateBlob {
                            seq: match msg {
                                CheckpointMsg::FetchResponse { seq, .. } => seq,
                                _ => SeqNr(0),
                            },
                            bytes,
                        });
                        ctx.send(
                            *node,
                            SpiderMsg::Checkpoint {
                                group: keys::AGREEMENT_GROUP,
                                msg,
                                state: blob,
                            },
                        );
                    }
                }
                CpAction::Stable { seq, state } => stable.push((seq, state)),
                CpAction::Charge(c, op) => ctx.charge_op("checkpoint", op, c),
            }
        }
        for (seq, state) in stable {
            self.on_stable_checkpoint(ctx, seq, state);
        }
    }

    /// Interval of the commit-channel tick: the SC progress heartbeat
    /// (20 ms), tightened to the range linger so buffered runs never
    /// wait past their configured deadline.
    fn commit_tick_interval(&self) -> SimTime {
        let base = SimTime::from_millis(20);
        if self.cfg.commit_range_linger > SimTime::ZERO {
            base.min(self.cfg.commit_range_linger)
        } else {
            base
        }
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }

    /// Arms `tag` only if it is not already pending (unlike [`Self::arm_timer`],
    /// which reschedules).
    fn ensure_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64, delay: SimTime) {
        self.timers.entry(tag).or_insert_with(|| ctx.set_timer(delay, tag));
    }

    fn agreement_index(&self, node: NodeId) -> Option<usize> {
        self.directory.agreement().iter().position(|n| *n == node)
    }

    fn exec_index(&self, group: GroupId, node: NodeId) -> Option<usize> {
        self.directory.group_replicas(group).iter().position(|n| *n == node)
    }
}

/// Builds the per-group `Execute`: full request for writes and for the
/// read's target group, placeholder elsewhere (§3.3).
fn execute_for_group(s: u64, req: &OrderedRequest, group: GroupId) -> Execute {
    let payload = match req.request.operation.kind {
        OpKind::Write => ExecutePayload::Full(req.clone()),
        OpKind::StrongRead if req.origin == group => ExecutePayload::Full(req.clone()),
        OpKind::StrongRead | OpKind::WeakRead => ExecutePayload::Placeholder {
            client: req.request.client,
            tc: req.request.tc,
            target: req.origin,
        },
    };
    Execute { seq: SeqNr(s), payload }
}

fn encode_order_item(buf: &mut BytesMut, item: &OrderItem) {
    match item {
        OrderItem::Request(req) => {
            buf.put_u8(0);
            buf.put_u16(req.origin.0);
            buf.put_u32(req.request.client.0);
            buf.put_u64(req.request.tc);
            buf.put_u8(match req.request.operation.kind {
                OpKind::Write => 0,
                OpKind::StrongRead => 1,
                OpKind::WeakRead => 2,
            });
            buf.put_u32(req.request.operation.op.len() as u32);
            buf.put_slice(&req.request.operation.op);
        }
        OrderItem::Admin(AdminCommand::AddGroup { group }) => {
            buf.put_u8(1);
            buf.put_u16(group.0);
        }
        OrderItem::Admin(AdminCommand::RemoveGroup { group }) => {
            buf.put_u8(2);
            buf.put_u16(group.0);
        }
    }
}

fn decode_order_item(buf: &mut &[u8]) -> Option<OrderItem> {
    use crate::messages::{ClientRequest, Operation};
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        0 => {
            if buf.remaining() < 19 {
                return None;
            }
            let origin = GroupId(buf.get_u16());
            let client = ClientId(buf.get_u32());
            let tc = buf.get_u64();
            let kind = match buf.get_u8() {
                0 => OpKind::Write,
                1 => OpKind::StrongRead,
                _ => OpKind::WeakRead,
            };
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return None;
            }
            let op = Bytes::copy_from_slice(buf.get(..len)?);
            buf.advance(len);
            Some(OrderItem::Request(OrderedRequest {
                request: ClientRequest { client, tc, operation: Operation { op, kind } },
                origin,
            }))
        }
        1 => {
            if buf.remaining() < 2 {
                return None;
            }
            Some(OrderItem::Admin(AdminCommand::AddGroup { group: GroupId(buf.get_u16()) }))
        }
        2 => {
            if buf.remaining() < 2 {
                return None;
            }
            Some(OrderItem::Admin(AdminCommand::RemoveGroup { group: GroupId(buf.get_u16()) }))
        }
        _ => None,
    }
}

impl Actor<SpiderMsg> for AgreementReplica {
    fn on_start(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        // The tick drives SC progress announcements and, when the range
        // linger is on, deadline flushes of buffered commit ranges (so RC
        // commit channels need it then too).
        if self.cfg.commit_mode.variant() == Variant::SenderCollect
            || self.cfg.commit_range_linger > SimTime::ZERO
        {
            self.arm_timer(ctx, TAG_SC_TICK, self.commit_tick_interval());
        }
        self.arm_timer(ctx, TAG_CP_GOSSIP, CP_GOSSIP_INTERVAL);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SpiderMsg>, from: NodeId, msg: SpiderMsg) {
        ctx.charge(self.cfg.cost.msg_overhead());
        match msg {
            SpiderMsg::Agreement(m) => {
                let Some(idx) = self.agreement_index(from) else {
                    return;
                };
                let mut out = Vec::new();
                self.pbft.handle(ctx.now(), Input::Message { from: idx, msg: m }, &mut out);
                self.apply_pbft_outputs(ctx, out);
            }
            SpiderMsg::RequestChannel { group, leg } => match leg {
                ChannelLeg::ToReceiver(m) => {
                    let Some(idx) = self.exec_index(group, from) else {
                        return;
                    };
                    let mut actions = Vec::new();
                    if let Some(ch) = self.channels.get_mut(&group) {
                        let _ = ch.req_recv.on_sender_message(ctx.now(), idx, m, &mut actions);
                    }
                    self.apply_request_channel_actions(ctx, group, actions);
                }
                ChannelLeg::ToSender(_) | ChannelLeg::Peer(_) => {}
            },
            SpiderMsg::CommitChannel { group, leg } => match leg {
                ChannelLeg::ToSender(m) => {
                    let Some(idx) = self.exec_index(group, from) else {
                        return;
                    };
                    let mut actions = Vec::new();
                    if let Some(ch) = self.channels.get_mut(&group) {
                        let _ = ch.commit_send.on_receiver_message(idx, m, &mut actions);
                    }
                    self.apply_commit_actions(ctx, group, actions);
                }
                ChannelLeg::Peer(m) => {
                    let Some(idx) = self.agreement_index(from) else {
                        return;
                    };
                    let mut actions = Vec::new();
                    if let Some(ch) = self.channels.get_mut(&group) {
                        let _ = ch.commit_send.on_peer_message(idx, m, &mut actions);
                    }
                    self.apply_commit_actions(ctx, group, actions);
                }
                ChannelLeg::ToReceiver(_) => {}
            },
            SpiderMsg::Admin(cmd) => {
                // Reconfiguration commands are signed by the privileged
                // admin client and ordered like requests (§3.6).
                ctx.charge(self.cfg.cost.rsa_verify());
                let mut out = Vec::new();
                self.pbft.handle(ctx.now(), Input::Order(OrderItem::Admin(cmd)), &mut out);
                self.apply_pbft_outputs(ctx, out);
            }
            SpiderMsg::Checkpoint { group, msg, state } => {
                if group != keys::AGREEMENT_GROUP {
                    return;
                }
                let Some(idx) = self.agreement_index(from) else {
                    return;
                };
                let mut actions = Vec::new();
                match msg {
                    CheckpointMsg::Announce { seq, state_hash, sig } => {
                        self.cp.on_announce(idx, seq, state_hash, sig, &mut actions);
                    }
                    CheckpointMsg::FetchRequest { seq } => {
                        self.cp.on_fetch_request(keys::AGREEMENT_GROUP, idx, seq, &mut actions);
                    }
                    CheckpointMsg::FetchResponse { seq, state_hash, cert, .. } => {
                        let Some(blob) = state else { return };
                        let provider_keys = keys::agreement_keys(self.cfg.agreement_size());
                        self.cp.on_fetch_response(
                            keys::AGREEMENT_GROUP,
                            &provider_keys,
                            seq,
                            state_hash,
                            cert,
                            blob.bytes,
                            &mut actions,
                        );
                    }
                }
                self.apply_cp_actions(ctx, actions);
            }
            SpiderMsg::Request(_) | SpiderMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        match timer.tag {
            TAG_SC_TICK => {
                let groups: Vec<GroupId> = self.channels.keys().copied().collect();
                for g in groups {
                    let mut actions = Vec::new();
                    if let Some(ch) = self.channels.get_mut(&g) {
                        ch.commit_send.tick(ctx.now(), &mut actions);
                    }
                    self.apply_commit_actions(ctx, g, actions);
                }
                // SC (and lingering) channels keep a standing heartbeat;
                // RC keeps ticking only while content is undelivered
                // (recast liveness), so idle runs quiesce.
                if self.cfg.commit_mode.variant() == Variant::SenderCollect
                    || self.cfg.commit_range_linger > SimTime::ZERO
                    || self.channels.values().any(|ch| ch.commit_send.has_unacked())
                {
                    let interval = self.commit_tick_interval();
                    self.arm_timer(ctx, TAG_SC_TICK, interval);
                }
            }
            TAG_FETCH_RETRY if self.fetching => {
                self.fetching = false;
                self.start_fetch(ctx);
            }
            TAG_CP_GOSSIP => {
                let mut actions = Vec::new();
                self.cp.gossip(&mut actions);
                self.apply_cp_actions(ctx, actions);
                self.arm_timer(ctx, TAG_CP_GOSSIP, CP_GOSSIP_INTERVAL);
            }
            tag if tag >= TAG_PBFT_BASE => {
                let mut out = Vec::new();
                self.pbft.handle(
                    ctx.now(),
                    Input::Timer(TimerToken(tag - TAG_PBFT_BASE)),
                    &mut out,
                );
                self.apply_pbft_outputs(ctx, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{ClientRequest, Operation};
    use bytes::Bytes;

    fn request(client: u32, tc: u64, kind: OpKind) -> OrderedRequest {
        OrderedRequest {
            request: ClientRequest {
                client: ClientId(client),
                tc,
                operation: Operation { op: Bytes::from_static(b"put k v"), kind },
            },
            origin: GroupId(2),
        }
    }

    #[test]
    fn execute_for_group_full_for_writes_everywhere() {
        let req = request(1, 5, OpKind::Write);
        for g in [GroupId(0), GroupId(2), GroupId(7)] {
            let exec = execute_for_group(9, &req, g);
            assert_eq!(exec.seq, SeqNr(9));
            assert!(matches!(exec.payload, ExecutePayload::Full(_)));
        }
    }

    #[test]
    fn execute_for_group_placeholders_for_remote_strong_reads() {
        let req = request(1, 5, OpKind::StrongRead);
        // Target group gets the full request…
        let own = execute_for_group(9, &req, GroupId(2));
        assert!(matches!(own.payload, ExecutePayload::Full(_)));
        // …every other group gets the small placeholder (§3.3).
        let other = execute_for_group(9, &req, GroupId(0));
        match other.payload {
            ExecutePayload::Placeholder { client, tc, target } => {
                assert_eq!(client, ClientId(1));
                assert_eq!(tc, 5);
                assert_eq!(target, GroupId(2));
            }
            _ => panic!("expected placeholder"),
        }
        assert!(
            spider_types::WireSize::wire_size(&other) < spider_types::WireSize::wire_size(&own)
        );
    }

    #[test]
    fn order_item_codec_roundtrip() {
        let items = vec![
            OrderItem::Request(request(3, 17, OpKind::Write)),
            OrderItem::Request(request(4, 1, OpKind::StrongRead)),
            OrderItem::Admin(AdminCommand::AddGroup { group: GroupId(9) }),
            OrderItem::Admin(AdminCommand::RemoveGroup { group: GroupId(2) }),
        ];
        for item in items {
            let mut buf = BytesMut::new();
            encode_order_item(&mut buf, &item);
            let bytes = buf.freeze();
            let mut slice: &[u8] = &bytes;
            let decoded = decode_order_item(&mut slice).expect("decodes");
            assert_eq!(decoded, item);
            assert!(slice.is_empty(), "consumed exactly");
        }
    }

    #[test]
    fn order_item_decode_rejects_truncation() {
        let item = OrderItem::Request(request(3, 17, OpKind::Write));
        let mut buf = BytesMut::new();
        encode_order_item(&mut buf, &item);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut slice: &[u8] = &bytes[..cut];
            assert!(
                decode_order_item(&mut slice).is_none() || cut == bytes.len(),
                "truncated decode must fail (cut {cut})"
            );
        }
    }

    #[test]
    fn agreement_snapshot_roundtrip() {
        let dir = crate::directory::Directory::new();
        let mut a = AgreementReplica::new(SpiderConfig::default(), 0, dir.clone(), &[]);
        a.sn = 42;
        a.t.insert(ClientId(1), 7);
        a.t.insert(ClientId(9), 3);
        a.hist.push_back((41, OrderItem::Request(request(1, 6, OpKind::Write))));
        a.hist.push_back((42, OrderItem::Request(request(9, 3, OpKind::Write))));
        let snap = a.encode_snapshot();

        let mut b = AgreementReplica::new(SpiderConfig::default(), 1, dir, &[]);
        let (sn, t, hist) = b.restore_snapshot(&snap).expect("valid snapshot");
        assert_eq!(sn, 42);
        assert_eq!(t.get(&ClientId(1)), Some(&7));
        assert_eq!(t.get(&ClientId(9)), Some(&3));
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].0, 41);
        assert_eq!(hist, a.hist);
    }

    #[test]
    fn agreement_snapshot_rejects_garbage() {
        let dir = crate::directory::Directory::new();
        let mut a = AgreementReplica::new(SpiderConfig::default(), 0, dir, &[]);
        assert!(a.restore_snapshot(&[1, 2, 3]).is_none());
        assert!(a.restore_snapshot(&[]).is_none());
    }
}
