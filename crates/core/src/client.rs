//! Spider clients (Fig 15) and workload generation.
//!
//! A client broadcasts each request to all `2·fe + 1` replicas of its
//! execution group and accepts a result once `fe + 1` replicas returned
//! matching replies for the current counter value. Weakly consistent
//! reads may fail to reach a matching quorum under concurrent writes; the
//! client retries and eventually escalates to a strongly consistent read
//! (§3.3).

use crate::config::SpiderConfig;
use crate::directory::Directory;
use crate::messages::{ClientRequest, Operation, Reply, SpiderMsg};
use bytes::Bytes;
use rand::Rng;
use spider_sim::{req_id, Actor, Context, Timer, TimerId, PHASE_REQUEST};
use spider_types::{ClientId, GroupId, NodeId, OpKind, SimTime, WireSize};
use std::collections::BTreeMap;
use std::sync::Arc;

const TAG_ISSUE: u64 = 1;
const TAG_RETRY: u64 = 2;

/// Produces operation payloads for generated requests.
pub type OpFactory = Arc<dyn Fn(u64, OpKind, usize) -> Bytes + Send + Sync>;

/// Statistical description of a client's request stream.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Mean issue rate (requests/second, exponential interarrivals).
    pub rate_per_sec: f64,
    /// Payload size in bytes (the paper uses 200-byte requests).
    pub payload_bytes: usize,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Fraction of requests that are strongly consistent reads (the rest
    /// after writes are weak reads).
    pub strong_read_fraction: f64,
    /// Stop after this many completed requests (0 = unlimited).
    pub max_ops: u64,
    /// Delay before the first request.
    pub start_delay: SimTime,
    /// Builds the operation bytes: `(sequence, kind, payload_bytes)`.
    pub op_factory: OpFactory,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("rate_per_sec", &self.rate_per_sec)
            .field("payload_bytes", &self.payload_bytes)
            .field("write_fraction", &self.write_fraction)
            .field("strong_read_fraction", &self.strong_read_fraction)
            .field("max_ops", &self.max_ops)
            .finish_non_exhaustive()
    }
}

fn counter_factory() -> OpFactory {
    Arc::new(|_seq, kind, payload| {
        // Pad to the requested payload size so wire costs are realistic.
        let base: &[u8] = match kind {
            OpKind::Write => b"add:1",
            _ => b"get",
        };
        let mut v = base.to_vec();
        v.resize(v.len().max(payload), b' ');
        Bytes::from(v)
    })
}

impl WorkloadSpec {
    /// Pure writes at `rate` per second with `payload` bytes each.
    pub fn writes_per_sec(rate: f64, payload: usize) -> Self {
        WorkloadSpec {
            rate_per_sec: rate,
            payload_bytes: payload,
            write_fraction: 1.0,
            strong_read_fraction: 0.0,
            max_ops: 0,
            start_delay: SimTime::from_millis(10),
            op_factory: counter_factory(),
        }
    }

    /// Pure weakly consistent reads.
    pub fn weak_reads_per_sec(rate: f64, payload: usize) -> Self {
        WorkloadSpec {
            write_fraction: 0.0,
            strong_read_fraction: 0.0,
            ..WorkloadSpec::writes_per_sec(rate, payload)
        }
    }

    /// Pure strongly consistent reads.
    pub fn strong_reads_per_sec(rate: f64, payload: usize) -> Self {
        WorkloadSpec {
            write_fraction: 0.0,
            strong_read_fraction: 1.0,
            ..WorkloadSpec::writes_per_sec(rate, payload)
        }
    }

    /// Replaces the operation factory (builder-style).
    #[must_use]
    pub fn with_op_factory(mut self, f: OpFactory) -> Self {
        self.op_factory = f;
        self
    }

    /// Caps the number of requests (builder-style).
    #[must_use]
    pub fn with_max_ops(mut self, n: u64) -> Self {
        self.max_ops = n;
        self
    }

    /// Sets the start delay (builder-style).
    #[must_use]
    pub fn with_start_delay(mut self, d: SimTime) -> Self {
        self.start_delay = d;
        self
    }
}

/// One completed request, as recorded by a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Request classification.
    pub kind: OpKind,
    /// Simulated time the request was first issued.
    pub issued: SimTime,
    /// Simulated time the reply quorum completed.
    pub completed: SimTime,
}

impl Sample {
    /// End-to-end response time.
    pub fn latency(&self) -> SimTime {
        self.completed - self.issued
    }
}

/// Fault behaviours injectable into a client (§3.7 tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientFault {
    /// Behaves correctly.
    #[default]
    None,
    /// Sends a *different* operation to every replica under the same
    /// counter value: the request channel must block delivery and the
    /// damage must stay within this client's subchannel.
    ConflictingRequests,
}

struct InFlight {
    kind: OpKind,
    op: Bytes,
    tc: u64,
    issued: SimTime,
    /// Replies per replica node: (result, resubmit flag).
    replies: BTreeMap<NodeId, (Bytes, bool)>,
    weak_retries_left: u32,
    /// Retransmissions without completion; drives group failover (§3.1).
    retries: u32,
}

/// A Spider client actor.
pub struct SpiderClient {
    cfg: SpiderConfig,
    id: ClientId,
    group: GroupId,
    directory: Directory,
    workload: Option<WorkloadSpec>,
    fault: ClientFault,

    /// Counter for ordered operations (writes + strong reads): this is
    /// the request-subchannel position, so it must advance by exactly one
    /// per ordered request (Fig 15).
    tc: u64,
    /// Separate counter for weakly consistent reads, which never enter
    /// the request channel (§3.3) and therefore must not consume
    /// subchannel positions.
    weak_tc: u64,
    issued_count: u64,
    in_flight: Option<InFlight>,
    /// Completed request samples (read by the harness after the run).
    pub samples: Vec<Sample>,
    timers: BTreeMap<u64, TimerId>,
}

impl SpiderClient {
    /// Creates a client attached to execution group `group`.
    pub fn new(
        cfg: SpiderConfig,
        id: ClientId,
        group: GroupId,
        directory: Directory,
        workload: Option<WorkloadSpec>,
    ) -> Self {
        SpiderClient {
            cfg,
            id,
            group,
            directory,
            workload,
            fault: ClientFault::None,
            tc: 0,
            weak_tc: 0,
            issued_count: 0,
            in_flight: None,
            samples: Vec::new(),
            timers: BTreeMap::new(),
        }
    }

    /// Injects a fault behaviour (tests only).
    pub fn set_fault(&mut self, fault: ClientFault) {
        self.fault = fault;
    }

    /// Switches the client to a different execution group (used when its
    /// local group becomes unavailable, §3.1).
    pub fn set_group(&mut self, group: GroupId) {
        self.group = group;
    }

    /// The client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn schedule_next_issue(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        let Some(w) = &self.workload else { return };
        if w.max_ops != 0 && self.issued_count >= w.max_ops {
            return;
        }
        // Exponential interarrival around the configured rate.
        let mean = 1.0 / w.rate_per_sec.max(1e-9);
        let u: f64 = ctx.rng().gen_range(1e-9..1.0f64);
        let gap = SimTime::from_secs_f64(-u.ln() * mean);
        self.arm_timer(ctx, TAG_ISSUE, gap);
    }

    fn pick_kind(&mut self, ctx: &mut Context<'_, SpiderMsg>) -> OpKind {
        let w = self.workload.as_ref().expect("workload present");
        let x: f64 = ctx.rng().gen_range(0.0..1.0);
        if x < w.write_fraction {
            OpKind::Write
        } else if x < w.write_fraction + w.strong_read_fraction {
            OpKind::StrongRead
        } else {
            OpKind::WeakRead
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, SpiderMsg>, kind: OpKind, op: Bytes) {
        let tc = if kind == OpKind::WeakRead {
            self.weak_tc += 1;
            self.weak_tc
        } else {
            self.tc += 1;
            self.tc
        };
        self.issued_count += 1;
        let retries = self.cfg.weak_read_retries;
        self.in_flight = Some(InFlight {
            kind,
            op: op.clone(),
            tc,
            issued: ctx.now(),
            replies: BTreeMap::new(),
            weak_retries_left: retries,
            retries: 0,
        });
        // Lifecycle span: opened at first issue, closed by the reply
        // quorum in `on_reply`. Weak reads never enter the request
        // channel, so only ordered requests are traced end-to-end.
        if kind != OpKind::WeakRead {
            ctx.span_enter(req_id(self.id.0, tc), PHASE_REQUEST);
        }
        self.transmit(ctx);
        self.arm_timer(ctx, TAG_RETRY, self.cfg.client_retry);
    }

    /// Broadcasts the in-flight request to the execution group (Fig 15
    /// L12); reissues verbatim on retry.
    fn transmit(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        let Some(inf) = &self.in_flight else { return };
        let replicas = self.directory.group_replicas(self.group);
        let request = ClientRequest {
            client: self.id,
            tc: inf.tc,
            operation: Operation { op: inf.op.clone(), kind: inf.kind },
        };
        // Sign once, MAC per replica (Fig 15 L7).
        ctx.charge(
            self.cfg.cost.rsa_sign()
                + self.cfg.cost.mac_vector(replicas.len(), request.wire_size()),
        );
        match self.fault {
            ClientFault::None => {
                for node in replicas {
                    let msg = SpiderMsg::Request(request.clone());
                    ctx.edge_for(node, &msg);
                    ctx.send(node, msg);
                }
            }
            ClientFault::ConflictingRequests => {
                // A different operation per replica under one counter.
                for (i, node) in replicas.into_iter().enumerate() {
                    let mut bad = request.clone();
                    let mut op = inf.op.to_vec();
                    op.push(b'0' + (i as u8 % 10));
                    bad.operation.op = Bytes::from(op);
                    let msg = SpiderMsg::Request(bad);
                    ctx.edge_for(node, &msg);
                    ctx.send(node, msg);
                }
            }
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_, SpiderMsg>, from: NodeId, reply: Reply) {
        ctx.charge(self.cfg.cost.hmac(reply.result.len()));
        let group_size = self.directory.group_replicas(self.group).len();
        let quorum = self.cfg.fe + 1;
        let Some(inf) = &mut self.in_flight else { return };
        if reply.tc != inf.tc {
            return;
        }
        // Weak replies answer weak reads; ordered replies answer the rest.
        if reply.weak != (inf.kind == OpKind::WeakRead) {
            return;
        }
        inf.replies.insert(from, (reply.result.clone(), reply.resubmit));

        // fe + 1 matching results complete the request (Fig 15 L23).
        let mut counts: BTreeMap<&Bytes, usize> = BTreeMap::new();
        for (r, resub) in inf.replies.values() {
            if !*resub {
                *counts.entry(r).or_default() += 1;
            }
        }
        if counts.values().any(|n| *n >= quorum) {
            let sample = Sample { kind: inf.kind, issued: inf.issued, completed: ctx.now() };
            if inf.kind != OpKind::WeakRead {
                ctx.span_exit(req_id(self.id.0, inf.tc), PHASE_REQUEST);
            }
            ctx.metric_hist("client_latency_ns", sample.latency().as_nanos());
            self.samples.push(sample);
            self.in_flight = None;
            self.disarm_timer(ctx, TAG_RETRY);
            return;
        }

        // fe + 1 resubmit indications: the value was skipped here (§A.7.9
        // remark); reissue under a fresh counter.
        let resubmits = inf.replies.values().filter(|(_, r)| *r).count();
        if resubmits >= quorum {
            let (kind, op, issued) = (inf.kind, inf.op.clone(), inf.issued);
            self.issue(ctx, kind, op);
            if let Some(new) = &mut self.in_flight {
                new.issued = issued; // Latency counts from first issue.
            }
            return;
        }

        // All replicas answered a weak read without a quorum: stale /
        // concurrent writes. Retry, then escalate to a strong read (§3.3).
        if inf.kind == OpKind::WeakRead && inf.replies.len() >= group_size {
            if inf.weak_retries_left > 0 {
                inf.weak_retries_left -= 1;
                inf.replies.clear();
                self.transmit(ctx);
            } else {
                let (op, issued) = (inf.op.clone(), inf.issued);
                self.issue(ctx, OpKind::StrongRead, op);
                if let Some(new) = &mut self.in_flight {
                    new.issued = issued;
                }
            }
        }
    }

    /// §3.1: if more than `fe` replicas of the local execution group are
    /// unavailable, a client can temporarily switch to a different group.
    /// After `group_failover_retries` fruitless retransmissions the client
    /// re-targets the next active group from the registry.
    fn maybe_fail_over(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        let Some(inf) = &mut self.in_flight else { return };
        inf.retries += 1;
        if inf.retries < self.cfg.group_failover_retries {
            return;
        }
        let active = self.directory.active_groups();
        let Some(pos) = active.iter().position(|g| *g == self.group) else {
            // Our group vanished entirely (RemoveGroup): take any active.
            if let Some(g) = active.first() {
                self.group = *g;
            }
            return;
        };
        if active.len() <= 1 {
            return; // Nowhere to go.
        }
        let next = active[(pos + 1) % active.len()];
        self.group = next;
        if let Some(inf) = &mut self.in_flight {
            inf.retries = 0;
            inf.replies.clear();
        }
        let _ = ctx;
    }

    fn arm_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64, delay: SimTime) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(delay, tag);
        self.timers.insert(tag, id);
    }

    fn disarm_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, tag: u64) {
        if let Some(old) = self.timers.remove(&tag) {
            ctx.cancel_timer(old);
        }
    }
}

impl Actor<SpiderMsg> for SpiderClient {
    fn on_start(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        if let Some(w) = &self.workload {
            let delay = w.start_delay;
            self.arm_timer(ctx, TAG_ISSUE, delay);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SpiderMsg>, from: NodeId, msg: SpiderMsg) {
        if let SpiderMsg::Reply(reply) = msg {
            self.on_reply(ctx, from, reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, timer: Timer) {
        self.timers.remove(&timer.tag);
        match timer.tag {
            TAG_ISSUE => {
                if self.in_flight.is_none() {
                    let kind = self.pick_kind(ctx);
                    let w = self.workload.as_ref().expect("workload present");
                    let op = (w.op_factory)(self.issued_count, kind, w.payload_bytes);
                    self.issue(ctx, kind, op);
                }
                self.schedule_next_issue(ctx);
            }
            TAG_RETRY if self.in_flight.is_some() => {
                self.maybe_fail_over(ctx);
                self.transmit(ctx);
                self.arm_timer(ctx, TAG_RETRY, self.cfg.client_retry);
            }
            _ => {}
        }
    }
}
