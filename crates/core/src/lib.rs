//! # Spider — resilient cloud-based replication with low latency
//!
//! This crate is the primary contribution of the reproduced paper
//! (Eischer & Distler, Middleware 2020): a BFT system architecture that
//! models a geo-replicated service as a collection of loosely coupled
//! replica groups, each placed across the availability zones of one cloud
//! region.
//!
//! * The **agreement group** (`3·fa + 1` replicas, [`spider_consensus`]
//!   PBFT) establishes the global total order on writes and strongly
//!   consistent reads (§3.1).
//! * **Execution groups** (`2·fe + 1` replicas each) host the application,
//!   talk to clients, apply the ordered requests, and answer weakly
//!   consistent reads locally (§3.3).
//! * All inter-group communication crosses exactly two abstractions: a
//!   *request channel* (one subchannel per client) and a *commit channel*
//!   (one subchannel), both [`spider_irmc`] IRMCs (§3.2).
//! * Checkpointing (§3.4), global flow control with `z` skippable trailing
//!   groups (§3.5), and runtime addition/removal of execution groups
//!   (§3.6) are implemented per the paper's pseudocode (appendix Figs
//!   15–17).
//!
//! The replicas and clients here are [`spider_sim::Actor`]s: deterministic
//! state machines scheduled by the discrete-event simulator, which plays
//! the role of the paper's EC2 deployment.
//!
//! # Quick start
//!
//! ```
//! use spider::{DeploymentBuilder, SpiderConfig, WorkloadSpec};
//! use spider_sim::{Simulation, Topology};
//! use spider_types::SimTime;
//!
//! // Two regions; the agreement group lives in "virginia".
//! let topology = Topology::builder()
//!     .region("virginia", 4)
//!     .region("oregon", 3)
//!     .symmetric_latency("virginia", "oregon", SimTime::from_millis(31))
//!     .build();
//! let mut sim = Simulation::new(topology, 42);
//! let mut deployment = DeploymentBuilder::new(SpiderConfig::default())
//!     .agreement_region("virginia")
//!     .execution_group("virginia")
//!     .execution_group("oregon")
//!     .build(&mut sim);
//! // One client per group issuing a few writes:
//! deployment.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 100));
//! deployment.spawn_clients(&mut sim, 1, 1, WorkloadSpec::writes_per_sec(10.0, 100));
//! sim.run_until(SimTime::from_secs(3));
//! let samples = deployment.collect_samples(&sim);
//! assert!(!samples.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod app;
pub mod checkpoint;
pub mod client;
pub mod config;
pub mod deploy;
pub mod directory;
pub mod execution;
pub mod keys;
pub mod messages;

pub use app::{Application, CounterApp};
pub use client::{ClientFault, Sample, SpiderClient, WorkloadSpec};
pub use config::SpiderConfig;
pub use deploy::{Deployment, DeploymentBuilder};
pub use directory::Directory;
pub use messages::SpiderMsg;
