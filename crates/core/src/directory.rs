//! The execution-replica registry / system directory (§3.1, §3.6).
//!
//! The paper maintains an *execution-replica registry* as a BFT service
//! hosted by the agreement group: clients query it for the locations and
//! addresses of active execution replicas, and agreement replicas update
//! it when the composition changes. In the simulation, name resolution is
//! represented by this shared [`Directory`]: agreement replicas write to
//! it exactly when the paper would update the registry (on ordered
//! `AddGroup`/`RemoveGroup` commands), and clients read it to find their
//! group's replicas. The *control path* (ordering of reconfigurations) is
//! fully faithful; only the lookup RPC is collapsed into shared memory —
//! a substitution documented in DESIGN.md.

use parking_lot::RwLock;
use spider_types::{GroupId, NodeId, RegionId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Membership record of one execution group.
#[derive(Debug, Clone)]
pub struct GroupInfo {
    /// The group's replicas (node ids), in replica-index order.
    pub replicas: Vec<NodeId>,
    /// Region the group is deployed in.
    pub region: RegionId,
    /// Whether the group is currently active (registered via `AddGroup`).
    pub active: bool,
}

#[derive(Debug, Default)]
struct Inner {
    agreement: Vec<NodeId>,
    groups: BTreeMap<GroupId, GroupInfo>,
    clients: BTreeMap<spider_types::ClientId, NodeId>,
    client_groups: BTreeMap<spider_types::ClientId, GroupId>,
}

/// Shared, cheaply cloneable handle to the system directory.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    inner: Arc<RwLock<Inner>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Registers the agreement group's replicas.
    pub fn set_agreement(&self, replicas: Vec<NodeId>) {
        self.inner.write().agreement = replicas;
    }

    /// The agreement group's replicas.
    pub fn agreement(&self) -> Vec<NodeId> {
        self.inner.read().agreement.clone()
    }

    /// Registers an execution group (initially inactive until the
    /// `AddGroup` command is ordered, unless `active` is set).
    pub fn register_group(&self, group: GroupId, info: GroupInfo) {
        self.inner.write().groups.insert(group, info);
    }

    /// Marks a group active (called by agreement replicas when `AddGroup`
    /// commits).
    pub fn activate_group(&self, group: GroupId) {
        if let Some(g) = self.inner.write().groups.get_mut(&group) {
            g.active = true;
        }
    }

    /// Marks a group inactive (`RemoveGroup` committed).
    pub fn deactivate_group(&self, group: GroupId) {
        if let Some(g) = self.inner.write().groups.get_mut(&group) {
            g.active = false;
        }
    }

    /// Replicas of a group (whether active or not).
    ///
    /// # Panics
    ///
    /// Panics if the group was never registered.
    pub fn group_replicas(&self, group: GroupId) -> Vec<NodeId> {
        self.inner.read().groups[&group].replicas.clone()
    }

    /// Whether a group is currently active.
    pub fn is_active(&self, group: GroupId) -> bool {
        self.inner.read().groups.get(&group).is_some_and(|g| g.active)
    }

    /// All currently active groups, in id order.
    pub fn active_groups(&self) -> Vec<GroupId> {
        self.inner.read().groups.iter().filter(|(_, g)| g.active).map(|(id, _)| *id).collect()
    }

    /// All registered groups (active or not), in id order.
    pub fn all_groups(&self) -> Vec<GroupId> {
        self.inner.read().groups.keys().copied().collect()
    }

    /// Region of a group.
    pub fn group_region(&self, group: GroupId) -> RegionId {
        self.inner.read().groups[&group].region
    }

    /// Registers a client's transport address.
    pub fn register_client(&self, client: spider_types::ClientId, node: NodeId) {
        self.inner.write().clients.insert(client, node);
    }

    /// Transport address of a client, if registered.
    pub fn client_node(&self, client: spider_types::ClientId) -> Option<NodeId> {
        self.inner.read().clients.get(&client).copied()
    }

    /// Records which group (site) a client is attached to.
    pub fn register_client_group(&self, client: spider_types::ClientId, group: GroupId) {
        self.inner.write().client_groups.insert(client, group);
    }

    /// The group a client is attached to, if recorded.
    pub fn client_group(&self, client: spider_types::ClientId) -> Option<GroupId> {
        self.inner.read().client_groups.get(&client).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_lifecycle() {
        let d = Directory::new();
        d.register_group(
            GroupId(3),
            GroupInfo {
                replicas: vec![NodeId(1), NodeId(2), NodeId(3)],
                region: RegionId(1),
                active: false,
            },
        );
        assert!(!d.is_active(GroupId(3)));
        assert!(d.active_groups().is_empty());
        d.activate_group(GroupId(3));
        assert!(d.is_active(GroupId(3)));
        assert_eq!(d.active_groups(), vec![GroupId(3)]);
        d.deactivate_group(GroupId(3));
        assert!(!d.is_active(GroupId(3)));
    }

    #[test]
    fn clones_share_state() {
        let d = Directory::new();
        let d2 = d.clone();
        d.set_agreement(vec![NodeId(9)]);
        assert_eq!(d2.agreement(), vec![NodeId(9)]);
    }

    #[test]
    fn groups_listed_in_id_order() {
        let d = Directory::new();
        for id in [5u16, 1, 3] {
            d.register_group(
                GroupId(id),
                GroupInfo { replicas: vec![], region: RegionId(0), active: true },
            );
        }
        assert_eq!(d.all_groups(), vec![GroupId(1), GroupId(3), GroupId(5)]);
    }
}
