//! The checkpoint component (§3.4, appendix Fig 13).
//!
//! Each replica group runs one checkpoint component per replica. A replica
//! periodically hands its component a serialized snapshot
//! ([`CheckpointComponent::generate`]); the component broadcasts a signed
//! hash, collects `f + 1` matching announcements (a *stable certificate*,
//! CP-Safety A.11), and reports stability back to the replica. A trailing
//! replica calls [`CheckpointComponent::fetch`]; peers answer with the full
//! state plus the certificate, which the component validates before
//! delivering it (state transfer).
//!
//! Components verify certificates against *logical group keys*
//! ([`crate::keys`]), so execution replicas can also validate checkpoints
//! fetched from *other* execution groups (§3.5 — needed by freshly added
//! groups and by groups skipped under global flow control).

use crate::messages::CheckpointMsg;
use bytes::Bytes;
use spider_crypto::{CostModel, Digest, Keyring, Signature};
use spider_types::{GroupId, SeqNr, SimTime};
use std::collections::BTreeMap;

/// Effects of checkpoint-component calls.
#[derive(Debug, Clone)]
pub enum CpAction {
    /// Broadcast to every other member of the own group.
    ToGroup(CheckpointMsg),
    /// Send to a specific replica (possibly in another group).
    ToPeer {
        /// Target group.
        group: GroupId,
        /// Replica index within that group.
        idx: usize,
        /// The message.
        msg: CheckpointMsg,
        /// Snapshot payload for fetch responses.
        state: Option<Bytes>,
    },
    /// A checkpoint became stable (Fig 13 `stable_cp`): the host must
    /// apply it if it is ahead of the local state. `state` is present when
    /// the component holds the snapshot (own or fetched).
    Stable {
        /// Snapshot sequence number.
        seq: SeqNr,
        /// Snapshot bytes, if locally available.
        state: Option<Bytes>,
    },
    /// Charge CPU to the host node, labeled with the operation the cost
    /// models (for CPU attribution).
    Charge(SimTime, &'static str),
}

fn cp_digest(group: GroupId, seq: SeqNr, state_hash: &Digest) -> Digest {
    Digest::builder().str("checkpoint").u64(group.0 as u64).u64(seq.0).digest(state_hash).finish()
}

/// Per-replica checkpoint component.
pub struct CheckpointComponent {
    group: GroupId,
    me: usize,
    f: usize,
    my_key: spider_crypto::KeyId,
    member_keys: Vec<spider_crypto::KeyId>,
    keyring: Keyring,
    cost: CostModel,
    /// Snapshots this replica holds (own or fetched), by sequence number.
    snapshots: BTreeMap<u64, (Digest, Bytes)>,
    /// Announce votes per sequence number: member index -> (hash, sig).
    votes: BTreeMap<u64, BTreeMap<usize, (Digest, Signature)>>,
    /// Latest stable checkpoint: (seq, hash, certificate).
    stable: Option<(SeqNr, Digest, Vec<Signature>)>,
    /// Highest sequence number delivered via `Stable` *with* state.
    delivered: u64,
    /// Highest sequence number announced via a state-less `Stable`
    /// notification (the host reacts by fetching).
    notified: u64,
}

impl CheckpointComponent {
    /// Creates the component for replica `me` of `group` tolerating `f`
    /// member faults.
    pub fn new(group: GroupId, me: usize, f: usize, keyring: Keyring, cost: CostModel) -> Self {
        let n = if group == crate::keys::AGREEMENT_GROUP { 3 * f + 1 } else { 2 * f + 1 };
        CheckpointComponent {
            group,
            me,
            f,
            my_key: crate::keys::group_keys(group, n)[me],
            member_keys: crate::keys::group_keys(group, n),
            keyring,
            cost,
            snapshots: BTreeMap::new(),
            votes: BTreeMap::new(),
            stable: None,
            delivered: 0,
            notified: 0,
        }
    }

    /// Latest stable checkpoint sequence number, if any.
    pub fn stable_seq(&self) -> Option<SeqNr> {
        self.stable.as_ref().map(|s| s.0)
    }

    /// Fig 13 `gen_cp`: snapshot taken at `seq`; announce its hash.
    pub fn generate(&mut self, seq: SeqNr, state: Bytes, out: &mut Vec<CpAction>) {
        let hash = Digest::of_bytes(&state);
        out.push(CpAction::Charge(self.cost.hmac(state.len()) + self.cost.rsa_sign(), "cp_sign"));
        self.snapshots.insert(seq.0, (hash, state));
        let sig = self.keyring.sign(self.my_key, &cp_digest(self.group, seq, &hash));
        let msg = CheckpointMsg::Announce { seq, state_hash: hash, sig };
        self.votes.entry(seq.0).or_default().insert(self.me, (hash, sig));
        out.push(CpAction::ToGroup(msg));
        self.check_stable(seq, out);
    }

    /// Fig 13 `fetch_cp`: ask peers for a stable checkpoint at or after
    /// `seq`. The host decides which peers receive the emitted request.
    pub fn fetch(&mut self, seq: SeqNr, out: &mut Vec<CpAction>) {
        out.push(CpAction::Charge(self.cost.hmac(32), "cp_mac"));
        out.push(CpAction::ToGroup(CheckpointMsg::FetchRequest { seq }));
    }

    /// Periodic gossip (§A.4.3: correct replicas continuously inform each
    /// other about their latest stable checkpoint): re-broadcasts this
    /// replica's announce vote for the latest stable sequence number so
    /// that a partition-healed laggard learns it fell behind.
    pub fn gossip(&mut self, out: &mut Vec<CpAction>) {
        let Some((seq, _, _)) = &self.stable else {
            return;
        };
        let Some((hash, sig)) = self.votes.get(&seq.0).and_then(|v| v.get(&self.me)).copied()
        else {
            return;
        };
        out.push(CpAction::ToGroup(CheckpointMsg::Announce { seq: *seq, state_hash: hash, sig }));
    }

    /// Handles an `Announce` from member `from` of the own group.
    pub fn on_announce(
        &mut self,
        from: usize,
        seq: SeqNr,
        state_hash: Digest,
        sig: Signature,
        out: &mut Vec<CpAction>,
    ) {
        if from >= self.member_keys.len() || from == self.me {
            return;
        }
        out.push(CpAction::Charge(self.cost.rsa_verify(), "cp_verify"));
        let digest = cp_digest(self.group, seq, &state_hash);
        if !self.keyring.verify(self.member_keys[from], &digest, &sig) {
            return;
        }
        // Old announcement: help the laggard with our own latest vote
        // (keeps CP-Liveness without a periodic gossip timer).
        if let Some((stable_seq, hash, _)) = &self.stable {
            if seq < *stable_seq {
                if let Some((_, (h, s))) = self
                    .votes
                    .get(&stable_seq.0)
                    .and_then(|v| v.get_key_value(&self.me))
                    .map(|(k, v)| (*k, *v))
                {
                    debug_assert_eq!(h, *hash);
                    out.push(CpAction::ToPeer {
                        group: self.group,
                        idx: from,
                        msg: CheckpointMsg::Announce { seq: *stable_seq, state_hash: h, sig: s },
                        state: None,
                    });
                }
            }
        }
        self.votes.entry(seq.0).or_default().insert(from, (state_hash, sig));
        self.check_stable(seq, out);
    }

    fn check_stable(&mut self, seq: SeqNr, out: &mut Vec<CpAction>) {
        let Some(votes) = self.votes.get(&seq.0) else {
            return;
        };
        // Count votes per hash; stability needs f+1 on one hash.
        let mut by_hash: BTreeMap<Digest, Vec<Signature>> = BTreeMap::new();
        for (hash, sig) in votes.values() {
            by_hash.entry(*hash).or_default().push(*sig);
        }
        let Some((hash, cert)) = by_hash.into_iter().find(|(_, v)| v.len() > self.f) else {
            return;
        };
        if self.stable.as_ref().is_some_and(|(s, _, _)| *s >= seq) {
            return;
        }
        self.stable = Some((seq, hash, cert));
        self.deliver_stable(out);
    }

    fn deliver_stable(&mut self, out: &mut Vec<CpAction>) {
        let Some((seq, hash, _)) = self.stable.clone() else {
            return;
        };
        if seq.0 <= self.delivered {
            return;
        }
        // Deliver with state when we hold a matching snapshot; otherwise
        // notify without state so the host can fetch (a later
        // FetchResponse will re-deliver with state).
        let state = self.snapshots.get(&seq.0).filter(|(h, _)| *h == hash).map(|(_, b)| b.clone());
        match state {
            Some(state) => {
                self.delivered = seq.0;
                // Keep only the snapshot backing the stable checkpoint.
                self.snapshots.retain(|&s, _| s >= seq.0);
                self.votes.retain(|&s, _| s >= seq.0);
                out.push(CpAction::Stable { seq, state: Some(state) });
            }
            None => {
                if seq.0 > self.notified {
                    self.notified = seq.0;
                    out.push(CpAction::Stable { seq, state: None });
                }
            }
        }
    }

    /// Handles a `FetchRequest` from replica `from_idx` of `from_group`
    /// (possibly another execution group, §3.5).
    pub fn on_fetch_request(
        &mut self,
        from_group: GroupId,
        from_idx: usize,
        seq: SeqNr,
        out: &mut Vec<CpAction>,
    ) {
        let Some((stable_seq, hash, cert)) = self.stable.clone() else {
            return;
        };
        if stable_seq < seq {
            return; // We have nothing new enough.
        }
        let Some((_, state)) = self.snapshots.get(&stable_seq.0).filter(|(h, _)| *h == hash) else {
            return; // Stable but we never held the bytes ourselves.
        };
        out.push(CpAction::Charge(self.cost.hmac(state.len()), "cp_hash"));
        out.push(CpAction::ToPeer {
            group: from_group,
            idx: from_idx,
            msg: CheckpointMsg::FetchResponse {
                seq: stable_seq,
                state_hash: hash,
                cert: cert.clone(),
                state_bytes: state.len(),
            },
            state: Some(state.clone()),
        });
    }

    /// Handles a `FetchResponse`. `provider_keys` are the member keys of
    /// the group the response came from (own or foreign).
    #[allow(clippy::too_many_arguments)]
    pub fn on_fetch_response(
        &mut self,
        provider_group: GroupId,
        provider_keys: &[spider_crypto::KeyId],
        seq: SeqNr,
        state_hash: Digest,
        cert: Vec<Signature>,
        state: Bytes,
        out: &mut Vec<CpAction>,
    ) {
        out.push(CpAction::Charge(
            self.cost.hmac(state.len()) + self.cost.rsa_verify() * cert.len() as u64,
            "cp_verify",
        ));
        if seq.0 <= self.delivered {
            return;
        }
        // The state must hash to the certified value…
        if Digest::of_bytes(&state) != state_hash {
            return;
        }
        // …and the certificate must carry f+1 valid signatures from
        // distinct members of the providing group.
        let digest = cp_digest(provider_group, seq, &state_hash);
        let mut seen = std::collections::BTreeSet::new();
        let valid = cert
            .iter()
            .filter(|sig| {
                provider_keys.iter().position(|k| *k == sig.signer).is_some_and(|i| {
                    seen.insert(i) && self.keyring.verify(sig.signer, &digest, sig)
                })
            })
            .count();
        if valid < self.f + 1 {
            return;
        }
        self.snapshots.insert(seq.0, (state_hash, state.clone()));
        // Adopt the certificate when it comes from our own group, so we
        // can serve later fetches ourselves. A foreign-group checkpoint is
        // applied but not re-served (its certificate names foreign keys).
        if provider_group == self.group && self.stable.as_ref().is_none_or(|(s, _, _)| *s < seq) {
            self.stable = Some((seq, state_hash, cert));
        }
        self.delivered = seq.0;
        self.snapshots.retain(|&s, _| s >= seq.0);
        self.votes.retain(|&s, _| s >= seq.0);
        out.push(CpAction::Stable { seq, state: Some(state) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::GroupId;

    fn comp(me: usize) -> CheckpointComponent {
        CheckpointComponent::new(GroupId(0), me, 1, Keyring::new(3), CostModel::zero())
    }

    fn announce_of(out: &[CpAction]) -> (SeqNr, Digest, Signature) {
        out.iter()
            .find_map(|a| match a {
                CpAction::ToGroup(CheckpointMsg::Announce { seq, state_hash, sig }) => {
                    Some((*seq, *state_hash, *sig))
                }
                _ => None,
            })
            .expect("announce emitted")
    }

    #[test]
    fn two_matching_announcements_make_stable() {
        let mut a = comp(0);
        let mut b = comp(1);
        let state = Bytes::from_static(b"snapshot-bytes");
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.generate(SeqNr(10), state.clone(), &mut out_a);
        b.generate(SeqNr(10), state, &mut out_b);
        assert!(a.stable_seq().is_none(), "own vote alone is not stable");

        let (seq, hash, sig) = announce_of(&out_b);
        let mut out = Vec::new();
        a.on_announce(1, seq, hash, sig, &mut out);
        assert_eq!(a.stable_seq(), Some(SeqNr(10)));
        assert!(out.iter().any(|x| matches!(
            x,
            CpAction::Stable { seq, state: Some(_) } if *seq == SeqNr(10)
        )));
    }

    #[test]
    fn mismatching_hashes_never_stabilize() {
        let mut a = comp(0);
        let mut b = comp(1);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.generate(SeqNr(10), Bytes::from_static(b"one"), &mut out_a);
        b.generate(SeqNr(10), Bytes::from_static(b"two"), &mut out_b);
        let (seq, hash, sig) = announce_of(&out_b);
        let mut out = Vec::new();
        a.on_announce(1, seq, hash, sig, &mut out);
        assert_eq!(a.stable_seq(), None);
    }

    #[test]
    fn forged_announcement_is_rejected() {
        let mut a = comp(0);
        let state = Bytes::from_static(b"s");
        let hash = Digest::of_bytes(&state);
        // Signed with the wrong identity (member 2 claims to be 1).
        let ring = Keyring::new(3);
        let bad_sig = ring
            .sign(crate::keys::exec_key(GroupId(0), 2), &cp_digest(GroupId(0), SeqNr(10), &hash));
        let mut out = Vec::new();
        a.generate(SeqNr(10), state, &mut out);
        a.on_announce(1, SeqNr(10), hash, bad_sig, &mut out);
        assert_eq!(a.stable_seq(), None);
    }

    #[test]
    fn fetch_response_transfers_verified_state() {
        // a and b stabilize a checkpoint; c (fresh) fetches it from a.
        let mut a = comp(0);
        let mut b = comp(1);
        let mut c = comp(2);
        let state = Bytes::from_static(b"the-state");
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.generate(SeqNr(20), state.clone(), &mut out_a);
        b.generate(SeqNr(20), state, &mut out_b);
        let (seq, hash, sig) = announce_of(&out_b);
        let mut sink = Vec::new();
        a.on_announce(1, seq, hash, sig, &mut sink);

        let mut fetch_out = Vec::new();
        c.fetch(SeqNr(1), &mut fetch_out);
        let mut resp_out = Vec::new();
        a.on_fetch_request(GroupId(0), 2, SeqNr(1), &mut resp_out);
        let (seq, hash, cert, state) = resp_out
            .iter()
            .find_map(|x| match x {
                CpAction::ToPeer {
                    msg: CheckpointMsg::FetchResponse { seq, state_hash, cert, .. },
                    state: Some(state),
                    ..
                } => Some((*seq, *state_hash, cert.clone(), state.clone())),
                _ => None,
            })
            .expect("fetch response with state");

        let mut out = Vec::new();
        let keys = crate::keys::exec_keys(GroupId(0), 3);
        c.on_fetch_response(GroupId(0), &keys, seq, hash, cert, state, &mut out);
        assert!(out.iter().any(|x| matches!(
            x,
            CpAction::Stable { seq, state: Some(s) } if *seq == SeqNr(20) && s == &Bytes::from_static(b"the-state")
        )));
    }

    #[test]
    fn fetch_response_with_tampered_state_rejected() {
        let mut a = comp(0);
        let mut b = comp(1);
        let state = Bytes::from_static(b"real");
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.generate(SeqNr(5), state.clone(), &mut out_a);
        b.generate(SeqNr(5), state, &mut out_b);
        let (seq, hash, sig) = announce_of(&out_b);
        let mut sink = Vec::new();
        a.on_announce(1, seq, hash, sig, &mut sink);
        let mut resp_out = Vec::new();
        a.on_fetch_request(GroupId(0), 2, SeqNr(1), &mut resp_out);
        let (seq, hash, cert, _) = resp_out
            .iter()
            .find_map(|x| match x {
                CpAction::ToPeer {
                    msg: CheckpointMsg::FetchResponse { seq, state_hash, cert, .. },
                    state: Some(state),
                    ..
                } => Some((*seq, *state_hash, cert.clone(), state.clone())),
                _ => None,
            })
            .unwrap();
        let mut c = comp(2);
        let mut out = Vec::new();
        let keys = crate::keys::exec_keys(GroupId(0), 3);
        c.on_fetch_response(
            GroupId(0),
            &keys,
            seq,
            hash,
            cert,
            Bytes::from_static(b"fake"),
            &mut out,
        );
        assert!(!out.iter().any(|x| matches!(x, CpAction::Stable { .. })));
    }

    #[test]
    fn stable_is_monotonic() {
        let mut a = comp(0);
        let mut b = comp(1);
        for seq in [10u64, 20] {
            let state = Bytes::from(format!("state-{seq}"));
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            a.generate(SeqNr(seq), state.clone(), &mut out_a);
            b.generate(SeqNr(seq), state, &mut out_b);
            let (s, h, sig) = announce_of(&out_b);
            let mut sink = Vec::new();
            a.on_announce(1, s, h, sig, &mut sink);
        }
        assert_eq!(a.stable_seq(), Some(SeqNr(20)));
        // A late announce for 10 must not regress anything.
        let mut out_b = Vec::new();
        let mut b2 = comp(1);
        b2.generate(SeqNr(10), Bytes::from_static(b"state-10"), &mut out_b);
        let (s, h, sig) = announce_of(&out_b);
        let mut out = Vec::new();
        a.on_announce(1, s, h, sig, &mut out);
        assert_eq!(a.stable_seq(), Some(SeqNr(20)));
        // It does, however, trigger help for the laggard.
        assert!(out.iter().any(|x| matches!(
            x,
            CpAction::ToPeer { msg: CheckpointMsg::Announce { seq, .. }, .. } if *seq == SeqNr(20)
        )));
    }
}
