//! Deployment builder: wires replicas, channels, and clients into a
//! simulation.

use crate::agreement::AgreementReplica;
use crate::app::{Application, CounterApp};
use crate::client::{ClientFault, Sample, SpiderClient, WorkloadSpec};
use crate::config::SpiderConfig;
use crate::directory::{Directory, GroupInfo};
use crate::execution::ExecutionReplica;
use crate::messages::{AdminCommand, SpiderMsg};
use spider_sim::{Actor, Context, Simulation, Timer};
use spider_types::{ClientId, GroupId, NodeId, RegionId, SimTime};
use std::sync::Arc;

/// Builds a full Spider deployment inside a [`Simulation`].
///
/// See the [crate docs](crate) for a complete example.
pub struct DeploymentBuilder<A: Application = CounterApp> {
    cfg: SpiderConfig,
    agreement_region: String,
    leader_zone: u8,
    /// Optional explicit per-replica region list for the agreement group
    /// (cycled), used when one region lacks enough fault domains (Fig 11).
    agreement_span: Option<Vec<String>>,
    /// Per-group, per-replica region list (cycled over the group size).
    exec_groups: Vec<Vec<String>>,
    app_factory: Arc<dyn Fn() -> A>,
}

impl DeploymentBuilder<CounterApp> {
    /// Starts a deployment running the built-in [`CounterApp`].
    pub fn new(cfg: SpiderConfig) -> Self {
        DeploymentBuilder {
            cfg,
            agreement_region: String::new(),
            leader_zone: 0,
            agreement_span: None,
            exec_groups: Vec::new(),
            app_factory: Arc::new(CounterApp::default),
        }
    }
}

impl<A: Application> DeploymentBuilder<A> {
    /// Uses a custom application; `factory` creates one fresh instance per
    /// execution replica.
    pub fn with_app<B: Application>(
        self,
        factory: impl Fn() -> B + 'static,
    ) -> DeploymentBuilder<B> {
        DeploymentBuilder {
            cfg: self.cfg,
            agreement_region: self.agreement_region,
            leader_zone: self.leader_zone,
            agreement_span: self.agreement_span,
            exec_groups: self.exec_groups,
            app_factory: Arc::new(factory),
        }
    }

    /// Region hosting the agreement group (needs `3·fa + 1` zones to put
    /// every replica in its own fault domain; fewer zones wrap around).
    #[must_use]
    pub fn agreement_region(mut self, region: &str) -> Self {
        self.agreement_region = region.to_owned();
        self
    }

    /// Availability zone of the initial consensus leader (replica 0) —
    /// the paper's "Leader in V-1/V-2/…" configurations (Fig 7).
    #[must_use]
    pub fn agreement_leader_zone(mut self, zone: u8) -> Self {
        self.leader_zone = zone;
        self
    }

    /// Adds an execution group in `region`. Groups get ids in call order.
    #[must_use]
    pub fn execution_group(mut self, region: &str) -> Self {
        self.exec_groups.push(vec![region.to_owned()]);
        self
    }

    /// Adds an execution group whose replicas cycle over `regions` — the
    /// paper's `f = 2` setup places extra replicas in a nearby region to
    /// gain fault domains (Fig 11). Clients attach to `regions[0]`.
    #[must_use]
    pub fn execution_group_span(mut self, regions: &[&str]) -> Self {
        assert!(!regions.is_empty());
        self.exec_groups.push(regions.iter().map(|r| (*r).to_owned()).collect());
        self
    }

    /// Overrides agreement-replica placement with a per-replica region
    /// cycle (e.g. six Virginia zones plus one Ohio zone for `fa = 2`).
    #[must_use]
    pub fn agreement_span(mut self, regions: &[&str]) -> Self {
        assert!(!regions.is_empty());
        self.agreement_span = Some(regions.iter().map(|r| (*r).to_owned()).collect());
        self
    }

    /// Spawns every replica and returns the deployment handle.
    ///
    /// # Panics
    ///
    /// Panics if no agreement region was set or the config is invalid.
    pub fn build(self, sim: &mut Simulation<SpiderMsg>) -> Deployment {
        self.cfg.validate();
        if self.cfg.tracing && !sim.obs().is_enabled() {
            sim.enable_obs(spider_sim::ObsConfig::default());
        }
        assert!(
            !self.agreement_region.is_empty() || self.agreement_span.is_some(),
            "agreement region required"
        );
        let directory = Directory::new();
        let initial_groups: Vec<GroupId> =
            (0..self.exec_groups.len()).map(|i| GroupId(i as u16)).collect();

        // Agreement replicas, one per availability zone, leader first.
        let mut agreement = Vec::new();
        let mut zone_cursor: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for i in 0..self.cfg.agreement_size() {
            let zone = match &self.agreement_span {
                Some(span) => {
                    let region = span[i % span.len()].clone();
                    let zones = sim.topology().num_zones(sim.topology().region(&region));
                    let cursor = zone_cursor.entry(region.clone()).or_insert(0);
                    let z = (*cursor % zones as usize) as u8;
                    *cursor += 1;
                    sim.topology().zone(&region, z)
                }
                None => {
                    let region = self.agreement_region.clone();
                    let zones = sim.topology().num_zones(sim.topology().region(&region));
                    let z = ((self.leader_zone as usize + i) % zones as usize) as u8;
                    sim.topology().zone(&region, z)
                }
            };
            let replica =
                AgreementReplica::new(self.cfg.clone(), i, directory.clone(), &initial_groups);
            agreement.push(sim.add_node(zone, replica));
        }
        directory.set_agreement(agreement.clone());

        // Execution groups, replicas spread over their span's zones.
        let mut groups = Vec::new();
        for (gi, span) in self.exec_groups.iter().enumerate() {
            let group = GroupId(gi as u16);
            let home = &span[0];
            let region_id = sim.topology().region(home);
            let mut nodes = Vec::new();
            let mut cursor: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for j in 0..self.cfg.execution_size() {
                let region = span[j % span.len()].clone();
                let zones = sim.topology().num_zones(sim.topology().region(&region));
                let c = cursor.entry(region.clone()).or_insert(0);
                let zone = sim.topology().zone(&region, (*c % zones as usize) as u8);
                *c += 1;
                let replica = ExecutionReplica::new(
                    self.cfg.clone(),
                    group,
                    j,
                    directory.clone(),
                    (self.app_factory)(),
                );
                nodes.push(sim.add_node(zone, replica));
            }
            directory.register_group(
                group,
                GroupInfo { replicas: nodes.clone(), region: region_id, active: true },
            );
            groups.push((group, home.clone(), nodes));
        }

        let factory = self.app_factory.clone();
        Deployment {
            cfg: self.cfg,
            directory,
            agreement,
            groups,
            clients: Vec::new(),
            next_client: 0,
            app_factory_boxed: AppFactoryBox(Arc::new(move || {
                Box::new(factory()) as Box<dyn Application>
            })),
        }
    }
}

/// Type-erased application factory retained for runtime group addition.
#[derive(Clone)]
struct AppFactoryBox(Arc<dyn Fn() -> Box<dyn Application>>);

/// Minimal admin-client actor: submits a reconfiguration command to the
/// agreement group at a configured time (§3.6).
struct AdminClient {
    directory: Directory,
    command: AdminCommand,
    at: SimTime,
}

impl Actor<SpiderMsg> for AdminClient {
    fn on_start(&mut self, ctx: &mut Context<'_, SpiderMsg>) {
        let delay = self.at.saturating_sub(ctx.now());
        ctx.set_timer(delay, 1);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, SpiderMsg>, _from: NodeId, _msg: SpiderMsg) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, SpiderMsg>, _timer: Timer) {
        for node in self.directory.agreement() {
            // analyzer: allow(charge-coverage, "admin orchestration client, outside the measured protocol")
            // analyzer: allow(edge-pairing, "admin reconfiguration commands carry no client request payload")
            ctx.send(node, SpiderMsg::Admin(self.command.clone()));
        }
    }
}

/// A built Spider deployment: handles to every node plus client
/// management.
pub struct Deployment {
    /// The configuration the deployment runs.
    pub cfg: SpiderConfig,
    /// Shared directory (execution-replica registry stand-in).
    pub directory: Directory,
    /// Agreement replica nodes, replica-index order.
    pub agreement: Vec<NodeId>,
    /// `(group, region name, replica nodes)` per execution group.
    pub groups: Vec<(GroupId, String, Vec<NodeId>)>,
    /// All spawned clients: `(client, group, node)`.
    pub clients: Vec<(ClientId, GroupId, NodeId)>,
    next_client: u32,
    app_factory_boxed: AppFactoryBox,
}

impl Deployment {
    /// Spawns `count` clients attached to `groups[group_idx]`, running
    /// `workload`. Returns their node ids.
    pub fn spawn_clients(
        &mut self,
        sim: &mut Simulation<SpiderMsg>,
        group_idx: usize,
        count: usize,
        workload: WorkloadSpec,
    ) -> Vec<NodeId> {
        self.spawn_clients_with_fault(sim, group_idx, count, workload, ClientFault::None)
    }

    /// Like [`Deployment::spawn_clients`] with an injected fault.
    pub fn spawn_clients_with_fault(
        &mut self,
        sim: &mut Simulation<SpiderMsg>,
        group_idx: usize,
        count: usize,
        workload: WorkloadSpec,
        fault: ClientFault,
    ) -> Vec<NodeId> {
        let (group, region, _) = self.groups[group_idx].clone();
        let zones = sim.topology().num_zones(sim.topology().region(&region));
        let mut nodes = Vec::new();
        for k in 0..count {
            let id = ClientId(self.next_client);
            self.next_client += 1;
            let zone = sim.topology().zone(&region, (k % zones as usize) as u8);
            let mut client = SpiderClient::new(
                self.cfg.clone(),
                id,
                group,
                self.directory.clone(),
                Some(workload.clone()),
            );
            client.set_fault(fault);
            let node = sim.add_node(zone, client);
            self.directory.register_client(id, node);
            self.clients.push((id, group, node));
            nodes.push(node);
        }
        nodes
    }

    /// Spawns a new execution group in `region` at runtime: replicas start
    /// immediately (inactive), and an admin client submits `AddGroup` at
    /// `activate_at` (§3.6). Returns the new group id.
    pub fn add_execution_group(
        &mut self,
        sim: &mut Simulation<SpiderMsg>,
        region: &str,
        activate_at: SimTime,
    ) -> GroupId {
        let group = GroupId(self.groups.len() as u16);
        let region_id = sim.topology().region(region);
        let zones = sim.topology().num_zones(region_id);
        let mut nodes = Vec::new();
        for j in 0..self.cfg.execution_size() {
            let zone = sim.topology().zone(region, (j % zones as usize) as u8);
            let replica = ExecutionReplicaDyn::new(
                self.cfg.clone(),
                group,
                j,
                self.directory.clone(),
                (self.app_factory_boxed.0)(),
            );
            nodes.push(sim.add_node(zone, replica));
        }
        self.directory.register_group(
            group,
            GroupInfo { replicas: nodes.clone(), region: region_id, active: false },
        );
        self.groups.push((group, region.to_owned(), nodes));

        // Admin client lives next to the agreement group; placement is
        // irrelevant for the experiment.
        let zone = sim.zone_of(self.agreement[0]);
        sim.add_node(
            zone,
            AdminClient {
                directory: self.directory.clone(),
                command: AdminCommand::AddGroup { group },
                at: activate_at,
            },
        );
        group
    }

    /// Collects `(client, group, samples)` from every spawned client.
    pub fn collect_samples(
        &self,
        sim: &Simulation<SpiderMsg>,
    ) -> Vec<(ClientId, GroupId, Vec<Sample>)> {
        self.clients
            .iter()
            .map(|(id, group, node)| {
                let samples = sim.actor::<SpiderClient>(*node).samples.clone();
                (*id, *group, samples)
            })
            .collect()
    }

    /// Node ids of one execution group.
    pub fn group_nodes(&self, group_idx: usize) -> &[NodeId] {
        &self.groups[group_idx].2
    }
}

/// Execution replica over a boxed application (used for groups added at
/// runtime, where the concrete app type has been erased).
type ExecutionReplicaDyn = ExecutionReplica<Box<dyn Application>>;

impl Application for Box<dyn Application> {
    fn execute(&mut self, op: &[u8]) -> bytes::Bytes {
        (**self).execute(op)
    }
    fn execute_read(&self, op: &[u8]) -> bytes::Bytes {
        (**self).execute_read(op)
    }
    fn snapshot(&self) -> bytes::Bytes {
        (**self).snapshot()
    }
    fn restore(&mut self, snapshot: &[u8]) {
        (**self).restore(snapshot)
    }
}

/// Convenience: the region of a group by index.
pub fn region_of(deployment: &Deployment, group_idx: usize) -> RegionId {
    deployment.directory.group_region(deployment.groups[group_idx].0)
}
