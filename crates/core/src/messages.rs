//! All messages of a Spider deployment.
//!
//! The simulator is generic over one message type; [`SpiderMsg`] is that
//! type for Spider deployments. It wraps client traffic, IRMC channel
//! legs, consensus messages, checkpoint traffic, and state transfer.

use bytes::Bytes;
use spider_crypto::{Digest, Digestible};
use spider_irmc::{ChannelMsg, ReceiverMsg};
use spider_types::wire::{DIGEST_BYTES, HEADER_BYTES, MAC_BYTES, SIG_BYTES};
use spider_types::{ClientId, GroupId, OpKind, SeqNr, WireSize};

/// A client operation: opaque application bytes plus its classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Application-defined encoded operation.
    pub op: Bytes,
    /// Write / strong read / weak read.
    pub kind: OpKind,
}

impl Digestible for Operation {
    fn digest(&self) -> Digest {
        Digest::builder().str("op").u64(self.kind as u64).bytes(&self.op).finish()
    }
}

impl WireSize for Operation {
    fn wire_size(&self) -> usize {
        1 + self.op.len()
    }
}

/// `⟨Write, w, c, tc⟩` / read request from a client (Fig 15).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRequest {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local counter `tc`.
    pub tc: u64,
    /// The operation.
    pub operation: Operation,
}

impl Digestible for ClientRequest {
    fn digest(&self) -> Digest {
        Digest::builder()
            .str("client-request")
            .u32(self.client.0)
            .u64(self.tc)
            .digest(&self.operation.digest())
            .finish()
    }
}

impl WireSize for ClientRequest {
    fn wire_size(&self) -> usize {
        // Signed by the client and MAC'd towards the group (§5).
        HEADER_BYTES + 12 + self.operation.wire_size() + SIG_BYTES + MAC_BYTES
    }

    fn trace_kind(&self) -> &'static str {
        "request"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        visit(spider_sim::req_id(self.client.0, self.tc));
    }
}

/// `⟨Request, r, e⟩`: a client request wrapped by execution group `origin`
/// for submission to the agreement group (Fig 16 L22). This is what the
/// consensus protocol orders.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedRequest {
    /// The client request (carries the client's signature).
    pub request: ClientRequest,
    /// The execution group that forwarded it.
    pub origin: GroupId,
}

impl Digestible for OrderedRequest {
    fn digest(&self) -> Digest {
        Digest::builder()
            .str("ordered-request")
            .u64(self.origin.0 as u64)
            .digest(&self.request.digest())
            .finish()
    }
}

impl WireSize for OrderedRequest {
    fn wire_size(&self) -> usize {
        HEADER_BYTES + 4 + self.request.wire_size()
    }

    fn trace_kind(&self) -> &'static str {
        "request"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        self.request.trace_reqs(visit);
    }
}

/// Payload of an `Execute` (Fig 16 L31): either the full request, or — for
/// strongly consistent reads at non-target groups — a placeholder carrying
/// only the client id and counter (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutePayload {
    /// The full ordered request.
    Full(OrderedRequest),
    /// Placeholder for a read executed elsewhere.
    Placeholder {
        /// The reading client.
        client: ClientId,
        /// Its request counter.
        tc: u64,
        /// The group that executes the read for real.
        target: GroupId,
    },
}

/// `⟨Execute, r, s⟩`: an ordered request forwarded through a commit
/// channel (Fig 17 L36).
#[derive(Debug, Clone, PartialEq)]
pub struct Execute {
    /// Agreement sequence number.
    pub seq: SeqNr,
    /// Full request or placeholder.
    pub payload: ExecutePayload,
}

impl Digestible for Execute {
    fn digest(&self) -> Digest {
        let b = Digest::builder().str("execute").u64(self.seq.0);
        match &self.payload {
            ExecutePayload::Full(r) => b.u64(0).digest(&r.digest()).finish(),
            ExecutePayload::Placeholder { client, tc, target } => {
                b.u64(1).u32(client.0).u64(*tc).u64(target.0 as u64).finish()
            }
        }
    }
}

impl WireSize for Execute {
    fn wire_size(&self) -> usize {
        match &self.payload {
            ExecutePayload::Full(r) => HEADER_BYTES + 8 + r.wire_size(),
            ExecutePayload::Placeholder { .. } => HEADER_BYTES + 24,
        }
    }

    fn trace_kind(&self) -> &'static str {
        "execute"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        match &self.payload {
            ExecutePayload::Full(r) => r.trace_reqs(visit),
            ExecutePayload::Placeholder { client, tc, .. } => {
                visit(spider_sim::req_id(client.0, *tc));
            }
        }
    }
}

/// `⟨Result, uc, tc⟩`: the reply an execution replica returns (Fig 16
/// L38).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Client request counter this reply answers.
    pub tc: u64,
    /// Application result.
    pub result: Bytes,
    /// Whether this reply answers a weakly consistent read.
    pub weak: bool,
    /// Set when the replica skipped this request (group-specific read
    /// dropped under global flow control, §A.7.9): the client must
    /// resubmit under a fresh counter.
    pub resubmit: bool,
}

impl WireSize for Reply {
    fn wire_size(&self) -> usize {
        HEADER_BYTES + 10 + self.result.len() + MAC_BYTES
    }

    // A reply carries only the client-local counter `tc`, not the client
    // id (the transport addresses the client), so it cannot reconstruct
    // its request id here; the execution replica records the reply edge
    // explicitly with `Context::edge`.
    fn trace_kind(&self) -> &'static str {
        "reply"
    }
}

/// Checkpoint protocol message: `⟨Checkpoint, h, s⟩` signed (§3.4), plus
/// state-transfer requests/responses.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointMsg {
    /// A signed hash of a snapshot at sequence number `seq`.
    Announce {
        /// Snapshot sequence number.
        seq: SeqNr,
        /// Hash of the snapshot.
        state_hash: Digest,
        /// Signature by the announcing replica.
        sig: spider_crypto::Signature,
    },
    /// Ask a peer for the full state of its latest stable checkpoint at or
    /// after `seq`.
    FetchRequest {
        /// Minimum sequence number needed.
        seq: SeqNr,
    },
    /// Full-state response with the certificate proving stability.
    FetchResponse {
        /// Snapshot sequence number.
        seq: SeqNr,
        /// Hash of the snapshot (what the certificate signs).
        state_hash: Digest,
        /// `f + 1` signatures over (seq, hash) from distinct group members.
        cert: Vec<spider_crypto::Signature>,
        /// Serialized snapshot size in bytes (content travels out of band
        /// in the host-side `state` field of the enclosing message).
        state_bytes: usize,
    },
}

impl WireSize for CheckpointMsg {
    fn wire_size(&self) -> usize {
        match self {
            CheckpointMsg::Announce { .. } => HEADER_BYTES + 8 + DIGEST_BYTES + SIG_BYTES,
            CheckpointMsg::FetchRequest { .. } => HEADER_BYTES + 8 + MAC_BYTES,
            CheckpointMsg::FetchResponse { cert, state_bytes, .. } => {
                HEADER_BYTES + 8 + DIGEST_BYTES + cert.len() * SIG_BYTES + state_bytes
            }
        }
    }
}

/// Administrative commands (§3.6), ordered through the agreement group.
#[derive(Debug, Clone, PartialEq)]
pub enum AdminCommand {
    /// `⟨AddGroup, e, E⟩`: register execution group `group` whose replicas
    /// are already running (their node ids live in the shared directory).
    AddGroup {
        /// The group to add.
        group: GroupId,
    },
    /// `⟨RemoveGroup, e⟩`.
    RemoveGroup {
        /// The group to remove.
        group: GroupId,
    },
}

/// What the agreement group orders: ordinary requests or admin commands.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderItem {
    /// A client request forwarded by an execution group.
    Request(OrderedRequest),
    /// A reconfiguration command from the admin client.
    Admin(AdminCommand),
}

impl Digestible for OrderItem {
    fn digest(&self) -> Digest {
        match self {
            OrderItem::Request(r) => r.digest(),
            OrderItem::Admin(AdminCommand::AddGroup { group }) => {
                Digest::builder().str("admin-add").u64(group.0 as u64).finish()
            }
            OrderItem::Admin(AdminCommand::RemoveGroup { group }) => {
                Digest::builder().str("admin-remove").u64(group.0 as u64).finish()
            }
        }
    }
}

impl WireSize for OrderItem {
    fn wire_size(&self) -> usize {
        match self {
            OrderItem::Request(r) => r.wire_size(),
            OrderItem::Admin(_) => HEADER_BYTES + 8 + SIG_BYTES,
        }
    }

    fn trace_kind(&self) -> &'static str {
        "order"
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        if let OrderItem::Request(r) = self {
            r.trace_reqs(visit);
        }
    }
}

/// Identifies which IRMC a channel-leg message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Execution group -> agreement group (new requests).
    Request,
    /// Agreement group -> execution group (ordered `Execute`s).
    Commit,
}

/// A transport frame of one IRMC (sender->receiver, receiver->sender, or
/// sender-group-internal).
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelLeg<M> {
    /// Sender-side endpoint to receiver-side endpoint.
    ToReceiver(ChannelMsg<M>),
    /// Receiver-side endpoint to sender-side endpoint.
    ToSender(ReceiverMsg),
    /// Between sender-side endpoints (IRMC-SC shares).
    Peer(ChannelMsg<M>),
}

impl<M: spider_irmc::Content> WireSize for ChannelLeg<M> {
    fn wire_size(&self) -> usize {
        match self {
            ChannelLeg::ToReceiver(m) | ChannelLeg::Peer(m) => m.wire_size(),
            ChannelLeg::ToSender(m) => m.wire_size(),
        }
    }

    fn trace_kind(&self) -> &'static str {
        match self {
            ChannelLeg::ToReceiver(m) | ChannelLeg::Peer(m) => m.trace_kind(),
            ChannelLeg::ToSender(m) => m.trace_kind(),
        }
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        if let ChannelLeg::ToReceiver(m) | ChannelLeg::Peer(m) = self {
            m.trace_reqs(visit);
        }
    }
}

/// Top-level message type of a Spider deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiderMsg {
    /// Client -> execution replica.
    Request(ClientRequest),
    /// Execution replica -> client.
    Reply(Reply),
    /// Request-channel traffic between execution group `group` and the
    /// agreement group.
    RequestChannel {
        /// The execution group owning the channel.
        group: GroupId,
        /// The frame.
        leg: ChannelLeg<OrderedRequest>,
    },
    /// Commit-channel traffic between the agreement group and execution
    /// group `group`.
    CommitChannel {
        /// The execution group owning the channel.
        group: GroupId,
        /// The frame.
        leg: ChannelLeg<Execute>,
    },
    /// Consensus traffic within the agreement group.
    Agreement(spider_consensus::Msg<OrderItem>),
    /// Checkpoint traffic within (or, for fetches, across) groups.
    Checkpoint {
        /// The group whose checkpoint protocol this belongs to (the
        /// *sender's* group).
        group: GroupId,
        /// The message.
        msg: CheckpointMsg,
        /// Out-of-band snapshot payload for fetch responses. Sized via
        /// `CheckpointMsg::FetchResponse::state_bytes`.
        state: Option<StateBlob>,
    },
    /// Admin client -> agreement replicas (reconfiguration, §3.6).
    Admin(AdminCommand),
}

/// An opaque serialized snapshot travelling in a fetch response.
#[derive(Debug, Clone, PartialEq)]
pub struct StateBlob {
    /// Execution or agreement snapshot, encoded by the owning component.
    pub bytes: Bytes,
    /// Snapshot sequence number.
    pub seq: SeqNr,
}

impl WireSize for SpiderMsg {
    fn wire_size(&self) -> usize {
        match self {
            SpiderMsg::Request(r) => r.wire_size(),
            SpiderMsg::Reply(r) => r.wire_size(),
            SpiderMsg::RequestChannel { leg, .. } => HEADER_BYTES + leg.wire_size(),
            SpiderMsg::CommitChannel { leg, .. } => HEADER_BYTES + leg.wire_size(),
            SpiderMsg::Agreement(m) => m.wire_size(),
            SpiderMsg::Checkpoint { msg, .. } => msg.wire_size(),
            SpiderMsg::Admin(_) => HEADER_BYTES + 8 + SIG_BYTES,
        }
    }

    fn trace_kind(&self) -> &'static str {
        match self {
            SpiderMsg::Request(_) => "request",
            SpiderMsg::Reply(_) => "reply",
            SpiderMsg::RequestChannel { leg, .. } => match leg.trace_kind() {
                "cast" => "req-cast",
                "share" => "req-share",
                "cert" => "req-cert",
                "vouch" => "req-vouch",
                "content" => "req-content",
                _ => "req-ctrl",
            },
            SpiderMsg::CommitChannel { leg, .. } => match leg.trace_kind() {
                "cast" => "commit-cast",
                "share" => "commit-share",
                "cert" => "commit-cert",
                "vouch" => "commit-vouch",
                "content" => "commit-content",
                _ => "commit-ctrl",
            },
            SpiderMsg::Agreement(m) => m.trace_kind(),
            SpiderMsg::Checkpoint { .. } => "checkpoint",
            SpiderMsg::Admin(_) => "admin",
        }
    }

    fn trace_reqs(&self, visit: &mut dyn FnMut(u64)) {
        match self {
            SpiderMsg::Request(r) => r.trace_reqs(visit),
            SpiderMsg::RequestChannel { leg, .. } => leg.trace_reqs(visit),
            SpiderMsg::CommitChannel { leg, .. } => leg.trace_reqs(visit),
            SpiderMsg::Agreement(m) => m.trace_reqs(visit),
            // Replies (no client id on the wire), checkpoints, and admin
            // traffic record no per-request edges here.
            SpiderMsg::Reply(_) | SpiderMsg::Checkpoint { .. } | SpiderMsg::Admin(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_types::OpKind;

    fn request(tc: u64) -> ClientRequest {
        ClientRequest {
            client: ClientId(1),
            tc,
            operation: Operation { op: Bytes::from_static(b"put k v"), kind: OpKind::Write },
        }
    }

    #[test]
    fn digests_distinguish_counters_and_clients() {
        let a = request(1).digest();
        let b = request(2).digest();
        assert_ne!(a, b);
        let mut other = request(1);
        other.client = ClientId(2);
        assert_ne!(a, other.digest());
    }

    #[test]
    fn execute_digest_distinguishes_full_and_placeholder() {
        let full = Execute {
            seq: SeqNr(5),
            payload: ExecutePayload::Full(OrderedRequest {
                request: request(1),
                origin: GroupId(0),
            }),
        };
        let ph = Execute {
            seq: SeqNr(5),
            payload: ExecutePayload::Placeholder { client: ClientId(1), tc: 1, target: GroupId(0) },
        };
        assert_ne!(full.digest(), ph.digest());
    }

    #[test]
    fn placeholder_is_smaller_than_full_request() {
        let full = Execute {
            seq: SeqNr(5),
            payload: ExecutePayload::Full(OrderedRequest {
                request: request(1),
                origin: GroupId(0),
            }),
        };
        let ph = Execute {
            seq: SeqNr(5),
            payload: ExecutePayload::Placeholder { client: ClientId(1), tc: 1, target: GroupId(0) },
        };
        assert!(ph.wire_size() < full.wire_size(), "placeholders minimize network overhead (§3.3)");
    }

    #[test]
    fn fetch_response_size_includes_state() {
        let small = CheckpointMsg::FetchResponse {
            seq: SeqNr(1),
            state_hash: Digest::ZERO,
            cert: vec![],
            state_bytes: 100,
        };
        let big = CheckpointMsg::FetchResponse {
            seq: SeqNr(1),
            state_hash: Digest::ZERO,
            cert: vec![],
            state_bytes: 10_000,
        };
        assert_eq!(big.wire_size() - small.wire_size(), 9_900);
    }

    #[test]
    fn order_item_admin_digests_differ_per_group() {
        let a = OrderItem::Admin(AdminCommand::AddGroup { group: GroupId(1) }).digest();
        let b = OrderItem::Admin(AdminCommand::AddGroup { group: GroupId(2) }).digest();
        let c = OrderItem::Admin(AdminCommand::RemoveGroup { group: GroupId(1) }).digest();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
