//! Logical signing identities.
//!
//! Crypto identities are decoupled from transport addresses: a replica's
//! [`KeyId`] is a function of its *role* (group + index), not of the
//! simulator node id. This lets endpoints and checkpoint components be
//! constructed before the deployment's node ids exist, and lets any party
//! compute the verification keys of any group.

use spider_crypto::KeyId;
use spider_types::{ClientId, GroupId};

/// Group id reserved for the agreement group.
pub const AGREEMENT_GROUP: GroupId = GroupId(u16::MAX);

/// Key of agreement replica `i`.
pub fn agreement_key(i: usize) -> KeyId {
    KeyId(10_000 + i as u32)
}

/// Keys of the whole agreement group (`n = 3fa + 1`).
pub fn agreement_keys(n: usize) -> Vec<KeyId> {
    (0..n).map(agreement_key).collect()
}

/// Key of replica `i` of execution group `g`.
pub fn exec_key(g: GroupId, i: usize) -> KeyId {
    KeyId(100_000 + g.0 as u32 * 100 + i as u32)
}

/// Keys of execution group `g` (`n = 2fe + 1`).
pub fn exec_keys(g: GroupId, n: usize) -> Vec<KeyId> {
    (0..n).map(|i| exec_key(g, i)).collect()
}

/// Key of a client.
pub fn client_key(c: ClientId) -> KeyId {
    KeyId(1_000_000 + c.0)
}

/// Key of the privileged admin client (§3.6).
pub fn admin_key() -> KeyId {
    KeyId(999)
}

/// Keys of an arbitrary group (agreement or execution).
pub fn group_keys(group: GroupId, n: usize) -> Vec<KeyId> {
    if group == AGREEMENT_GROUP {
        agreement_keys(n)
    } else {
        exec_keys(group, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct_across_roles() {
        let mut all = vec![admin_key(), client_key(ClientId(0))];
        all.extend(exec_keys(GroupId(0), 3));
        all.extend(exec_keys(GroupId(1), 3));
        all.extend(agreement_keys(4));
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "no collisions");
    }

    #[test]
    fn group_keys_dispatches_on_group() {
        assert_eq!(group_keys(AGREEMENT_GROUP, 2), agreement_keys(2));
        assert_eq!(group_keys(GroupId(3), 2), exec_keys(GroupId(3), 2));
    }
}
