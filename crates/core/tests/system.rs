//! Full-system tests: Spider deployments on the discrete-event simulator.
//!
//! These exercise the paper's correctness claims end to end: E-Safety
//! (identical execution everywhere), E-Validity II (at-most-once),
//! E-Liveness (clients eventually get replies) — under normal operation,
//! checkpoint catch-up, Byzantine replicas and clients (§3.7), leader
//! crashes, and runtime reconfiguration (§3.6).

use spider::agreement::AgreementReplica;
use spider::execution::{ExecFault, ExecutionReplica};
use spider::{
    Application, ClientFault, CounterApp, DeploymentBuilder, SpiderClient, SpiderConfig,
    WorkloadSpec,
};
use spider_crypto::CostModel;
use spider_sim::{Simulation, Topology};
use spider_types::{OpKind, SimTime};

type ExecReplica = ExecutionReplica<CounterApp>;

/// Two-region topology: agreement + one execution group in Virginia, a
/// second execution group in Tokyo.
fn topology() -> Topology {
    Topology::builder()
        .region("virginia", 4)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
        .build()
}

fn small_cfg() -> SpiderConfig {
    // Small intervals so short tests cross checkpoint boundaries.
    SpiderConfig { ka: 8, ke: 8, ag_win: 16, commit_capacity: 32, ..SpiderConfig::default() }
}

fn build(sim: &mut Simulation<spider::SpiderMsg>, cfg: SpiderConfig) -> spider::Deployment {
    DeploymentBuilder::new(cfg)
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(sim)
}

#[test]
fn writes_complete_and_states_converge() {
    let mut sim = Simulation::new(topology(), 11);
    let mut dep = build(&mut sim, small_cfg());
    dep.spawn_clients(&mut sim, 0, 2, WorkloadSpec::writes_per_sec(20.0, 200).with_max_ops(30));
    dep.spawn_clients(&mut sim, 1, 2, WorkloadSpec::writes_per_sec(20.0, 200).with_max_ops(30));
    sim.run_until_quiescent(SimTime::from_secs(30));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 120, "every write completed");

    // E-Safety: all six execution replicas (both groups) applied the same
    // writes — the counter state digests match.
    let mut digests = Vec::new();
    for gi in 0..2 {
        for node in dep.group_nodes(gi) {
            digests.push(sim.actor::<ExecReplica>(*node).app_digest());
        }
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "replica states diverged");
    // 120 writes of add:1.
    let v = sim.actor::<ExecReplica>(dep.group_nodes(0)[0]).app().value();
    assert_eq!(v, 120);
}

#[test]
fn local_clients_get_fast_writes_remote_pay_one_round_trip() {
    let mut sim = Simulation::new(topology(), 12);
    let mut dep = build(&mut sim, small_cfg());
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(20));
    dep.spawn_clients(&mut sim, 1, 1, WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(20));
    sim.run_until_quiescent(SimTime::from_secs(30));

    let samples = dep.collect_samples(&sim);
    let med = |gi: u16| -> SimTime {
        let mut lats: Vec<SimTime> = samples
            .iter()
            .filter(|(_, g, _)| g.0 == gi)
            .flat_map(|(_, _, s)| s.iter().map(|x| x.latency()))
            .collect();
        lats.sort();
        lats[lats.len() / 2]
    };
    let virginia = med(0);
    let tokyo = med(1);
    // Virginia clients: everything intra-region — a few milliseconds.
    assert!(virginia < SimTime::from_millis(25), "virginia median {virginia}");
    // Tokyo clients: one WAN round trip (~146ms) plus local work, and
    // crucially *not* a multi-phase WAN protocol (which would be 2-3x).
    assert!(tokyo > SimTime::from_millis(140), "tokyo median {tokyo}");
    assert!(tokyo < SimTime::from_millis(200), "tokyo median {tokyo}");
}

#[test]
fn weak_reads_are_local_and_strong_reads_are_ordered() {
    let mut sim = Simulation::new(topology(), 13);
    let mut dep = build(&mut sim, small_cfg());
    dep.spawn_clients(&mut sim, 1, 1, WorkloadSpec::weak_reads_per_sec(10.0, 200).with_max_ops(20));
    dep.spawn_clients(
        &mut sim,
        1,
        1,
        WorkloadSpec::strong_reads_per_sec(10.0, 200).with_max_ops(20),
    );
    sim.run_until_quiescent(SimTime::from_secs(30));

    let samples = dep.collect_samples(&sim);
    let weak: Vec<SimTime> = samples
        .iter()
        .flat_map(|(_, _, s)| s.iter())
        .filter(|s| s.kind == OpKind::WeakRead)
        .map(|s| s.latency())
        .collect();
    let strong: Vec<SimTime> = samples
        .iter()
        .flat_map(|(_, _, s)| s.iter())
        .filter(|s| s.kind == OpKind::StrongRead)
        .map(|s| s.latency())
        .collect();
    assert_eq!(weak.len(), 20);
    assert_eq!(strong.len(), 20);
    // Weak reads never cross the WAN: ~2ms (paper Fig 8b).
    assert!(weak.iter().all(|l| *l < SimTime::from_millis(5)), "weak reads stayed local");
    // Strong reads from Tokyo pay the round trip to the agreement group.
    assert!(strong.iter().all(|l| *l > SimTime::from_millis(140)));
}

#[test]
fn one_byzantine_execution_replica_is_tolerated() {
    for fault in [ExecFault::SilentForward, ExecFault::WrongReply] {
        let mut sim = Simulation::new(topology(), 14);
        let mut dep = build(&mut sim, small_cfg());
        dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(15));
        // Replica 0 of the Virginia group misbehaves.
        let victim = dep.group_nodes(0)[0];
        sim.actor_mut::<ExecReplica>(victim).set_fault(fault);
        sim.run_until_quiescent(SimTime::from_secs(40));
        let samples = dep.collect_samples(&sim);
        let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
        assert_eq!(total, 15, "writes complete despite {fault:?}");
    }
}

#[test]
fn conflicting_client_is_isolated_to_its_subchannel() {
    let mut sim = Simulation::new(topology(), 15);
    let mut dep = build(&mut sim, small_cfg());
    // A correct client and a conflicting-equivocating client share the
    // Virginia group.
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(10));
    let bad = dep.spawn_clients_with_fault(
        &mut sim,
        0,
        1,
        WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(5),
        ClientFault::ConflictingRequests,
    );
    sim.run_until(SimTime::from_secs(20));

    let samples = dep.collect_samples(&sim);
    for (_, _, s) in samples.iter().take(1) {
        assert_eq!(s.len(), 10, "correct client unaffected (§3.7)");
    }
    let bad_samples = &sim.actor::<SpiderClient>(bad[0]).samples;
    assert!(bad_samples.is_empty(), "conflicting requests never pass the request channel");
}

#[test]
fn partitioned_execution_replica_catches_up_via_checkpoint() {
    let mut sim = Simulation::new(topology(), 16);
    let mut cfg = small_cfg();
    cfg.ke = 4;
    cfg.ka = 4;
    cfg.ag_win = 8;
    cfg.commit_capacity = 8; // Tiny window: laggards quickly fall off.
    let mut dep = build(&mut sim, cfg);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(20.0, 200).with_max_ops(60));

    // Cut one Tokyo replica off from the world for a while.
    let victim = dep.group_nodes(1)[2];
    let everyone: Vec<_> = (0..40).map(spider_types::NodeId).collect();
    for n in &everyone {
        if *n != victim {
            sim.net_control_mut().partition_pair_until(victim, *n, SimTime::from_secs(6));
        }
    }
    sim.run_until_quiescent(SimTime::from_secs(60));

    let healthy = sim.actor::<ExecReplica>(dep.group_nodes(1)[0]);
    let recovered = sim.actor::<ExecReplica>(victim);
    assert_eq!(healthy.app().value(), 60);
    assert_eq!(recovered.app().value(), 60, "victim caught up via execution checkpoint (§3.4)");
    assert!(
        recovered.executed < 60,
        "victim skipped requests instead of re-executing all of them \
         (executed only {})",
        recovered.executed
    );
}

#[test]
fn agreement_leader_crash_is_handled_inside_the_region() {
    let mut sim = Simulation::new(topology(), 17);
    let mut cfg = small_cfg();
    cfg.view_change_timeout = SimTime::from_millis(300);
    let mut dep = build(&mut sim, cfg);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(40));

    // Crash the initial consensus leader (agreement replica 0) at t = 1s.
    sim.run_until(SimTime::from_secs(1));
    let leader = dep.agreement[0];
    sim.net_control_mut().crash(leader);
    sim.run_until_quiescent(SimTime::from_secs(60));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 40, "writes survive an agreement-leader crash");
    let ag = sim.actor::<AgreementReplica>(dep.agreement[1]);
    assert!(ag.view().0 >= 1, "a view change happened");
}

#[test]
fn add_group_at_runtime_serves_new_clients() {
    let mut sim = Simulation::new(
        Topology::builder()
            .region("virginia", 4)
            .region("tokyo", 3)
            .region("saopaulo", 3)
            .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
            .symmetric_latency("virginia", "saopaulo", SimTime::from_millis(58))
            .symmetric_latency("tokyo", "saopaulo", SimTime::from_millis(130))
            .build(),
        18,
    );
    let mut dep = build(&mut sim, small_cfg());
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(50));

    // Run a while, then add a São Paulo group at t = 2s (§3.6).
    let new_group = dep.add_execution_group(&mut sim, "saopaulo", SimTime::from_secs(2));
    sim.run_until(SimTime::from_secs(4));
    assert!(dep.directory.is_active(new_group), "AddGroup was ordered");

    // New local clients (weak reads served in Sao Paulo, writes ordered).
    let gi = dep.groups.len() - 1;
    dep.spawn_clients(&mut sim, gi, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(10));
    sim.run_until_quiescent(SimTime::from_secs(60));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 60, "old and new clients all served");

    // The new group converged to the same state as the old ones.
    let old = sim.actor::<ExecReplica>(dep.group_nodes(0)[0]).app_digest();
    for node in dep.group_nodes(gi) {
        let d = sim.actor::<ExecutionReplica<Box<dyn Application>>>(*node).app_digest();
        assert_eq!(d, old, "new group caught up via cross-group checkpoint");
    }
}

#[test]
fn deterministic_replay_same_seed_same_samples() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(topology(), seed);
        let mut dep = build(&mut sim, small_cfg());
        dep.spawn_clients(&mut sim, 0, 2, WorkloadSpec::writes_per_sec(20.0, 200).with_max_ops(10));
        sim.run_until_quiescent(SimTime::from_secs(20));
        dep.collect_samples(&sim).into_iter().flat_map(|(_, _, s)| s).collect::<Vec<_>>()
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn zero_cost_model_still_works() {
    // Pure-logic configuration used by several property tests.
    let mut cfg = small_cfg().with_cost(CostModel::zero());
    cfg.view_change_timeout = SimTime::from_millis(300);
    let mut sim = Simulation::new(topology(), 20);
    let mut dep = build(&mut sim, cfg);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(50.0, 200).with_max_ops(100));
    sim.run_until_quiescent(SimTime::from_secs(30));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 100);
}

#[test]
fn byzantine_agreement_replica_cannot_corrupt_the_commit_channel() {
    // §3.7: a faulty agreement replica sends manipulated Executes; the
    // commit channel's fa+1 matching rule blocks them and execution
    // groups keep delivering the correct total order.
    use spider::agreement::{AgreementFault, AgreementReplica};
    let mut sim = Simulation::new(topology(), 55);
    let mut dep = build(&mut sim, small_cfg());
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(20));
    let traitor = dep.agreement[2];
    sim.actor_mut::<AgreementReplica>(traitor).set_fault(AgreementFault::CorruptExecutes);
    sim.run_until_quiescent(SimTime::from_secs(60));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 20, "liveness unaffected");
    for gi in 0..2 {
        for node in dep.group_nodes(gi) {
            let v = sim.actor::<ExecReplica>(*node).app().value();
            assert_eq!(v, 20, "no corrupted add:666 was ever executed");
        }
    }
}
