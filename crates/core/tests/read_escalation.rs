//! The weak-read retry/escalation path (§3.3): under quorum-less weak
//! replies a client retries and, when retries are exhausted, re-issues
//! the operation as a strongly consistent read.
//!
//! Uses stub "replica" actors so the divergence is fully controlled —
//! something a real deployment only produces under precise write/read
//! races.

use bytes::Bytes;
use spider::messages::{Reply, SpiderMsg};
use spider::{Directory, SpiderClient, SpiderConfig, WorkloadSpec};
use spider_sim::{Actor, Context, Simulation, Topology};
use spider_types::{ClientId, GroupId, NodeId, OpKind, SimTime};
use std::sync::Arc;

/// A stub execution replica: answers weak reads with a configured value
/// and records strongly consistent read requests.
struct StubReplica {
    weak_value: &'static [u8],
    strong_requests: u64,
}

impl Actor<SpiderMsg> for StubReplica {
    fn on_message(&mut self, ctx: &mut Context<'_, SpiderMsg>, from: NodeId, msg: SpiderMsg) {
        let SpiderMsg::Request(req) = msg else { return };
        match req.operation.kind {
            OpKind::WeakRead => {
                ctx.send(
                    from,
                    SpiderMsg::Reply(Reply {
                        tc: req.tc,
                        result: Bytes::from_static(self.weak_value),
                        weak: true,
                        resubmit: false,
                    }),
                );
            }
            OpKind::StrongRead => {
                // Record the escalation; answer consistently so the
                // client completes.
                self.strong_requests += 1;
                ctx.send(
                    from,
                    SpiderMsg::Reply(Reply {
                        tc: req.tc,
                        result: Bytes::from_static(b"stable"),
                        weak: false,
                        resubmit: false,
                    }),
                );
            }
            OpKind::Write => {}
        }
    }
}

#[test]
fn weak_read_without_quorum_escalates_to_strong_read() {
    let topology = Topology::builder().region("virginia", 3).build();
    let mut sim = Simulation::new(topology, 9);
    let directory = Directory::new();

    // Three stub replicas that always disagree on weak reads.
    let values: [&'static [u8]; 3] = [b"v1", b"v2", b"v3"];
    let mut nodes = Vec::new();
    for (i, v) in values.iter().enumerate() {
        let zone = sim.topology().zone("virginia", i as u8);
        nodes.push(sim.add_node(zone, StubReplica { weak_value: v, strong_requests: 0 }));
    }
    directory.register_group(
        GroupId(0),
        spider::directory::GroupInfo {
            replicas: nodes.clone(),
            region: sim.topology().region("virginia"),
            active: true,
        },
    );

    let cfg = SpiderConfig { weak_read_retries: 2, ..SpiderConfig::default() };
    let workload = WorkloadSpec {
        rate_per_sec: 5.0,
        payload_bytes: 64,
        write_fraction: 0.0,
        strong_read_fraction: 0.0, // weak reads only
        max_ops: 1,
        start_delay: SimTime::from_millis(10),
        op_factory: Arc::new(|_, _, _| Bytes::from_static(b"get")),
    };
    let id = ClientId(1);
    let zone = sim.topology().zone("virginia", 0);
    let client = SpiderClient::new(cfg, id, GroupId(0), directory.clone(), Some(workload));
    let node = sim.add_node(zone, client);
    directory.register_client(id, node);

    sim.run_until_quiescent(SimTime::from_secs(10));

    // The client completed exactly one operation…
    let samples = &sim.actor::<SpiderClient>(node).samples;
    assert_eq!(samples.len(), 1);
    // …which was escalated: the stubs saw a strongly consistent read.
    let escalations: u64 = nodes.iter().map(|n| sim.actor::<StubReplica>(*n).strong_requests).sum();
    assert!(escalations >= 3, "all three replicas saw the strong read");
    // Latency covers the retries (the sample is measured from the first
    // weak attempt, §3.3).
    assert_eq!(samples[0].kind, OpKind::StrongRead);
}

#[test]
fn weak_read_with_quorum_completes_without_escalation() {
    let topology = Topology::builder().region("virginia", 3).build();
    let mut sim = Simulation::new(topology, 10);
    let directory = Directory::new();
    // Two of three replicas agree: fe + 1 = 2 matching replies suffice.
    let values: [&'static [u8]; 3] = [b"same", b"same", b"other"];
    let mut nodes = Vec::new();
    for (i, v) in values.iter().enumerate() {
        let zone = sim.topology().zone("virginia", i as u8);
        nodes.push(sim.add_node(zone, StubReplica { weak_value: v, strong_requests: 0 }));
    }
    directory.register_group(
        GroupId(0),
        spider::directory::GroupInfo {
            replicas: nodes.clone(),
            region: sim.topology().region("virginia"),
            active: true,
        },
    );
    let workload = WorkloadSpec {
        rate_per_sec: 5.0,
        payload_bytes: 64,
        write_fraction: 0.0,
        strong_read_fraction: 0.0,
        max_ops: 1,
        start_delay: SimTime::from_millis(10),
        op_factory: Arc::new(|_, _, _| Bytes::from_static(b"get")),
    };
    let id = ClientId(1);
    let zone = sim.topology().zone("virginia", 0);
    let client = SpiderClient::new(
        SpiderConfig::default(),
        id,
        GroupId(0),
        directory.clone(),
        Some(workload),
    );
    let node = sim.add_node(zone, client);
    directory.register_client(id, node);
    sim.run_until_quiescent(SimTime::from_secs(10));

    let samples = &sim.actor::<SpiderClient>(node).samples;
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].kind, OpKind::WeakRead, "no escalation needed");
    let escalations: u64 = nodes.iter().map(|n| sim.actor::<StubReplica>(*n).strong_requests).sum();
    assert_eq!(escalations, 0);
}
