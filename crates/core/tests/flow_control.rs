//! Global flow control (§3.5): the `z` parameter decouples fast
//! execution groups from stragglers, and skipped groups recover through
//! execution checkpoints.

use spider::execution::ExecutionReplica;
use spider::{CounterApp, DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_sim::{Simulation, Topology};
use spider_types::SimTime;

type ExecReplica = ExecutionReplica<CounterApp>;

fn topology() -> Topology {
    Topology::builder()
        .region("virginia", 4)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
        .build()
}

fn straggler_cfg(z: usize) -> SpiderConfig {
    SpiderConfig { z, commit_capacity: 16, ke: 8, ka: 8, ag_win: 16, ..SpiderConfig::default() }
}

/// Runs 12 s with the Tokyo group's incoming links delayed by 2 s;
/// returns (completed requests, sim, deployment).
fn run(z: usize) -> (usize, Simulation<spider::SpiderMsg>, spider::Deployment) {
    let mut sim = Simulation::new(topology(), 44);
    let mut dep = DeploymentBuilder::new(straggler_cfg(z))
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("tokyo")
        .build(&mut sim);
    dep.spawn_clients(&mut sim, 0, 4, WorkloadSpec::writes_per_sec(8.0, 200).with_max_ops(150));
    for a in dep.agreement.clone() {
        for t in dep.group_nodes(1).to_vec() {
            sim.net_control_mut().set_extra_delay(a, t, SimTime::from_secs(2));
        }
    }
    sim.run_until(SimTime::from_secs(12));
    let completed: usize = dep.collect_samples(&sim).iter().map(|(_, _, s)| s.len()).sum();
    (completed, sim, dep)
}

#[test]
fn z_equals_one_decouples_fast_groups_from_stragglers() {
    let (with_coupling, _, _) = run(0);
    let (with_skip, _, _) = run(1);
    assert!(
        with_skip as f64 > with_coupling as f64 * 2.0,
        "z=1 should at least double throughput under a 2s straggler \
         (z=0: {with_coupling}, z=1: {with_skip})"
    );
}

#[test]
fn skipped_group_catches_up_once_the_straggler_recovers() {
    let (_, mut sim, dep) = run(1);
    // Heal the links and let the system settle.
    for a in dep.agreement.clone() {
        for t in dep.group_nodes(1).to_vec() {
            sim.net_control_mut().set_extra_delay(a, t, SimTime::ZERO);
        }
    }
    sim.run_until_quiescent(SimTime::from_secs(90));
    let reference = sim.actor::<ExecReplica>(dep.group_nodes(0)[0]).app().value();
    assert!(reference > 0);
    for node in dep.group_nodes(1) {
        assert_eq!(
            sim.actor::<ExecReplica>(*node).app().value(),
            reference,
            "skipped group converged via checkpoint fetch (§3.5)"
        );
    }
}
