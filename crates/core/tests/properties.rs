//! Property-based full-system tests: randomized seeds, loads, and fault
//! injections, asserting the paper's safety properties (appendix §A.4.1)
//! on every run.
//!
//! * **E-Safety** (A.1): correct replicas execute identical write
//!   sequences — checked via state-digest equality.
//! * **E-Validity II** (A.4): at-most-once execution — checked by counter
//!   application arithmetic (value == acknowledged writes).
//! * **E-Liveness** (A.5): every client request eventually completes.

use proptest::prelude::*;
use spider::execution::{ExecFault, ExecutionReplica};
use spider::{CounterApp, DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_sim::{Simulation, Topology};
use spider_types::SimTime;

type ExecReplica = ExecutionReplica<CounterApp>;

fn topology() -> Topology {
    Topology::builder()
        .region("virginia", 4)
        .region("oregon", 3)
        .symmetric_latency("virginia", "oregon", SimTime::from_millis(31))
        .build()
}

fn small_cfg() -> SpiderConfig {
    SpiderConfig {
        ka: 8,
        ke: 8,
        ag_win: 16,
        commit_capacity: 32,
        view_change_timeout: SimTime::from_millis(400),
        ..SpiderConfig::default()
    }
}

/// Runs a two-group deployment; returns (completed, counter values of all
/// replicas).
fn run_once(
    seed: u64,
    writes_per_client: u64,
    fault: Option<(usize, ExecFault)>,
) -> (usize, Vec<i64>) {
    let mut sim = Simulation::new(topology(), seed);
    let mut dep = DeploymentBuilder::new(small_cfg())
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("oregon")
        .build(&mut sim);
    dep.spawn_clients(
        &mut sim,
        0,
        2,
        WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(writes_per_client),
    );
    dep.spawn_clients(
        &mut sim,
        1,
        1,
        WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(writes_per_client),
    );
    if let Some((victim_idx, f)) = fault {
        let node = dep.group_nodes(victim_idx % 2)[victim_idx % 3];
        sim.actor_mut::<ExecReplica>(node).set_fault(f);
    }
    sim.run_until_quiescent(SimTime::from_secs(120));

    let samples = dep.collect_samples(&sim);
    let completed: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    let mut values = Vec::new();
    for gi in 0..2 {
        for node in dep.group_nodes(gi) {
            values.push(sim.actor::<ExecReplica>(*node).app().value());
        }
    }
    (completed, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With no faults: every write completes exactly once and all six
    /// replicas (two groups) converge to the same counter.
    #[test]
    fn no_fault_runs_are_exact(seed in 0u64..10_000, per_client in 3u64..12) {
        let (completed, values) = run_once(seed, per_client, None);
        let expected = (3 * per_client) as usize;
        prop_assert_eq!(completed, expected, "E-Liveness");
        for v in &values {
            prop_assert_eq!(*v, expected as i64, "E-Safety / E-Validity II");
        }
    }

    /// With one Byzantine execution replica (silent or lying): liveness
    /// and at-most-once still hold for all *correct* replicas.
    #[test]
    fn one_byzantine_replica_tolerated(
        seed in 0u64..10_000,
        victim in 0usize..6,
        silent in any::<bool>(),
    ) {
        let fault = if silent { ExecFault::SilentForward } else { ExecFault::WrongReply };
        let (completed, values) = run_once(seed, 5, Some((victim, fault)));
        prop_assert_eq!(completed, 15, "E-Liveness under f=1");
        // At least 5 of 6 replicas (all correct ones) hold the exact value.
        let exact = values.iter().filter(|v| **v == 15).count();
        prop_assert!(exact >= 5, "correct replicas diverged: {:?}", values);
    }
}

#[test]
fn message_loss_bursts_recover_via_checkpoints() {
    // Random 20% message loss between the agreement group and one Tokyo…
    // here Oregon… replica for the first 3 seconds: the replica must
    // still converge (channel quorums + checkpoint fetch).
    let mut sim = Simulation::new(topology(), 77);
    let mut dep = DeploymentBuilder::new(small_cfg())
        .agreement_region("virginia")
        .execution_group("virginia")
        .execution_group("oregon")
        .build(&mut sim);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(20.0, 200).with_max_ops(50));
    let victim = dep.group_nodes(1)[0];
    for a in dep.agreement.clone() {
        sim.net_control_mut().set_drop_rate(a, victim, 0.2);
    }
    sim.run_until(SimTime::from_secs(3));
    for a in dep.agreement.clone() {
        sim.net_control_mut().set_drop_rate(a, victim, 0.0);
    }
    sim.run_until_quiescent(SimTime::from_secs(120));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 50);
    assert_eq!(sim.actor::<ExecReplica>(victim).app().value(), 50);
}
