//! Group failover (§3.1) and IRMC-SC end-to-end coverage.

use spider::execution::ExecutionReplica;
use spider::{CounterApp, DeploymentBuilder, SpiderConfig, WorkloadSpec};
use spider_irmc::Variant;
use spider_sim::{Simulation, Topology};
use spider_types::SimTime;

type ExecReplica = ExecutionReplica<CounterApp>;

fn topology() -> Topology {
    Topology::builder()
        .region("virginia", 4)
        .region("oregon", 3)
        .region("tokyo", 3)
        .symmetric_latency("virginia", "oregon", SimTime::from_millis(31))
        .symmetric_latency("virginia", "tokyo", SimTime::from_millis(73))
        .symmetric_latency("oregon", "tokyo", SimTime::from_millis(49))
        .build()
}

#[test]
fn client_fails_over_when_its_group_dies() {
    let cfg = SpiderConfig {
        client_retry: SimTime::from_millis(500),
        group_failover_retries: 2,
        ..SpiderConfig::default()
    };
    let mut sim = Simulation::new(topology(), 31);
    let mut dep = DeploymentBuilder::new(cfg)
        .agreement_region("virginia")
        .execution_group("oregon")
        .execution_group("tokyo")
        .build(&mut sim);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(30));

    // Let some writes complete, then kill the whole Oregon group (more
    // than fe = 1 failures: the group is gone, §3.1).
    sim.run_until(SimTime::from_secs(2));
    for node in dep.group_nodes(0).to_vec() {
        sim.net_control_mut().crash(node);
    }
    sim.run_until_quiescent(SimTime::from_secs(120));

    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 30, "all writes completed despite the group loss");
    // The surviving Tokyo group executed everything.
    let v = sim.actor::<ExecReplica>(dep.group_nodes(1)[0]).app().value();
    assert_eq!(v, 30);
}

#[test]
fn removed_group_redirects_clients() {
    // RemoveGroup (§3.6) + failover: clients of a removed group continue
    // at another group.
    use spider::messages::{AdminCommand, SpiderMsg};
    let cfg = SpiderConfig {
        client_retry: SimTime::from_millis(500),
        group_failover_retries: 2,
        ..SpiderConfig::default()
    };
    let mut sim = Simulation::new(topology(), 32);
    let mut dep = DeploymentBuilder::new(cfg)
        .agreement_region("virginia")
        .execution_group("oregon")
        .execution_group("tokyo")
        .build(&mut sim);
    dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(4.0, 200).with_max_ops(20));
    sim.run_until(SimTime::from_secs(2));

    // Admin removes the Oregon group; its replicas stop being served by
    // the agreement group (commit channel closed).
    let group = dep.groups[0].0;
    let zone = sim.zone_of(dep.agreement[0]);
    struct Admin(spider::Directory, spider_types::GroupId);
    impl spider_sim::Actor<SpiderMsg> for Admin {
        fn on_start(&mut self, ctx: &mut spider_sim::Context<'_, SpiderMsg>) {
            ctx.set_timer(SimTime::from_millis(1), 1);
        }
        fn on_message(
            &mut self,
            _: &mut spider_sim::Context<'_, SpiderMsg>,
            _: spider_types::NodeId,
            _: SpiderMsg,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut spider_sim::Context<'_, SpiderMsg>, _: spider_sim::Timer) {
            for n in self.0.agreement() {
                ctx.send(n, SpiderMsg::Admin(AdminCommand::RemoveGroup { group: self.1 }));
            }
        }
    }
    sim.add_node(zone, Admin(dep.directory.clone(), group));
    sim.run_until_quiescent(SimTime::from_secs(120));

    assert!(!dep.directory.is_active(group));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 20, "client finished via the Tokyo group");
}

#[test]
fn sender_collect_variant_works_end_to_end() {
    // Both channels on IRMC-SC: certificates, collectors, progress.
    let cfg = SpiderConfig::default().with_variant(Variant::SenderCollect);
    let mut sim = Simulation::new(topology(), 33);
    let mut dep = DeploymentBuilder::new(cfg)
        .agreement_region("virginia")
        .execution_group("oregon")
        .execution_group("tokyo")
        .build(&mut sim);
    dep.spawn_clients(&mut sim, 0, 2, WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(25));
    dep.spawn_clients(&mut sim, 1, 2, WorkloadSpec::writes_per_sec(5.0, 200).with_max_ops(25));
    sim.run_until_quiescent(SimTime::from_secs(60));
    let samples = dep.collect_samples(&sim);
    let total: usize = samples.iter().map(|(_, _, s)| s.len()).sum();
    assert_eq!(total, 100);
    // Convergence under SC too.
    let a = sim.actor::<ExecReplica>(dep.group_nodes(0)[0]).app().value();
    let b = sim.actor::<ExecReplica>(dep.group_nodes(1)[0]).app().value();
    assert_eq!(a, 100);
    assert_eq!(b, 100);
}

#[test]
fn sender_collect_saves_wan_bytes_vs_receiver_collect() {
    let run = |variant: Variant| -> u64 {
        let cfg = SpiderConfig::default().with_variant(variant);
        let mut sim = Simulation::new(topology(), 34);
        let mut dep = DeploymentBuilder::new(cfg)
            .agreement_region("virginia")
            .execution_group("tokyo")
            .build(&mut sim);
        dep.spawn_clients(&mut sim, 0, 1, WorkloadSpec::writes_per_sec(10.0, 200).with_max_ops(50));
        sim.run_until_quiescent(SimTime::from_secs(60));
        let samples = dep.collect_samples(&sim);
        assert_eq!(samples[0].2.len(), 50);
        sim.stats().total_wan_sent()
    };
    let rc = run(Variant::ReceiverCollect);
    let sc = run(Variant::SenderCollect);
    assert!(sc < rc, "IRMC-SC must move fewer WAN bytes ({sc} vs {rc}) — Fig 9d");
}
