//! Scripted fault plans: a deterministic timeline of typed fault events.
//!
//! A [`FaultPlan`] is a declarative schedule of faults — region outages,
//! WAN partitions, link degradation, replica crashes — that the
//! [`Simulation`](crate::Simulation) applies at fixed `SimTime`s. Plans
//! are written in *placement* terms (region names), not node ids: the
//! simulation resolves regions against its [`Topology`](crate::Topology)
//! and its node registry when each event fires, so the same plan works
//! across deployments of different sizes.
//!
//! Determinism: a plan is pure data. Event application consumes no
//! randomness, ties at the same instant apply in insertion order, and the
//! only RNG in the system stays the simulation's single seeded stream —
//! so a faulted run is exactly as reproducible as an unfaulted one.
//!
//! Semantics worth knowing:
//!
//! * [`FaultEvent::RegionOutage`] cuts every node placed in the region
//!   off the network (both directions). Node state machines stay alive —
//!   timers keep firing into the void — so a later
//!   [`FaultEvent::RegionRestore`] or [`FaultEvent::Heal`] lets them
//!   recover via the protocol's own catch-up paths. This matches a WAN
//!   disaster (the region is unreachable), not a power loss; use
//!   [`FaultEvent::CrashReplica`] for the latter.
//! * [`FaultEvent::CrashReplica`] is a true fail-stop: the node's queued
//!   and future events (including its timers) are discarded, so a
//!   revived replica does *not* resume — crash faults model permanent
//!   loss within the `f` budget.
//! * Messages already in flight when a cut lands still arrive: drops are
//!   decided at send time, mirroring packets that left the NIC before
//!   the cable was pulled.

use spider_types::{NodeId, SimTime};

/// One typed fault, applied at a scheduled instant.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Cuts every node in `region` off the network, both directions.
    RegionOutage {
        /// Region name (resolved against the topology at apply time).
        region: String,
    },
    /// Reconnects a region taken down by [`FaultEvent::RegionOutage`].
    RegionRestore {
        /// Region name.
        region: String,
    },
    /// Severs all traffic between two sets of regions (symmetric cut);
    /// traffic within each side is untouched.
    WanPartition {
        /// Region names on one side of the cut.
        side_a: Vec<String>,
        /// Region names on the other side.
        side_b: Vec<String>,
    },
    /// Removes the cuts a matching [`FaultEvent::WanPartition`] installed.
    WanHeal {
        /// Region names on one side of the healed cut.
        side_a: Vec<String>,
        /// Region names on the other side.
        side_b: Vec<String>,
    },
    /// Degrades every link between two regions (symmetric): messages are
    /// dropped with `drop_rate` and surviving ones delayed by
    /// `extra_delay`. Zero/zero clears the degradation.
    LinkDegrade {
        /// One endpoint region.
        a: String,
        /// Other endpoint region.
        b: String,
        /// Per-message drop probability in `[0, 1]`.
        drop_rate: f64,
        /// Fixed extra one-way delay for messages that get through.
        extra_delay: SimTime,
    },
    /// Fail-stops one node: its pending and future events are discarded.
    CrashReplica {
        /// The node to crash.
        node: NodeId,
    },
    /// Un-crashes a node. Note that its timers are gone for good — this
    /// models a fresh process that must be driven by incoming messages.
    ReviveReplica {
        /// The node to revive.
        node: NodeId,
    },
    /// Cuts one node off the network (both directions) while its state
    /// machine and timers keep running — the recoverable analogue of
    /// [`FaultEvent::CrashReplica`].
    IsolateReplica {
        /// The node to isolate.
        node: NodeId,
    },
    /// Reconnects an isolated node.
    RejoinReplica {
        /// The node to reconnect.
        node: NodeId,
    },
    /// Clears every network-level fault (outages, partitions, isolation,
    /// degradation, timed blocks). Crashed nodes stay crashed — a crash
    /// is not a network condition.
    Heal,
}

/// A scripted, seed-deterministic timeline of [`FaultEvent`]s.
///
/// Built with the fluent helpers below (or raw [`FaultPlan::at`]) and
/// installed via
/// [`Simulation::install_fault_plan`](crate::Simulation::install_fault_plan).
/// Events apply in time order; ties apply in the order they were added.
///
/// # Examples
///
/// ```
/// use spider_sim::FaultPlan;
/// use spider_types::SimTime;
///
/// let plan = FaultPlan::new()
///     .wan_partition(
///         &["virginia", "ireland"],
///         &["oregon", "tokyo"],
///         SimTime::from_secs(10),
///         SimTime::from_secs(20),
///     )
///     .region_outage("tokyo", SimTime::from_secs(30), SimTime::from_secs(40));
/// assert_eq!(plan.len(), 4); // each window is a cut + a heal event
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a raw event at `at`.
    #[must_use]
    pub fn at(mut self, at: SimTime, event: FaultEvent) -> Self {
        self.events.push((at, event));
        self
    }

    /// Takes `region` offline over `[from, until)`.
    #[must_use]
    pub fn region_outage(self, region: &str, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "outage window is empty");
        self.at(from, FaultEvent::RegionOutage { region: region.to_owned() })
            .at(until, FaultEvent::RegionRestore { region: region.to_owned() })
    }

    /// Severs `side_a` from `side_b` over `[from, until)` (symmetric).
    #[must_use]
    pub fn wan_partition(
        self,
        side_a: &[&str],
        side_b: &[&str],
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "partition window is empty");
        assert!(!side_a.is_empty() && !side_b.is_empty(), "partition side is empty");
        let a: Vec<String> = side_a.iter().map(|r| (*r).to_owned()).collect();
        let b: Vec<String> = side_b.iter().map(|r| (*r).to_owned()).collect();
        self.at(from, FaultEvent::WanPartition { side_a: a.clone(), side_b: b.clone() })
            .at(until, FaultEvent::WanHeal { side_a: a, side_b: b })
    }

    /// Degrades the `a <-> b` links over `[from, until)` (symmetric).
    #[must_use]
    pub fn link_degrade(
        self,
        a: &str,
        b: &str,
        drop_rate: f64,
        extra_delay: SimTime,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(from < until, "degrade window is empty");
        assert!((0.0..=1.0).contains(&drop_rate), "drop rate out of range");
        self.at(
            from,
            FaultEvent::LinkDegrade { a: a.to_owned(), b: b.to_owned(), drop_rate, extra_delay },
        )
        .at(
            until,
            FaultEvent::LinkDegrade {
                a: a.to_owned(),
                b: b.to_owned(),
                drop_rate: 0.0,
                extra_delay: SimTime::ZERO,
            },
        )
    }

    /// Fail-stops `node` at `at` (permanent; see [`FaultEvent::CrashReplica`]).
    #[must_use]
    pub fn crash_replica(self, node: NodeId, at: SimTime) -> Self {
        self.at(at, FaultEvent::CrashReplica { node })
    }

    /// Cuts `node` off the network over `[from, until)`; its timers keep
    /// running, so it recovers via the protocol's catch-up paths.
    #[must_use]
    pub fn isolate_replica(self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "isolation window is empty");
        self.at(from, FaultEvent::IsolateReplica { node })
            .at(until, FaultEvent::RejoinReplica { node })
    }

    /// Clears every network-level fault at `at` (crashes persist).
    #[must_use]
    pub fn heal_at(self, at: SimTime) -> Self {
        self.at(at, FaultEvent::Heal)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timeline in application order (stable sort by time, so
    /// same-instant events keep insertion order).
    pub fn into_events(mut self) -> Vec<(SimTime, FaultEvent)> {
        self.events.sort_by_key(|(at, _)| *at);
        self.events
    }

    /// Iterates the scheduled events in insertion order (mainly for
    /// introspection; application order is [`FaultPlan::into_events`]).
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, FaultEvent)> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_paired_events_in_time_order() {
        let plan = FaultPlan::new()
            .region_outage("b", SimTime::from_secs(5), SimTime::from_secs(9))
            .crash_replica(NodeId(3), SimTime::from_secs(1))
            .heal_at(SimTime::from_secs(20));
        let events = plan.into_events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            (SimTime::from_secs(1), FaultEvent::CrashReplica { node: NodeId(3) })
        );
        assert!(matches!(events[1].1, FaultEvent::RegionOutage { .. }));
        assert!(matches!(events[2].1, FaultEvent::RegionRestore { .. }));
        assert_eq!(events[3].1, FaultEvent::Heal);
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let t = SimTime::from_secs(2);
        let plan = FaultPlan::new()
            .at(t, FaultEvent::RegionOutage { region: "a".into() })
            .at(t, FaultEvent::RegionRestore { region: "a".into() });
        let events = plan.into_events();
        assert!(matches!(events[0].1, FaultEvent::RegionOutage { .. }));
        assert!(matches!(events[1].1, FaultEvent::RegionRestore { .. }));
    }

    #[test]
    #[should_panic(expected = "outage window is empty")]
    fn empty_outage_window_panics() {
        let _ = FaultPlan::new().region_outage("a", SimTime::from_secs(2), SimTime::from_secs(2));
    }
}
