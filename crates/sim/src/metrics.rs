//! Simulation-wide measurement: bytes per link class, CPU busy time.
//!
//! The paper's Figure 9c reports CPU utilization of IRMC endpoints and
//! Figure 9d reports LAN/WAN data transfer; both fall out of the counters
//! kept here.

use serde::{Deserialize, Serialize};
use spider_types::{NodeId, SimTime};

/// Classification of a link for byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same region (possibly different availability zone).
    Lan,
    /// Crosses a region boundary — the expensive kind in public clouds.
    Wan,
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkClass::Lan => write!(f, "LAN"),
            LinkClass::Wan => write!(f, "WAN"),
        }
    }
}

/// Byte counters for one node.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Bytes sent over intra-region links.
    pub lan_sent: u64,
    /// Bytes sent over inter-region links.
    pub wan_sent: u64,
    /// Bytes received over intra-region links.
    pub lan_received: u64,
    /// Bytes received over inter-region links.
    pub wan_received: u64,
    /// Messages sent (any class).
    pub messages_sent: u64,
    /// Messages received (any class).
    pub messages_received: u64,
}

/// CPU accounting for one node.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NodeStats {
    /// Total CPU time charged by this node's handlers.
    pub busy: SimTime,
    /// Number of events (messages + timers) processed.
    pub events: u64,
}

impl NodeStats {
    /// CPU utilization over a window of wall-clock (simulated) time.
    pub fn utilization(&self, window: SimTime) -> f64 {
        if window == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_nanos() as f64 / window.as_nanos() as f64
        }
    }
}

/// All measurements of a simulation run.
#[derive(Debug, Default)]
pub struct SimStats {
    net: Vec<NetStats>,
    cpu: Vec<NodeStats>,
    /// Messages dropped by fault injection.
    pub dropped_messages: u64,
    /// Total events processed.
    pub total_events: u64,
}

impl SimStats {
    pub(crate) fn ensure_node(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.net.len() <= idx {
            self.net.resize(idx + 1, NetStats::default());
            self.cpu.resize(idx + 1, NodeStats::default());
        }
    }

    pub(crate) fn record_send(&mut self, from: NodeId, class: LinkClass, bytes: u64) {
        let s = &mut self.net[from.0 as usize];
        s.messages_sent += 1;
        match class {
            LinkClass::Lan => s.lan_sent += bytes,
            LinkClass::Wan => s.wan_sent += bytes,
        }
    }

    pub(crate) fn record_receive(&mut self, to: NodeId, class: LinkClass, bytes: u64) {
        let s = &mut self.net[to.0 as usize];
        s.messages_received += 1;
        match class {
            LinkClass::Lan => s.lan_received += bytes,
            LinkClass::Wan => s.wan_received += bytes,
        }
    }

    pub(crate) fn record_busy(&mut self, node: NodeId, busy: SimTime) {
        let s = &mut self.cpu[node.0 as usize];
        s.busy += busy;
        s.events += 1;
    }

    /// Network counters of a node.
    pub fn net(&self, node: NodeId) -> NetStats {
        self.net.get(node.0 as usize).copied().unwrap_or_default()
    }

    /// CPU counters of a node.
    pub fn cpu(&self, node: NodeId) -> NodeStats {
        self.cpu.get(node.0 as usize).copied().unwrap_or_default()
    }

    /// Sum of WAN bytes sent by all nodes.
    pub fn total_wan_sent(&self) -> u64 {
        self.net.iter().map(|n| n.wan_sent).sum()
    }

    /// Sum of LAN bytes sent by all nodes.
    pub fn total_lan_sent(&self) -> u64 {
        self.net.iter().map(|n| n.lan_sent).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_class() {
        let mut s = SimStats::default();
        s.ensure_node(NodeId(1));
        s.record_send(NodeId(1), LinkClass::Wan, 100);
        s.record_send(NodeId(1), LinkClass::Lan, 40);
        s.record_receive(NodeId(1), LinkClass::Wan, 7);
        let n = s.net(NodeId(1));
        assert_eq!(n.wan_sent, 100);
        assert_eq!(n.lan_sent, 40);
        assert_eq!(n.wan_received, 7);
        assert_eq!(n.messages_sent, 2);
        assert_eq!(n.messages_received, 1);
        assert_eq!(s.total_wan_sent(), 100);
        assert_eq!(s.total_lan_sent(), 40);
    }

    #[test]
    fn utilization_is_busy_over_window() {
        let mut s = SimStats::default();
        s.ensure_node(NodeId(0));
        s.record_busy(NodeId(0), SimTime::from_millis(250));
        let u = s.cpu(NodeId(0)).utilization(SimTime::from_secs(1));
        assert!((u - 0.25).abs() < 1e-12);
        assert_eq!(s.cpu(NodeId(0)).events, 1);
    }

    #[test]
    fn unknown_node_reads_as_default() {
        let s = SimStats::default();
        assert_eq!(s.net(NodeId(42)).wan_sent, 0);
        assert_eq!(s.cpu(NodeId(42)).events, 0);
    }
}
