//! The time-ordered event queue at the heart of the simulator.

use spider_types::{NodeId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::Timer;

/// What happens when an event fires.
pub(crate) enum EventKind<M> {
    /// A message arrives at a node.
    Deliver {
        /// Sender of the message.
        from: NodeId,
        /// Payload.
        msg: M,
    },
    /// A timer set by the node itself fires.
    Fire {
        /// The timer (id + user tag).
        timer: Timer,
    },
    /// A node was re-scheduled because it was busy when an event arrived.
    Resume(Box<EventKind<M>>),
}

pub(crate) struct Event<M> {
    pub at: SimTime,
    pub seq: u64,
    pub node: NodeId,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion sequence for determinism.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub fn push(&mut self, at: SimTime, node: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, node, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let n = NodeId(0);
        q.push(SimTime::from_millis(5), n, EventKind::Deliver { from: n, msg: 1 });
        q.push(SimTime::from_millis(1), n, EventKind::Deliver { from: n, msg: 2 });
        q.push(SimTime::from_millis(5), n, EventKind::Deliver { from: n, msg: 3 });

        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 1, 3], "time order, then insertion order");
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), NodeId(0), EventKind::Deliver { from: NodeId(0), msg: () });
        q.push(SimTime::from_millis(2), NodeId(0), EventKind::Deliver { from: NodeId(0), msg: () });
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
