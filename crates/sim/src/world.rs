//! The simulation world: nodes, event loop, delivery semantics.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spider_obs::{ObsConfig, Recorder};
use spider_types::{NodeId, RegionId, SimTime, WireSize, ZoneId};
use std::collections::{BTreeSet, VecDeque};

use crate::actor::{Actor, ActorObj, Context, OutAction, Timer, TimerId};
use crate::event::{Event, EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultPlan};
use crate::metrics::{LinkClass, SimStats};
use crate::net::{LinkQuality, NetworkControl, Topology};

struct NodeSlot<M> {
    actor: Box<dyn ActorObj<M>>,
    zone: ZoneId,
    /// The node's CPU is occupied until this instant.
    busy_until: SimTime,
    /// The node's NIC egress is occupied until this instant.
    egress_free_at: SimTime,
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// See the [crate-level documentation](crate) for the model and an example.
pub struct Simulation<M> {
    topology: Topology,
    nodes: Vec<NodeSlot<M>>,
    queue: EventQueue<M>,
    now: SimTime,
    rng: SmallRng,
    /// The seed `rng` was built from; forwarded to the observability
    /// recorder so exemplar sampling is deterministic per run without
    /// drawing from (and thereby perturbing) the sim RNG.
    seed: u64,
    stats: SimStats,
    net_control: NetworkControl,
    cancelled_timers: BTreeSet<TimerId>,
    next_timer_id: u64,
    out_buf: Vec<OutAction<M>>,
    /// Installed fault events in application order (front = next due).
    fault_timeline: VecDeque<(SimTime, FaultEvent)>,
    /// Observability recorder; disabled (every record call a no-op)
    /// unless [`Simulation::enable_obs`] is called.
    obs: Recorder,
}

impl<M: Clone + WireSize + 'static> Simulation<M> {
    /// Creates an empty simulation over `topology`, seeded with `seed`.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Simulation {
            topology,
            nodes: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            seed,
            stats: SimStats::default(),
            net_control: NetworkControl::default(),
            cancelled_timers: BTreeSet::new(),
            next_timer_id: 0,
            out_buf: Vec::new(),
            fault_timeline: VecDeque::new(),
            obs: Recorder::disabled(),
        }
    }

    /// Turns on observability recording (trace spans, metrics registry,
    /// CPU attribution) for the rest of the run. Nodes added before and
    /// after this call are both covered.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Recorder::enabled(cfg);
        self.obs.set_seed(self.seed);
        for i in 0..self.nodes.len() {
            self.obs.ensure_node(NodeId(i as u32));
        }
    }

    /// The observability recorder (disabled by default).
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Mutable access to the observability recorder, e.g. for the
    /// harness to record run-level counters.
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.obs
    }

    /// Adds a node in `zone` running `actor`; returns its id. The actor's
    /// [`Actor::on_start`] runs immediately (at the current time).
    pub fn add_node<A: Actor<M>>(&mut self, zone: ZoneId, actor: A) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.stats.ensure_node(id);
        self.obs.ensure_node(id);
        self.net_control.set_node_region(id, zone.region());
        self.nodes.push(NodeSlot {
            actor: Box::new(actor),
            zone,
            busy_until: self.now,
            egress_free_at: self.now,
        });
        self.run_handler(id, |actor, ctx| actor.on_start(ctx));
        id
    }

    /// The topology this simulation runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Zone of a node.
    pub fn zone_of(&self, node: NodeId) -> ZoneId {
        self.nodes[node.0 as usize].zone
    }

    /// Measurements collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable access to runtime fault injection.
    pub fn net_control_mut(&mut self) -> &mut NetworkControl {
        &mut self.net_control
    }

    /// Immutable access to fault injection state.
    pub fn net_control(&self) -> &NetworkControl {
        &self.net_control
    }

    /// All node ids placed in `region`, in id order.
    pub fn nodes_in_region(&self, region: RegionId) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|n| self.nodes[n.0 as usize].zone.region() == region)
            .collect()
    }

    /// Installs a scripted [`FaultPlan`]: its events apply to
    /// [`NetworkControl`] at their scheduled times as the simulation
    /// advances. Multiple plans merge; same-instant events keep install
    /// order. Region names are validated eagerly.
    ///
    /// Events in the past (at or before [`Simulation::now`]) apply on the
    /// next step. Messages already in flight across a new cut still
    /// arrive — drops are decided at send time.
    ///
    /// # Panics
    ///
    /// Panics if an event names a region the topology doesn't know.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        let events = plan.into_events();
        for (_, event) in &events {
            match event {
                FaultEvent::RegionOutage { region } | FaultEvent::RegionRestore { region } => {
                    let _ = self.topology.region(region);
                }
                FaultEvent::WanPartition { side_a, side_b }
                | FaultEvent::WanHeal { side_a, side_b } => {
                    for r in side_a.iter().chain(side_b) {
                        let _ = self.topology.region(r);
                    }
                }
                FaultEvent::LinkDegrade { a, b, .. } => {
                    let _ = self.topology.region(a);
                    let _ = self.topology.region(b);
                }
                FaultEvent::CrashReplica { .. }
                | FaultEvent::ReviveReplica { .. }
                | FaultEvent::IsolateReplica { .. }
                | FaultEvent::RejoinReplica { .. }
                | FaultEvent::Heal => {}
            }
        }
        let mut merged: Vec<(SimTime, FaultEvent)> =
            self.fault_timeline.drain(..).chain(events).collect();
        merged.sort_by_key(|(at, _)| *at);
        self.fault_timeline = merged.into();
    }

    /// Number of fault events still pending application.
    pub fn pending_faults(&self) -> usize {
        self.fault_timeline.len()
    }

    /// Applies every installed fault event due at or before `upto`.
    fn apply_due_faults(&mut self, upto: SimTime) {
        while self.fault_timeline.front().is_some_and(|(at, _)| *at <= upto) {
            let (_, event) = self.fault_timeline.pop_front().expect("front checked");
            self.apply_fault(event);
        }
    }

    fn apply_fault(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::RegionOutage { region } => {
                let r = self.topology.region(&region);
                self.net_control.outage_region(r);
            }
            FaultEvent::RegionRestore { region } => {
                let r = self.topology.region(&region);
                self.net_control.restore_region(r);
            }
            FaultEvent::WanPartition { side_a, side_b } => {
                for a in &side_a {
                    for b in &side_b {
                        let (ra, rb) = (self.topology.region(a), self.topology.region(b));
                        self.net_control.partition_regions(ra, rb);
                    }
                }
            }
            FaultEvent::WanHeal { side_a, side_b } => {
                for a in &side_a {
                    for b in &side_b {
                        let (ra, rb) = (self.topology.region(a), self.topology.region(b));
                        self.net_control.heal_region_cut(ra, rb);
                    }
                }
            }
            FaultEvent::LinkDegrade { a, b, drop_rate, extra_delay } => {
                let (ra, rb) = (self.topology.region(&a), self.topology.region(&b));
                self.net_control.degrade_regions(ra, rb, LinkQuality { drop_rate, extra_delay });
            }
            FaultEvent::CrashReplica { node } => self.net_control.crash(node),
            FaultEvent::ReviveReplica { node } => self.net_control.revive(node),
            FaultEvent::IsolateReplica { node } => self.net_control.isolate(node),
            FaultEvent::RejoinReplica { node } => self.net_control.rejoin(node),
            FaultEvent::Heal => self.net_control.heal(),
        }
    }

    /// Injects a message `from -> to` that arrives with normal network
    /// delays starting at time `at` (which must not be in the past).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulated time.
    pub fn post(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot post into the past");
        let (arrival, class, bytes) = self.delivery_plan(at, from, to, &msg);
        if self.net_control.should_drop(from, to, at, &mut self.rng) {
            self.stats.dropped_messages += 1;
            return;
        }
        self.stats.record_send(from, class, bytes);
        self.queue.push(arrival, to, EventKind::Deliver { from, msg });
    }

    /// Access the concrete actor behind a node for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if the node's actor is not a `T`.
    pub fn actor<T: 'static>(&self, node: NodeId) -> &T {
        self.nodes[node.0 as usize].actor.as_any().downcast_ref::<T>().expect("actor type mismatch")
    }

    /// Mutable access to the concrete actor behind a node.
    ///
    /// # Panics
    ///
    /// Panics if the node's actor is not a `T`.
    pub fn actor_mut<T: 'static>(&mut self, node: NodeId) -> &mut T {
        self.nodes[node.0 as usize]
            .actor
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("actor type mismatch")
    }

    /// Runs until the queue is empty or simulated time reaches `deadline`.
    /// Returns the number of events processed.
    pub fn run_until_quiescent(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(deadline.min(self.queue.peek_time().unwrap_or(deadline)));
        self.apply_due_faults(self.now);
        n
    }

    /// Runs until simulated time reaches `deadline` (events after the
    /// deadline stay queued). Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(deadline);
        self.apply_due_faults(self.now);
        n
    }

    /// Number of queued events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        // Scripted faults due before the next event take effect first, so
        // the event's send decisions see the post-fault network.
        if let Some(next) = self.queue.peek_time() {
            self.apply_due_faults(next.max(self.now));
        }
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.at);
        self.stats.total_events += 1;
        let Event { node, kind, at, .. } = event;

        // Dead nodes consume nothing.
        if self.net_control.is_crashed(node) {
            return true;
        }

        let kind = match kind {
            EventKind::Resume(inner) => *inner,
            k => k,
        };

        // Busy-server model: if the node's CPU is still busy, requeue the
        // event for when it frees up, preserving arrival order via seq.
        let busy_until = self.nodes[node.0 as usize].busy_until;
        if busy_until > at {
            self.queue.push(busy_until, node, EventKind::Resume(Box::new(kind)));
            return true;
        }

        match kind {
            EventKind::Deliver { from, msg } => {
                let class = self.link_class(from, node);
                let bytes = msg.wire_size() as u64;
                self.stats.record_receive(node, class, bytes);
                self.run_handler(node, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Fire { timer } => {
                if self.cancelled_timers.remove(&timer.id) {
                    return true;
                }
                self.run_handler(node, |actor, ctx| actor.on_timer(ctx, timer));
            }
            EventKind::Resume(_) => unreachable!("nested resume"),
        }
        true
    }

    fn link_class(&self, from: NodeId, to: NodeId) -> LinkClass {
        if self.nodes[from.0 as usize].zone.region() == self.nodes[to.0 as usize].zone.region() {
            LinkClass::Lan
        } else {
            LinkClass::Wan
        }
    }

    /// Computes (arrival time, link class, bytes) for a message departing
    /// at `departure`, charging NIC serialization to the sender's egress.
    fn delivery_plan(
        &mut self,
        departure: SimTime,
        from: NodeId,
        to: NodeId,
        msg: &M,
    ) -> (SimTime, LinkClass, u64) {
        let bytes = msg.wire_size() as u64;
        let class = self.link_class(from, to);
        let ser = self.topology.serialization_delay(bytes as usize);
        let slot = &mut self.nodes[from.0 as usize];
        let egress_start = slot.egress_free_at.max(departure);
        slot.egress_free_at = egress_start + ser;
        let egress_end = slot.egress_free_at;
        let from_zone = self.nodes[from.0 as usize].zone;
        let to_zone = self.nodes[to.0 as usize].zone;
        let prop = self.topology.sample_latency(from_zone, to_zone, &mut self.rng);
        let extra = self.net_control.extra_delay(from, to);
        (egress_end + prop + extra, class, bytes)
    }

    /// Runs one actor handler with a fresh context, then applies buffered
    /// actions with the busy-server departure rule.
    fn run_handler<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn ActorObj<M>, &mut Context<'_, M>),
    {
        let start = self.now.max(self.nodes[node.0 as usize].busy_until);
        let mut charged = SimTime::ZERO;
        let mut out = std::mem::take(&mut self.out_buf);
        out.clear();

        {
            let slot = &mut self.nodes[node.0 as usize];
            let mut ctx = Context {
                node,
                now: start,
                rng: &mut self.rng,
                out: &mut out,
                charged: &mut charged,
                next_timer_id: &mut self.next_timer_id,
                obs: &mut self.obs,
            };
            f(slot.actor.as_mut(), &mut ctx);
        }

        let end = start + charged;
        self.nodes[node.0 as usize].busy_until = end;
        self.stats.record_busy(node, charged);

        for action in out.drain(..) {
            match action {
                OutAction::Send { to, msg, at } => {
                    let departure = start + at;
                    if self.net_control.should_drop(node, to, departure, &mut self.rng) {
                        self.stats.dropped_messages += 1;
                        continue;
                    }
                    let (arrival, class, bytes) = self.delivery_plan(departure, node, to, &msg);
                    self.stats.record_send(node, class, bytes);
                    self.queue.push(arrival, to, EventKind::Deliver { from: node, msg });
                }
                OutAction::SetTimer { id, delay, tag } => {
                    self.queue.push(
                        end + delay,
                        node,
                        EventKind::Fire { timer: Timer { id, tag } },
                    );
                }
                OutAction::CancelTimer(id) => {
                    self.cancelled_timers.insert(id);
                }
            }
        }
        self.out_buf = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Msg(u64, usize);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    /// Records arrival times of everything it receives.
    #[derive(Default)]
    struct Recorder {
        arrivals: Vec<(SimTime, u64)>,
    }
    impl Actor<Msg> for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            self.arrivals.push((ctx.now(), msg.0));
        }
    }

    /// Charges fixed CPU per message and echoes.
    struct Worker {
        cost: SimTime,
    }
    impl Actor<Msg> for Worker {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            ctx.charge(self.cost);
            ctx.send(from, msg);
        }
    }

    fn two_region_topo() -> Topology {
        Topology::builder()
            .region("a", 2)
            .region("b", 2)
            .symmetric_latency("a", "b", SimTime::from_millis(40))
            .jitter(0.0)
            .inter_zone_latency(SimTime::from_micros(500))
            .intra_zone_latency(SimTime::from_micros(100))
            .build()
    }

    #[test]
    fn message_arrives_after_propagation_delay() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let a = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
        let b = sim.add_node(sim.topology().zone("b", 0), Recorder::default());
        sim.post(SimTime::ZERO, a, b, Msg(7, 100));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let rec = sim.actor::<Recorder>(b);
        assert_eq!(rec.arrivals.len(), 1);
        let (t, v) = rec.arrivals[0];
        assert_eq!(v, 7);
        // 40ms propagation + 100B serialization at 5Gbit/s (160ns).
        assert!(t >= SimTime::from_millis(40));
        assert!(t < SimTime::from_millis(41));
    }

    #[test]
    fn busy_server_serializes_processing() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let sink = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
        let worker =
            sim.add_node(sim.topology().zone("a", 0), Worker { cost: SimTime::from_millis(10) });
        // Two messages arrive at essentially the same time; the second reply
        // must depart 10ms of CPU after the first.
        sim.post(SimTime::ZERO, sink, worker, Msg(1, 10));
        sim.post(SimTime::ZERO, sink, worker, Msg(2, 10));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let rec = sim.actor::<Recorder>(sink);
        assert_eq!(rec.arrivals.len(), 2);
        let gap = rec.arrivals[1].0 - rec.arrivals[0].0;
        assert!(
            gap >= SimTime::from_millis(10),
            "second reply should lag a full CPU slot, got {gap}"
        );
        // CPU accounting saw 20ms of work.
        assert_eq!(sim.stats().cpu(worker).busy, SimTime::from_millis(20));
    }

    #[test]
    fn lan_wan_byte_accounting() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let a0 = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
        let a1 = sim.add_node(sim.topology().zone("a", 1), Recorder::default());
        let b0 = sim.add_node(sim.topology().zone("b", 0), Recorder::default());
        sim.post(SimTime::ZERO, a0, a1, Msg(1, 111));
        sim.post(SimTime::ZERO, a0, b0, Msg(2, 222));
        sim.run_until_quiescent(SimTime::from_secs(1));
        let n = sim.stats().net(a0);
        assert_eq!(n.lan_sent, 111);
        assert_eq!(n.wan_sent, 222);
        assert_eq!(sim.stats().net(a1).lan_received, 111);
        assert_eq!(sim.stats().net(b0).wan_received, 222);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let a = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
        let b = sim.add_node(sim.topology().zone("b", 0), Recorder::default());
        sim.net_control_mut().crash(b);
        sim.post(SimTime::ZERO, a, b, Msg(1, 10));
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert!(sim.actor::<Recorder>(b).arrivals.is_empty());
        assert_eq!(sim.stats().dropped_messages, 1);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct TimerUser {
            fired: Vec<u64>,
            cancel_me: Option<TimerId>,
        }
        impl Actor<Msg> for TimerUser {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimTime::from_millis(5), 5);
                ctx.set_timer(SimTime::from_millis(1), 1);
                let id = ctx.set_timer(SimTime::from_millis(3), 3);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, timer: Timer) {
                self.fired.push(timer.tag);
            }
        }
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let n =
            sim.add_node(sim.topology().zone("a", 0), TimerUser { fired: vec![], cancel_me: None });
        sim.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(sim.actor::<TimerUser>(n).fired, vec![1, 5]);
        let _ = sim.actor::<TimerUser>(n).cancel_me; // silence dead-code
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<(SimTime, u64)> {
            let topo = Topology::builder()
                .region("a", 2)
                .region("b", 2)
                .symmetric_latency("a", "b", SimTime::from_millis(20))
                .jitter(0.3)
                .build();
            let mut sim = Simulation::new(topo, seed);
            let rec = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
            let w = sim
                .add_node(sim.topology().zone("b", 0), Worker { cost: SimTime::from_micros(300) });
            for i in 0..50 {
                sim.post(SimTime::from_millis(i), rec, w, Msg(i, 64));
            }
            sim.run_until_quiescent(SimTime::from_secs(5));
            sim.actor::<Recorder>(rec).arrivals.clone()
        }
        assert_eq!(run(42), run(42), "same seed must reproduce exactly");
        assert_ne!(run(42), run(43), "different seeds should differ (jitter)");
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let topo = two_region_topo();
        let mut sim: Simulation<Msg> = Simulation::new(topo, 1);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    /// Sends one message per tick to a peer and counts echoes.
    struct Ticker {
        peer: NodeId,
        period: SimTime,
        sent: u64,
        echoed: Vec<SimTime>,
    }
    impl Actor<Msg> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {
            self.echoed.push(ctx.now());
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _timer: Timer) {
            self.sent += 1;
            ctx.send(self.peer, Msg(self.sent, 16));
            ctx.set_timer(self.period, 0);
        }
    }

    /// Echoes everything straight back.
    struct EchoBack;
    impl Actor<Msg> for EchoBack {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            ctx.send(from, msg);
        }
    }

    #[test]
    fn fault_plan_outage_window_suppresses_and_restores_traffic() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let echo = sim.add_node(sim.topology().zone("b", 0), EchoBack);
        let ticker = sim.add_node(
            sim.topology().zone("a", 0),
            Ticker { peer: echo, period: SimTime::from_millis(100), sent: 0, echoed: vec![] },
        );
        sim.install_fault_plan(FaultPlan::new().region_outage(
            "b",
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        ));
        sim.run_until(SimTime::from_secs(6));
        let echoed = &sim.actor::<Ticker>(ticker).echoed;
        let during = |t: &&SimTime| {
            **t > SimTime::from_secs(2) + SimTime::from_millis(200) && **t < SimTime::from_secs(4)
        };
        assert_eq!(echoed.iter().filter(during).count(), 0, "no echoes during the outage");
        let before = echoed.iter().filter(|t| **t < SimTime::from_secs(2)).count();
        let after = echoed.iter().filter(|t| **t > SimTime::from_secs(4)).count();
        assert!(before > 10, "traffic before the outage, got {before}");
        assert!(after > 10, "traffic resumes after restore, got {after}");
        assert_eq!(sim.pending_faults(), 0, "both events applied");
    }

    #[test]
    fn fault_plan_heal_clears_partition_but_not_crash() {
        let topo = two_region_topo();
        let mut sim = Simulation::new(topo, 1);
        let echo = sim.add_node(sim.topology().zone("b", 0), EchoBack);
        let ticker = sim.add_node(
            sim.topology().zone("a", 0),
            Ticker { peer: echo, period: SimTime::from_millis(100), sent: 0, echoed: vec![] },
        );
        let dead = sim.add_node(sim.topology().zone("b", 1), EchoBack);
        sim.install_fault_plan(
            FaultPlan::new()
                .crash_replica(dead, SimTime::from_secs(1))
                .at(
                    SimTime::from_secs(1),
                    FaultEvent::WanPartition { side_a: vec!["a".into()], side_b: vec!["b".into()] },
                )
                .heal_at(SimTime::from_secs(3)),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(!sim.net_control().is_crashed(ticker));
        assert!(sim.net_control().is_crashed(dead), "heal leaves crashes in place");
        let echoed = &sim.actor::<Ticker>(ticker).echoed;
        assert!(
            echoed.iter().any(|t| *t > SimTime::from_secs(3)),
            "traffic resumes after the heal event"
        );
    }

    #[test]
    fn fault_plan_runs_are_deterministic_and_diverge_from_unfaulted() {
        fn run(seed: u64, faulted: bool) -> Vec<(SimTime, u64)> {
            let topo = two_region_topo();
            let mut sim = Simulation::new(topo, seed);
            let rec = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
            let w = sim
                .add_node(sim.topology().zone("b", 0), Worker { cost: SimTime::from_micros(200) });
            if faulted {
                // Covers the instants the worker's echoes depart (the
                // requests take 40ms of propagation to reach it).
                sim.install_fault_plan(FaultPlan::new().region_outage(
                    "b",
                    SimTime::from_millis(45),
                    SimTime::from_millis(70),
                ));
            }
            for i in 0..50 {
                sim.post(SimTime::from_millis(i), rec, w, Msg(i, 64));
            }
            sim.run_until_quiescent(SimTime::from_secs(5));
            sim.actor::<Recorder>(rec).arrivals.clone()
        }
        assert_eq!(run(7, true), run(7, true), "same seed, same faulted trace");
        assert_ne!(run(7, true), run(7, false), "the outage must be observable");
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn fault_plan_rejects_unknown_regions_at_install() {
        let topo = two_region_topo();
        let mut sim: Simulation<Msg> = Simulation::new(topo, 1);
        sim.install_fault_plan(FaultPlan::new().region_outage(
            "atlantis",
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        ));
    }

    #[test]
    fn egress_bandwidth_backlogs_large_messages() {
        let topo = Topology::builder()
            .region("a", 1)
            .region("b", 1)
            .symmetric_latency("a", "b", SimTime::from_millis(10))
            .jitter(0.0)
            .bandwidth_bits_per_sec(8_000_000) // 1 MB/s
            .build();
        let mut sim = Simulation::new(topo, 1);
        let a = sim.add_node(sim.topology().zone("a", 0), Recorder::default());
        let b = sim.add_node(sim.topology().zone("b", 0), Recorder::default());
        // Two 500KB messages: the second serializes after the first.
        sim.post(SimTime::ZERO, a, b, Msg(1, 500_000));
        sim.post(SimTime::ZERO, a, b, Msg(2, 500_000));
        sim.run_until_quiescent(SimTime::from_secs(5));
        let rec = sim.actor::<Recorder>(b);
        assert_eq!(rec.arrivals.len(), 2);
        let (t1, t2) = (rec.arrivals[0].0, rec.arrivals[1].0);
        assert!(t1 >= SimTime::from_millis(510), "0.5s ser + 10ms prop");
        assert!(t2 - t1 >= SimTime::from_millis(499), "NIC is serialized");
    }
}
