//! Topology: regions, availability zones, and the latency model.
//!
//! The paper's deployments place replica groups in availability zones of
//! EC2 regions. A [`Topology`] captures exactly that structure: named
//! regions with a number of zones each, a symmetric inter-region one-way
//! latency matrix, and two intra-region constants (zone-to-zone and
//! same-zone latency). Jitter is a one-sided multiplicative factor drawn
//! per message.

use rand::Rng;
use serde::{Deserialize, Serialize};
use spider_types::{NodeId, RegionId, SimTime, ZoneId};
use std::collections::BTreeMap;

/// Static description of the simulated world: regions, zones, latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    region_names: Vec<String>,
    zones_per_region: Vec<u8>,
    /// One-way latency between regions, indexed `[from][to]`.
    inter_region: Vec<Vec<SimTime>>,
    /// One-way latency between distinct zones of the same region.
    inter_zone: SimTime,
    /// One-way latency between nodes in the same zone.
    intra_zone: SimTime,
    /// One-sided multiplicative jitter: latency is scaled by
    /// `U(1.0, 1.0 + jitter)`.
    jitter: f64,
    /// NIC bandwidth in bytes per second (serialization delay = size / bw).
    bandwidth_bps: u64,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Looks up a region by name.
    ///
    /// # Panics
    ///
    /// Panics if no region has that name — a configuration error.
    pub fn region(&self, name: &str) -> RegionId {
        RegionId(
            self.region_names
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("unknown region {name:?}")) as u16,
        )
    }

    /// The `zone`-th availability zone of the region called `name`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist or has fewer zones.
    pub fn zone(&self, name: &str, zone: u8) -> ZoneId {
        let r = self.region(name);
        assert!(
            zone < self.zones_per_region[r.0 as usize],
            "region {name} has only {} zones",
            self.zones_per_region[r.0 as usize]
        );
        ZoneId::new(r, zone)
    }

    /// Name of a region.
    pub fn region_name(&self, r: RegionId) -> &str {
        &self.region_names[r.0 as usize]
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.region_names.len()
    }

    /// Number of availability zones in region `r`.
    pub fn num_zones(&self, r: RegionId) -> u8 {
        self.zones_per_region[r.0 as usize]
    }

    /// Base one-way latency between two zones (before jitter).
    pub fn base_latency(&self, from: ZoneId, to: ZoneId) -> SimTime {
        if from.region() != to.region() {
            self.inter_region[from.region().0 as usize][to.region().0 as usize]
        } else if from.zone() != to.zone() {
            self.inter_zone
        } else {
            self.intra_zone
        }
    }

    /// Draws a jittered one-way latency between two zones.
    pub fn sample_latency<R: Rng>(&self, from: ZoneId, to: ZoneId, rng: &mut R) -> SimTime {
        let base = self.base_latency(from, to);
        if self.jitter <= 0.0 {
            return base;
        }
        base.mul_f64(1.0 + rng.gen_range(0.0..self.jitter))
    }

    /// NIC bandwidth in bytes/second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Serialization delay of a message of `bytes` bytes.
    pub fn serialization_delay(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Builder for [`Topology`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    region_names: Vec<String>,
    zones_per_region: Vec<u8>,
    latencies: BTreeMap<(String, String), SimTime>,
    inter_zone: SimTime,
    intra_zone: SimTime,
    jitter: f64,
    bandwidth_bps: u64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            region_names: Vec::new(),
            zones_per_region: Vec::new(),
            latencies: BTreeMap::new(),
            // EC2-like defaults: ~0.5 ms between AZs, ~0.15 ms inside one.
            inter_zone: SimTime::from_micros(500),
            intra_zone: SimTime::from_micros(150),
            jitter: 0.10,
            // 5 Gbit/s NIC.
            bandwidth_bps: 5_000_000_000 / 8,
        }
    }
}

impl TopologyBuilder {
    /// Adds a region with `zones` availability zones.
    pub fn region(mut self, name: &str, zones: u8) -> Self {
        assert!(zones >= 1, "a region needs at least one zone");
        self.region_names.push(name.to_owned());
        self.zones_per_region.push(zones);
        self
    }

    /// Sets the symmetric one-way latency between two regions.
    pub fn symmetric_latency(mut self, a: &str, b: &str, one_way: SimTime) -> Self {
        self.latencies.insert((a.to_owned(), b.to_owned()), one_way);
        self.latencies.insert((b.to_owned(), a.to_owned()), one_way);
        self
    }

    /// Sets the one-way latency between distinct zones of one region.
    pub fn inter_zone_latency(mut self, one_way: SimTime) -> Self {
        self.inter_zone = one_way;
        self
    }

    /// Sets the one-way latency between nodes in the same zone.
    pub fn intra_zone_latency(mut self, one_way: SimTime) -> Self {
        self.intra_zone = one_way;
        self
    }

    /// Sets the one-sided multiplicative jitter (0.1 = up to +10 %).
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..=2.0).contains(&jitter), "jitter out of range");
        self.jitter = jitter;
        self
    }

    /// Sets NIC bandwidth in bits per second.
    pub fn bandwidth_bits_per_sec(mut self, bps: u64) -> Self {
        assert!(bps > 0);
        self.bandwidth_bps = bps / 8;
        self
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if a latency is missing for any pair of distinct regions.
    pub fn build(self) -> Topology {
        let n = self.region_names.len();
        let mut inter = vec![vec![SimTime::ZERO; n]; n];
        for (i, a) in self.region_names.iter().enumerate() {
            for (j, b) in self.region_names.iter().enumerate() {
                if i == j {
                    continue;
                }
                let lat = self
                    .latencies
                    .get(&(a.clone(), b.clone()))
                    .unwrap_or_else(|| panic!("missing latency {a} -> {b}"));
                inter[i][j] = *lat;
            }
        }
        Topology {
            region_names: self.region_names,
            zones_per_region: self.zones_per_region,
            inter_region: inter,
            inter_zone: self.inter_zone,
            intra_zone: self.intra_zone,
            jitter: self.jitter,
            bandwidth_bps: self.bandwidth_bps,
        }
    }
}

/// Symmetric link-quality override between two regions: a drop
/// probability plus fixed extra one-way delay for survivors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Per-message drop probability in `[0, 1]`.
    pub drop_rate: f64,
    /// Fixed extra one-way delay for messages that get through.
    pub extra_delay: SimTime,
}

impl LinkQuality {
    /// Whether this override changes nothing (and can be cleared).
    pub fn is_clean(&self) -> bool {
        self.drop_rate == 0.0 && self.extra_delay == SimTime::ZERO
    }
}

/// Runtime network fault injection: partitions, link blocks, extra delay.
///
/// Consulted at send time for every message; used by tests and
/// [`FaultPlan`](crate::FaultPlan)s to exercise checkpoint catch-up, view
/// changes, and IRMC `TooOld` paths.
///
/// Convention: cuts are **symmetric by default** — `partition_*`,
/// `isolate`, region outages, and region cuts all sever both directions,
/// matching how `crash` behaves. The directed forms ([`block_until`],
/// [`set_drop_rate`], [`set_extra_delay`]) remain available for
/// asymmetric-loss scenarios.
///
/// [`block_until`]: NetworkControl::block_until
/// [`set_drop_rate`]: NetworkControl::set_drop_rate
/// [`set_extra_delay`]: NetworkControl::set_extra_delay
#[derive(Debug, Default)]
pub struct NetworkControl {
    /// Pairs (a, b): messages from a to b are dropped while blocked.
    blocked: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Nodes whose messages are all dropped (crashed).
    crashed: std::collections::BTreeSet<NodeId>,
    /// Nodes cut off the network both ways (state machines keep running).
    isolated: std::collections::BTreeSet<NodeId>,
    /// Extra one-way delay per ordered pair.
    extra_delay: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Probability of dropping a message per ordered pair.
    drop_rate: BTreeMap<(NodeId, NodeId), f64>,
    /// Region of each node, registered by the simulation at `add_node`.
    node_region: BTreeMap<NodeId, RegionId>,
    /// Regions currently cut off the network entirely.
    offline_regions: std::collections::BTreeSet<RegionId>,
    /// Severed region pairs (stored in both orders).
    region_cuts: std::collections::BTreeSet<(RegionId, RegionId)>,
    /// Degraded region pairs (stored in both orders).
    region_degrade: BTreeMap<(RegionId, RegionId), LinkQuality>,
}

impl NetworkControl {
    /// Blocks the directed link `from -> to` until simulated time `until`
    /// — the explicit *directed* form; prefer
    /// [`NetworkControl::partition_pair_until`] for realistic cuts.
    pub fn block_until(&mut self, from: NodeId, to: NodeId, until: SimTime) {
        self.blocked.insert((from, to), until);
    }

    /// Blocks both directions between `a` and `b` until `until`.
    pub fn partition_pair_until(&mut self, a: NodeId, b: NodeId, until: SimTime) {
        self.block_until(a, b, until);
        self.block_until(b, a, until);
    }

    /// Severs every `a`-side node from every `b`-side node (symmetric)
    /// until `until` — the group-level convenience for partitioning, say,
    /// an agreement group from an execution group.
    pub fn partition_groups_until(&mut self, a: &[NodeId], b: &[NodeId], until: SimTime) {
        for &x in a {
            for &y in b {
                self.partition_pair_until(x, y, until);
            }
        }
    }

    /// Marks a node as crashed: it neither sends nor receives from now on.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revives a crashed node (state is whatever it was — rejoin logic is
    /// the protocol's business).
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Cuts `node` off the network in both directions while its state
    /// machine and timers keep running — unlike
    /// [`NetworkControl::crash`], a later [`NetworkControl::rejoin`]
    /// lets it recover via the protocol's own catch-up paths.
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn rejoin(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Whether the node is currently isolated.
    pub fn is_isolated(&self, node: NodeId) -> bool {
        self.isolated.contains(&node)
    }

    /// Registers the region a node lives in. The simulation calls this
    /// from `add_node`; region-level faults only affect registered nodes.
    pub fn set_node_region(&mut self, node: NodeId, region: RegionId) {
        self.node_region.insert(node, region);
    }

    /// Region of a registered node.
    pub fn region_of(&self, node: NodeId) -> Option<RegionId> {
        self.node_region.get(&node).copied()
    }

    /// Cuts every node in `region` off the network, both directions
    /// (the region-outage convenience; see
    /// [`FaultEvent::RegionOutage`](crate::FaultEvent::RegionOutage) for
    /// the semantics).
    pub fn outage_region(&mut self, region: RegionId) {
        self.offline_regions.insert(region);
    }

    /// Reconnects a region taken down by
    /// [`NetworkControl::outage_region`].
    pub fn restore_region(&mut self, region: RegionId) {
        self.offline_regions.remove(&region);
    }

    /// Whether the region is currently offline.
    pub fn is_region_offline(&self, region: RegionId) -> bool {
        self.offline_regions.contains(&region)
    }

    /// Severs all traffic between two regions (symmetric).
    pub fn partition_regions(&mut self, a: RegionId, b: RegionId) {
        self.region_cuts.insert((a, b));
        self.region_cuts.insert((b, a));
    }

    /// Removes a region-level cut installed by
    /// [`NetworkControl::partition_regions`].
    pub fn heal_region_cut(&mut self, a: RegionId, b: RegionId) {
        self.region_cuts.remove(&(a, b));
        self.region_cuts.remove(&(b, a));
    }

    /// Degrades every link between two regions (symmetric). A clean
    /// [`LinkQuality`] (zero drop, zero delay) clears the degradation.
    pub fn degrade_regions(&mut self, a: RegionId, b: RegionId, quality: LinkQuality) {
        assert!((0.0..=1.0).contains(&quality.drop_rate), "drop rate out of range");
        if quality.is_clean() {
            self.region_degrade.remove(&(a, b));
            self.region_degrade.remove(&(b, a));
        } else {
            self.region_degrade.insert((a, b), quality);
            self.region_degrade.insert((b, a), quality);
        }
    }

    /// Clears every network-level fault: timed blocks, isolation, region
    /// outages, region cuts, degradation, and the per-pair drop/delay
    /// overrides. Crashed nodes stay crashed — a crash is not a network
    /// condition (and their timers are already gone).
    pub fn heal(&mut self) {
        self.blocked.clear();
        self.isolated.clear();
        self.offline_regions.clear();
        self.region_cuts.clear();
        self.region_degrade.clear();
        self.extra_delay.clear();
        self.drop_rate.clear();
    }

    /// Adds fixed extra one-way delay on the directed link.
    pub fn set_extra_delay(&mut self, from: NodeId, to: NodeId, delay: SimTime) {
        if delay == SimTime::ZERO {
            self.extra_delay.remove(&(from, to));
        } else {
            self.extra_delay.insert((from, to), delay);
        }
    }

    /// Sets a drop probability on the directed link.
    pub fn set_drop_rate(&mut self, from: NodeId, to: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            self.drop_rate.remove(&(from, to));
        } else {
            self.drop_rate.insert((from, to), p);
        }
    }

    fn region_pair(&self, from: NodeId, to: NodeId) -> Option<(RegionId, RegionId)> {
        Some((*self.node_region.get(&from)?, *self.node_region.get(&to)?))
    }

    pub(crate) fn extra_delay(&self, from: NodeId, to: NodeId) -> SimTime {
        let pair = self.extra_delay.get(&(from, to)).copied().unwrap_or(SimTime::ZERO);
        let regional = self
            .region_pair(from, to)
            .and_then(|key| self.region_degrade.get(&key))
            .map(|q| q.extra_delay)
            .unwrap_or(SimTime::ZERO);
        pair + regional
    }

    pub(crate) fn should_drop<R: Rng>(
        &self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> bool {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return true;
        }
        if self.isolated.contains(&from) || self.isolated.contains(&to) {
            return true;
        }
        if let Some((ra, rb)) = self.region_pair(from, to) {
            if self.offline_regions.contains(&ra) || self.offline_regions.contains(&rb) {
                return true;
            }
            if self.region_cuts.contains(&(ra, rb)) {
                return true;
            }
            if let Some(q) = self.region_degrade.get(&(ra, rb)) {
                if q.drop_rate > 0.0 && rng.gen_bool(q.drop_rate) {
                    return true;
                }
            }
        }
        if let Some(until) = self.blocked.get(&(from, to)) {
            if now < *until {
                return true;
            }
        }
        if let Some(p) = self.drop_rate.get(&(from, to)) {
            if rng.gen_bool(*p) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::builder()
            .region("va", 3)
            .region("or", 3)
            .symmetric_latency("va", "or", SimTime::from_millis(30))
            .jitter(0.0)
            .build()
    }

    #[test]
    fn latency_classes_are_distinct() {
        let t = topo();
        let va0 = t.zone("va", 0);
        let va1 = t.zone("va", 1);
        let or0 = t.zone("or", 0);
        assert_eq!(t.base_latency(va0, or0), SimTime::from_millis(30));
        assert_eq!(t.base_latency(va0, va1), SimTime::from_micros(500));
        assert_eq!(t.base_latency(va0, va0), SimTime::from_micros(150));
    }

    #[test]
    fn jitter_is_one_sided() {
        let t = Topology::builder()
            .region("a", 1)
            .region("b", 1)
            .symmetric_latency("a", "b", SimTime::from_millis(10))
            .jitter(0.5)
            .build();
        let mut rng = SmallRng::seed_from_u64(1);
        let a = t.zone("a", 0);
        let b = t.zone("b", 0);
        for _ in 0..100 {
            let l = t.sample_latency(a, b, &mut rng);
            assert!(l >= SimTime::from_millis(10));
            assert!(l <= SimTime::from_millis(15));
        }
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let t = Topology::builder()
            .region("a", 1)
            .bandwidth_bits_per_sec(8_000_000) // 1 MB/s
            .build();
        assert_eq!(t.serialization_delay(1_000_000), SimTime::from_secs(1));
        assert_eq!(t.serialization_delay(1_000), SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_panics() {
        topo().region("nowhere");
    }

    #[test]
    fn network_control_blocks_and_expires() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let (a, b) = (NodeId(1), NodeId(2));
        nc.block_until(a, b, SimTime::from_secs(5));
        assert!(nc.should_drop(a, b, SimTime::from_secs(1), &mut rng));
        assert!(!nc.should_drop(b, a, SimTime::from_secs(1), &mut rng));
        assert!(!nc.should_drop(a, b, SimTime::from_secs(5), &mut rng));
    }

    #[test]
    fn network_control_region_faults_are_symmetric_and_heal() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let (va, or) = (RegionId(0), RegionId(1));
        let (a, b) = (NodeId(1), NodeId(2));
        nc.set_node_region(a, va);
        nc.set_node_region(b, or);

        nc.partition_regions(va, or);
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b, a, SimTime::ZERO, &mut rng));
        nc.heal_region_cut(or, va); // either argument order heals
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng));

        nc.outage_region(or);
        assert!(nc.is_region_offline(or));
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b, a, SimTime::ZERO, &mut rng));
        nc.restore_region(or);
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng));

        nc.degrade_regions(
            va,
            or,
            LinkQuality { drop_rate: 1.0, extra_delay: SimTime::from_millis(5) },
        );
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert_eq!(nc.extra_delay(b, a), SimTime::from_millis(5));
        nc.outage_region(va);
        nc.heal();
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert_eq!(nc.extra_delay(a, b), SimTime::ZERO);
    }

    #[test]
    fn network_control_isolation_is_recoverable_and_heal_spares_crashes() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(8);
        let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
        nc.isolate(a);
        assert!(nc.is_isolated(a));
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b, a, SimTime::ZERO, &mut rng));
        assert!(!nc.should_drop(b, c, SimTime::ZERO, &mut rng));
        nc.crash(c);
        nc.heal();
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng), "heal rejoins isolated nodes");
        assert!(nc.should_drop(b, c, SimTime::ZERO, &mut rng), "heal never revives crashes");
    }

    #[test]
    fn network_control_group_partition_cuts_cross_pairs_only() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(9);
        let (a1, a2, b1) = (NodeId(1), NodeId(2), NodeId(3));
        nc.partition_groups_until(&[a1, a2], &[b1], SimTime::from_secs(5));
        assert!(nc.should_drop(a1, b1, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b1, a2, SimTime::ZERO, &mut rng));
        assert!(!nc.should_drop(a1, a2, SimTime::ZERO, &mut rng), "intra-side traffic flows");
        assert!(!nc.should_drop(a1, b1, SimTime::from_secs(5), &mut rng), "cut expires");
    }

    #[test]
    fn network_control_crash_drops_both_directions() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let (a, b) = (NodeId(1), NodeId(2));
        nc.crash(a);
        assert!(nc.is_crashed(a));
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b, a, SimTime::ZERO, &mut rng));
        nc.revive(a);
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng));
    }
}
