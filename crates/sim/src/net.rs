//! Topology: regions, availability zones, and the latency model.
//!
//! The paper's deployments place replica groups in availability zones of
//! EC2 regions. A [`Topology`] captures exactly that structure: named
//! regions with a number of zones each, a symmetric inter-region one-way
//! latency matrix, and two intra-region constants (zone-to-zone and
//! same-zone latency). Jitter is a one-sided multiplicative factor drawn
//! per message.

use rand::Rng;
use serde::{Deserialize, Serialize};
use spider_types::{NodeId, RegionId, SimTime, ZoneId};
use std::collections::BTreeMap;

/// Static description of the simulated world: regions, zones, latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    region_names: Vec<String>,
    zones_per_region: Vec<u8>,
    /// One-way latency between regions, indexed `[from][to]`.
    inter_region: Vec<Vec<SimTime>>,
    /// One-way latency between distinct zones of the same region.
    inter_zone: SimTime,
    /// One-way latency between nodes in the same zone.
    intra_zone: SimTime,
    /// One-sided multiplicative jitter: latency is scaled by
    /// `U(1.0, 1.0 + jitter)`.
    jitter: f64,
    /// NIC bandwidth in bytes per second (serialization delay = size / bw).
    bandwidth_bps: u64,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Looks up a region by name.
    ///
    /// # Panics
    ///
    /// Panics if no region has that name — a configuration error.
    pub fn region(&self, name: &str) -> RegionId {
        RegionId(
            self.region_names
                .iter()
                .position(|n| n == name)
                .unwrap_or_else(|| panic!("unknown region {name:?}")) as u16,
        )
    }

    /// The `zone`-th availability zone of the region called `name`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not exist or has fewer zones.
    pub fn zone(&self, name: &str, zone: u8) -> ZoneId {
        let r = self.region(name);
        assert!(
            zone < self.zones_per_region[r.0 as usize],
            "region {name} has only {} zones",
            self.zones_per_region[r.0 as usize]
        );
        ZoneId::new(r, zone)
    }

    /// Name of a region.
    pub fn region_name(&self, r: RegionId) -> &str {
        &self.region_names[r.0 as usize]
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.region_names.len()
    }

    /// Number of availability zones in region `r`.
    pub fn num_zones(&self, r: RegionId) -> u8 {
        self.zones_per_region[r.0 as usize]
    }

    /// Base one-way latency between two zones (before jitter).
    pub fn base_latency(&self, from: ZoneId, to: ZoneId) -> SimTime {
        if from.region() != to.region() {
            self.inter_region[from.region().0 as usize][to.region().0 as usize]
        } else if from.zone() != to.zone() {
            self.inter_zone
        } else {
            self.intra_zone
        }
    }

    /// Draws a jittered one-way latency between two zones.
    pub fn sample_latency<R: Rng>(&self, from: ZoneId, to: ZoneId, rng: &mut R) -> SimTime {
        let base = self.base_latency(from, to);
        if self.jitter <= 0.0 {
            return base;
        }
        base.mul_f64(1.0 + rng.gen_range(0.0..self.jitter))
    }

    /// NIC bandwidth in bytes/second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Serialization delay of a message of `bytes` bytes.
    pub fn serialization_delay(&self, bytes: usize) -> SimTime {
        SimTime::from_nanos((bytes as u64).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Builder for [`Topology`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    region_names: Vec<String>,
    zones_per_region: Vec<u8>,
    latencies: BTreeMap<(String, String), SimTime>,
    inter_zone: SimTime,
    intra_zone: SimTime,
    jitter: f64,
    bandwidth_bps: u64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            region_names: Vec::new(),
            zones_per_region: Vec::new(),
            latencies: BTreeMap::new(),
            // EC2-like defaults: ~0.5 ms between AZs, ~0.15 ms inside one.
            inter_zone: SimTime::from_micros(500),
            intra_zone: SimTime::from_micros(150),
            jitter: 0.10,
            // 5 Gbit/s NIC.
            bandwidth_bps: 5_000_000_000 / 8,
        }
    }
}

impl TopologyBuilder {
    /// Adds a region with `zones` availability zones.
    pub fn region(mut self, name: &str, zones: u8) -> Self {
        assert!(zones >= 1, "a region needs at least one zone");
        self.region_names.push(name.to_owned());
        self.zones_per_region.push(zones);
        self
    }

    /// Sets the symmetric one-way latency between two regions.
    pub fn symmetric_latency(mut self, a: &str, b: &str, one_way: SimTime) -> Self {
        self.latencies.insert((a.to_owned(), b.to_owned()), one_way);
        self.latencies.insert((b.to_owned(), a.to_owned()), one_way);
        self
    }

    /// Sets the one-way latency between distinct zones of one region.
    pub fn inter_zone_latency(mut self, one_way: SimTime) -> Self {
        self.inter_zone = one_way;
        self
    }

    /// Sets the one-way latency between nodes in the same zone.
    pub fn intra_zone_latency(mut self, one_way: SimTime) -> Self {
        self.intra_zone = one_way;
        self
    }

    /// Sets the one-sided multiplicative jitter (0.1 = up to +10 %).
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..=2.0).contains(&jitter), "jitter out of range");
        self.jitter = jitter;
        self
    }

    /// Sets NIC bandwidth in bits per second.
    pub fn bandwidth_bits_per_sec(mut self, bps: u64) -> Self {
        assert!(bps > 0);
        self.bandwidth_bps = bps / 8;
        self
    }

    /// Finalizes the topology.
    ///
    /// # Panics
    ///
    /// Panics if a latency is missing for any pair of distinct regions.
    pub fn build(self) -> Topology {
        let n = self.region_names.len();
        let mut inter = vec![vec![SimTime::ZERO; n]; n];
        for (i, a) in self.region_names.iter().enumerate() {
            for (j, b) in self.region_names.iter().enumerate() {
                if i == j {
                    continue;
                }
                let lat = self
                    .latencies
                    .get(&(a.clone(), b.clone()))
                    .unwrap_or_else(|| panic!("missing latency {a} -> {b}"));
                inter[i][j] = *lat;
            }
        }
        Topology {
            region_names: self.region_names,
            zones_per_region: self.zones_per_region,
            inter_region: inter,
            inter_zone: self.inter_zone,
            intra_zone: self.intra_zone,
            jitter: self.jitter,
            bandwidth_bps: self.bandwidth_bps,
        }
    }
}

/// Runtime network fault injection: partitions, link blocks, extra delay.
///
/// Consulted at send time for every message; used by tests to exercise
/// checkpoint catch-up, view changes, and IRMC `TooOld` paths.
#[derive(Debug, Default)]
pub struct NetworkControl {
    /// Pairs (a, b): messages from a to b are dropped while blocked.
    blocked: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Nodes whose messages are all dropped (crashed).
    crashed: std::collections::BTreeSet<NodeId>,
    /// Extra one-way delay per ordered pair.
    extra_delay: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Probability of dropping a message per ordered pair.
    drop_rate: BTreeMap<(NodeId, NodeId), f64>,
}

impl NetworkControl {
    /// Blocks the directed link `from -> to` until simulated time `until`.
    pub fn block_until(&mut self, from: NodeId, to: NodeId, until: SimTime) {
        self.blocked.insert((from, to), until);
    }

    /// Blocks both directions between `a` and `b` until `until`.
    pub fn partition_pair_until(&mut self, a: NodeId, b: NodeId, until: SimTime) {
        self.block_until(a, b, until);
        self.block_until(b, a, until);
    }

    /// Marks a node as crashed: it neither sends nor receives from now on.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Revives a crashed node (state is whatever it was — rejoin logic is
    /// the protocol's business).
    pub fn revive(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Adds fixed extra one-way delay on the directed link.
    pub fn set_extra_delay(&mut self, from: NodeId, to: NodeId, delay: SimTime) {
        if delay == SimTime::ZERO {
            self.extra_delay.remove(&(from, to));
        } else {
            self.extra_delay.insert((from, to), delay);
        }
    }

    /// Sets a drop probability on the directed link.
    pub fn set_drop_rate(&mut self, from: NodeId, to: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p));
        if p == 0.0 {
            self.drop_rate.remove(&(from, to));
        } else {
            self.drop_rate.insert((from, to), p);
        }
    }

    pub(crate) fn extra_delay(&self, from: NodeId, to: NodeId) -> SimTime {
        self.extra_delay.get(&(from, to)).copied().unwrap_or(SimTime::ZERO)
    }

    pub(crate) fn should_drop<R: Rng>(
        &self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        rng: &mut R,
    ) -> bool {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return true;
        }
        if let Some(until) = self.blocked.get(&(from, to)) {
            if now < *until {
                return true;
            }
        }
        if let Some(p) = self.drop_rate.get(&(from, to)) {
            if rng.gen_bool(*p) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::builder()
            .region("va", 3)
            .region("or", 3)
            .symmetric_latency("va", "or", SimTime::from_millis(30))
            .jitter(0.0)
            .build()
    }

    #[test]
    fn latency_classes_are_distinct() {
        let t = topo();
        let va0 = t.zone("va", 0);
        let va1 = t.zone("va", 1);
        let or0 = t.zone("or", 0);
        assert_eq!(t.base_latency(va0, or0), SimTime::from_millis(30));
        assert_eq!(t.base_latency(va0, va1), SimTime::from_micros(500));
        assert_eq!(t.base_latency(va0, va0), SimTime::from_micros(150));
    }

    #[test]
    fn jitter_is_one_sided() {
        let t = Topology::builder()
            .region("a", 1)
            .region("b", 1)
            .symmetric_latency("a", "b", SimTime::from_millis(10))
            .jitter(0.5)
            .build();
        let mut rng = SmallRng::seed_from_u64(1);
        let a = t.zone("a", 0);
        let b = t.zone("b", 0);
        for _ in 0..100 {
            let l = t.sample_latency(a, b, &mut rng);
            assert!(l >= SimTime::from_millis(10));
            assert!(l <= SimTime::from_millis(15));
        }
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let t = Topology::builder()
            .region("a", 1)
            .bandwidth_bits_per_sec(8_000_000) // 1 MB/s
            .build();
        assert_eq!(t.serialization_delay(1_000_000), SimTime::from_secs(1));
        assert_eq!(t.serialization_delay(1_000), SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_panics() {
        topo().region("nowhere");
    }

    #[test]
    fn network_control_blocks_and_expires() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let (a, b) = (NodeId(1), NodeId(2));
        nc.block_until(a, b, SimTime::from_secs(5));
        assert!(nc.should_drop(a, b, SimTime::from_secs(1), &mut rng));
        assert!(!nc.should_drop(b, a, SimTime::from_secs(1), &mut rng));
        assert!(!nc.should_drop(a, b, SimTime::from_secs(5), &mut rng));
    }

    #[test]
    fn network_control_crash_drops_both_directions() {
        let mut nc = NetworkControl::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let (a, b) = (NodeId(1), NodeId(2));
        nc.crash(a);
        assert!(nc.is_crashed(a));
        assert!(nc.should_drop(a, b, SimTime::ZERO, &mut rng));
        assert!(nc.should_drop(b, a, SimTime::ZERO, &mut rng));
        nc.revive(a);
        assert!(!nc.should_drop(a, b, SimTime::ZERO, &mut rng));
    }
}
