//! Actors and the handler-side API ([`Context`]).

use rand::rngs::SmallRng;
use spider_obs::Recorder;
use spider_types::{NodeId, SimTime};

/// Identifier of a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A fired timer: its id plus the user-supplied tag that tells the actor
/// what the timer was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// Identifier returned by [`Context::set_timer`].
    pub id: TimerId,
    /// Free-form tag chosen by the actor when setting the timer.
    pub tag: u64,
}

/// A protocol participant driven by the simulator.
///
/// Implementations are sans-IO state machines: they react to messages and
/// timers, and interact with the world exclusively through the [`Context`].
/// `M` is the workspace-wide message type of the experiment being run.
pub trait Actor<M>: 'static {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for every message delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: Timer) {
        let _ = (ctx, timer);
    }
}

/// Object-safe extension of [`Actor`] that supports downcasting, so the
/// harness can inspect actor state after a run.
pub(crate) trait ActorObj<M>: Actor<M> {
    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<M, T: Actor<M> + 'static> ActorObj<M> for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Actions buffered during a handler invocation and executed by the
/// simulator once the handler returns (and its charged CPU time elapsed).
pub(crate) enum OutAction<M> {
    Send {
        to: NodeId,
        msg: M,
        /// CPU work charged before this send was issued: the message
        /// departs once the handler's execution reaches this point.
        at: SimTime,
    },
    SetTimer {
        id: TimerId,
        delay: SimTime,
        tag: u64,
    },
    CancelTimer(TimerId),
}

/// Handler-side view of the simulation.
///
/// A `Context` is passed to every [`Actor`] callback. A message departs
/// once the handler's execution reaches the CPU work charged *before* the
/// send — mirroring a real server that computes, writes to the network,
/// and computes some more (protocols exploit this to overlap WAN transfers
/// with later CPU work, e.g. the IRMC's §A.9 content/signing overlap).
/// Timers take effect when the whole handler completes.
pub struct Context<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) out: &'a mut Vec<OutAction<M>>,
    pub(crate) charged: &'a mut SimTime,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) obs: &'a mut Recorder,
}

impl<'a, M> Context<'a, M> {
    /// The node this handler runs on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time (start of this handler's execution).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to`. The message departs when the handler's charged
    /// work completes; delivery adds serialization and propagation delay.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push(OutAction::Send { to, msg, at: *self.charged });
    }

    /// Sends a clone of `msg` to every node in `to`.
    pub fn broadcast<I>(&mut self, to: I, msg: &M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        for n in to {
            self.send(n, msg.clone());
        }
    }

    /// Charges `cost` of CPU time to this handler. The node stays busy (and
    /// outgoing messages wait) until all charged work is done.
    pub fn charge(&mut self, cost: SimTime) {
        *self.charged += cost;
    }

    /// Like [`Context::charge`], but also attributes the cost to
    /// `(component, op)` when observability is enabled, so flamegraphs
    /// can break node busy-time down by operation. Simulated time is
    /// identical either way.
    pub fn charge_op(&mut self, component: &'static str, op: &'static str, cost: SimTime) {
        *self.charged += cost;
        self.obs.cpu_add(self.node, component, op, cost);
    }

    /// The virtual instant the handler's execution has reached: its start
    /// time plus all CPU work charged so far. Span events use this so
    /// intra-handler milestones are ordered by the work preceding them.
    fn vnow(&self) -> SimTime {
        self.now + *self.charged
    }

    /// Records a trace span enter for `(req, phase)` (no-op when
    /// observability is disabled).
    pub fn span_enter(&mut self, req: u64, phase: &'static str) {
        let at = self.vnow();
        self.obs.span_enter(at, self.node, req, phase);
    }

    /// Records a trace span exit for `(req, phase)`.
    pub fn span_exit(&mut self, req: u64, phase: &'static str) {
        let at = self.vnow();
        self.obs.span_exit(at, self.node, req, phase);
    }

    /// Records an instant trace milestone for `(req, phase)`.
    pub fn span_instant(&mut self, req: u64, phase: &'static str) {
        let at = self.vnow();
        self.obs.span_instant(at, self.node, req, phase);
    }

    /// Records a causal edge: a message of `kind` carrying request `req`
    /// departs this node for `to` at the handler's current virtual
    /// instant (no-op when observability is disabled). Call it next to
    /// the `send` whose departure it mirrors; for messages that know
    /// their own kind and payload, prefer [`Context::edge_for`].
    pub fn edge(&mut self, to: NodeId, kind: &'static str, req: u64) {
        let at = self.vnow();
        self.obs.edge(at, self.node, to, kind, req);
    }

    /// Records causal edges for a message about to be sent to `to`: one
    /// edge per request id the message carries (via
    /// [`spider_types::wire::WireSize::trace_reqs`]), labeled with the
    /// message's [`spider_types::wire::WireSize::trace_kind`]. Messages
    /// carrying no request payload record nothing.
    pub fn edge_for<T: spider_types::wire::WireSize>(&mut self, to: NodeId, msg: &T) {
        if !self.obs.is_enabled() {
            return;
        }
        let at = self.vnow();
        let kind = msg.trace_kind();
        let (node, obs) = (self.node, &mut *self.obs);
        msg.trace_reqs(&mut |req| obs.edge(at, node, to, kind, req));
    }

    /// Feeds a channel window-movement mark to the health watchdog.
    pub fn health_mark(&mut self, component: &'static str, key: u32) {
        let at = self.vnow();
        self.obs.health_mark(at, self.node, component, key);
    }

    /// Feeds a channel's outstanding-work gauge to the health watchdog.
    pub fn health_pending(&mut self, component: &'static str, key: u32, pending: u64) {
        let at = self.vnow();
        self.obs.health_pending(at, self.node, component, key, pending);
    }

    /// Feeds a consensus view observation to the health watchdog.
    pub fn health_view(&mut self, view: u64) {
        let at = self.vnow();
        self.obs.health_view(at, self.node, view);
    }

    /// Adds `delta` to this node's counter `name` in the metrics registry.
    pub fn metric_inc(&mut self, name: &'static str, delta: u64) {
        self.obs.counter_add(self.node, name, delta);
    }

    /// Records `value` into this node's histogram `name`.
    pub fn metric_hist(&mut self, name: &'static str, value: u64) {
        self.obs.hist_record(self.node, name, value);
    }

    /// Whether observability recording is enabled for this run. Hot paths
    /// can use this to skip computing values that exist only for metrics.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Sets a timer that fires `delay` after the end of this handler's
    /// execution, tagged with `tag`.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.out.push(OutAction::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.out.push(OutAction::CancelTimer(id));
    }

    /// Deterministic random number generator (shared by the whole sim).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}
