//! Deterministic discrete-event simulator for geo-distributed protocols.
//!
//! The paper evaluates Spider on Amazon EC2 virtual machines spread over
//! four (later five) regions. This crate is the substitute substrate: a
//! deterministic discrete-event simulation (DES) of nodes, links, CPUs, and
//! timers that lets the exact same sans-IO protocol state machines run at
//! laptop scale with reproducible latency distributions.
//!
//! # Model
//!
//! * **Nodes** are actors implementing [`Actor`]; each lives in an
//!   availability zone of a region ([`Topology`]).
//! * **Messages** carry a [`WireSize`]; delivery time is
//!   `departure + serialization (size / NIC bandwidth) + propagation
//!   (latency matrix) + jitter`.
//! * **CPU** follows a busy-server model: a node processes one event at a
//!   time; handlers charge processing cost via [`Context::charge`]; messages
//!   depart when the handler's charged work completes. This produces
//!   realistic saturation behaviour and CPU-utilization numbers.
//! * **Determinism**: one seed, one execution. All randomness flows through
//!   a single seeded RNG, and ties in the event queue are broken by
//!   insertion order.
//! * **Faults**: [`NetworkControl`] injects partitions, crashes, and lossy
//!   links at runtime; a scripted [`FaultPlan`] applies a deterministic
//!   timeline of typed fault events (region outages, WAN partitions, link
//!   degradation, crashes) at scheduled times, written in placement terms.
//!
//! # Examples
//!
//! ```
//! use spider_sim::{Actor, Context, Simulation, Topology};
//! use spider_types::{NodeId, RegionId, SimTime, WireSize};
//!
//! #[derive(Clone)]
//! struct Ping(u32);
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize { 64 }
//! }
//!
//! struct Echo;
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
//!         if msg.0 < 3 {
//!             ctx.send(from, Ping(msg.0 + 1));
//!         }
//!     }
//! }
//!
//! let topology = Topology::builder()
//!     .region("a", 1)
//!     .region("b", 1)
//!     .symmetric_latency("a", "b", SimTime::from_millis(10))
//!     .build();
//! let mut sim = Simulation::new(topology, 7);
//! let a = sim.add_node(sim.topology().zone("a", 0), Echo);
//! let b = sim.add_node(sim.topology().zone("b", 0), Echo);
//! sim.post(SimTime::ZERO, a, b, Ping(0));
//! sim.run_until_quiescent(SimTime::from_secs(1));
//! assert!(sim.now() >= SimTime::from_millis(30), "three hops of 10ms each");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod event;
mod fault;
mod metrics;
mod net;
mod world;

pub use actor::{Actor, Context, Timer, TimerId};
pub use fault::{FaultEvent, FaultPlan};
pub use metrics::{LinkClass, NetStats, NodeStats, SimStats};
pub use net::{LinkQuality, NetworkControl, Topology, TopologyBuilder};
pub use world::Simulation;

pub use spider_obs::{
    req_id, ObsConfig, ObsReport, Recorder, PHASE_BATCH, PHASE_COMMIT, PHASE_DELIVER, PHASE_EXEC,
    PHASE_PROPOSE, PHASE_RECAST, PHASE_REQUEST, PHASE_SHIP,
};
pub use spider_types::{NodeId, SimTime, WireSize, ZoneId};
