//! End-to-end properties of the IRMC-RC digest-only fan-in (dedup):
//! under message reordering, a crashed carrier, or a Byzantine carrier
//! shipping tampered content, a dedup channel delivers the exact same
//! slot sequence as a legacy IRMC-RC channel — and it does so
//! deterministically (double-run equivalence, covering the refetch
//! fallback).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spider_crypto::{Digest, Digestible, Keyring};
use spider_irmc::{
    Action, ChannelMode, ChannelMsg, IrmcConfig, ReceiverEndpoint, SenderEndpoint, Variant,
};
use spider_types::{Position, SimTime, WireSize};
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq)]
struct Blob(Vec<u8>);

impl Blob {
    fn of(tag: u64) -> Self {
        Blob(tag.to_be_bytes().to_vec())
    }
}

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        64 + self.0.len()
    }
}

impl Digestible for Blob {
    fn digest(&self) -> Digest {
        Digest::of_bytes(&self.0)
    }
}

/// What a misbehaving sender does to the content frames it ships.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    None,
    /// The sender's `SendRange` frames are lost (crashed carrier).
    DropContent(usize),
    /// The sender tampers its `SendRange` payloads after signing
    /// (Byzantine carrier); signatures no longer cover the content.
    TamperContent(usize),
}

struct Net {
    senders: Vec<SenderEndpoint<Blob>>,
    receivers: Vec<ReceiverEndpoint<Blob>>,
    wire: VecDeque<(bool, usize, usize, WireMsg)>,
    rng: SmallRng,
    shuffle: bool,
    fault: Fault,
    /// Armed supervision timers: (receiver, token).
    timers: Vec<(usize, u64)>,
    /// Ready announcements per receiver, in arrival order.
    ready_log: Vec<Vec<(u64, Position)>>,
}

enum WireMsg {
    Chan(ChannelMsg<Blob>),
    Recv(spider_irmc::ReceiverMsg),
}

/// One scenario outcome: per-receiver delivered slot sequences plus the
/// per-receiver ready announcements, in arrival order.
type RunOutcome = (Vec<Vec<Option<Blob>>>, Vec<Vec<(u64, Position)>>);

impl Net {
    fn new(cfg: IrmcConfig, seed: u64, shuffle: bool, fault: Fault) -> Self {
        let ring = Keyring::new(7);
        Net {
            senders: (0..cfg.n_senders)
                .map(|i| SenderEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            receivers: (0..cfg.n_receivers)
                .map(|i| ReceiverEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            wire: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            shuffle,
            fault,
            timers: Vec::new(),
            ready_log: vec![Vec::new(); cfg.n_receivers],
        }
    }

    fn absorb_sender(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            // Dedup RC has no sender-group-internal traffic; anything
            // other than receiver-bound frames (charges, readiness) is
            // dropped here.
            if let Action::ToReceiver { to, msg } = a {
                let msg = match (&self.fault, msg) {
                    (Fault::DropContent(f), ChannelMsg::SendRange { .. }) if *f == from => continue,
                    (Fault::TamperContent(f), ChannelMsg::SendRange { sc, first, msgs, sig })
                        if *f == from =>
                    {
                        let mut bad = (*msgs).clone();
                        bad[0] = Blob::of(u64::MAX);
                        ChannelMsg::SendRange { sc, first, msgs: Arc::new(bad), sig }
                    }
                    (_, msg) => msg,
                };
                self.wire.push_back((true, from, to, WireMsg::Chan(msg)));
            }
        }
    }

    fn absorb_receiver(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    self.wire.push_back((false, from, to, WireMsg::Recv(msg)))
                }
                Action::Ready { sc, p } => self.ready_log[from].push((sc, p)),
                Action::SetTimer { token, .. } => self.timers.push((from, token)),
                _ => {}
            }
        }
    }

    fn send_batch_all(&mut self, sc: u64, first: Position, msgs: &[Blob]) {
        for i in 0..self.senders.len() {
            let mut out = Vec::new();
            self.senders[i].send_batch(sc, first, msgs.to_vec(), &mut out);
            self.absorb_sender(i, out);
        }
    }

    fn pump(&mut self) {
        let mut n = 0u32;
        while !self.wire.is_empty() {
            let idx = if self.shuffle { self.rng.gen_range(0..self.wire.len()) } else { 0 };
            let (to_receiver, from, to, msg) = self.wire.remove(idx).expect("index in range");
            n += 1;
            match (to_receiver, msg) {
                (true, WireMsg::Chan(m)) => {
                    let mut out = Vec::new();
                    let _ = self.receivers[to].on_sender_message(SimTime::ZERO, from, m, &mut out);
                    self.absorb_receiver(to, out);
                }
                (false, WireMsg::Recv(m)) => {
                    let mut out = Vec::new();
                    let _ = self.senders[to].on_receiver_message(from, m, &mut out);
                    self.absorb_sender(to, out);
                }
                _ => unreachable!("wire direction matches payload kind"),
            }
            assert!(n < 1_000_000, "message storm");
        }
    }

    /// Fires every armed supervision timer once, then pumps the refetch
    /// traffic it generated.
    fn fire_timers(&mut self) {
        let due = std::mem::take(&mut self.timers);
        for (r, token) in due {
            let mut out = Vec::new();
            let _ = self.receivers[r].on_timer(token, SimTime::from_millis(500), &mut out);
            self.absorb_receiver(r, out);
        }
        self.pump();
    }

    /// The delivered slot sequence of one receiver over `1..=n`.
    fn delivered(&mut self, r: usize, sc: u64, n: u64) -> Vec<Option<Blob>> {
        (1..=n).map(|p| self.receivers[r].try_receive(sc, Position(p)).into_payload()).collect()
    }
}

fn legacy_cfg(chunk: usize) -> IrmcConfig {
    IrmcConfig::new(Variant::ReceiverCollect, 4, 1, 3, 1, 64)
        .with_cost(spider_crypto::CostModel::zero())
        .with_range(chunk, SimTime::ZERO)
}

fn dedup_cfg(chunk: usize) -> IrmcConfig {
    legacy_cfg(chunk).with_mode(ChannelMode::ReliableCast { dedup: true })
}

/// Runs one scenario to completion (including up to three supervision
/// rounds, enough for any single-fault refetch) and returns each
/// receiver's delivered slot sequence plus its ready log.
fn run(cfg: IrmcConfig, seed: u64, fault: Fault, n_msgs: u64) -> RunOutcome {
    let mut net = Net::new(cfg, seed, true, fault);
    let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
    net.send_batch_all(0, Position(1), &msgs);
    net.pump();
    for _ in 0..3 {
        if net.timers.is_empty() {
            break;
        }
        net.fire_timers();
    }
    let delivered = (0..3).map(|r| net.delivered(r, 0, n_msgs)).collect();
    (delivered, net.ready_log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under random reordering, dedup delivers the byte-identical slot
    /// sequence the legacy RC fan-in delivers — every slot, every
    /// receiver.
    #[test]
    fn dedup_matches_legacy_under_reordering(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
    ) {
        let (legacy, _) = run(legacy_cfg(chunk), seed, Fault::None, n_msgs);
        let (dedup, _) = run(dedup_cfg(chunk), seed, Fault::None, n_msgs);
        prop_assert_eq!(&dedup, &legacy);
        for (r, slots) in dedup.iter().enumerate() {
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(
                    slot.clone(),
                    Some(Blob::of(i as u64 + 1)),
                    "receiver {} slot {} must deliver", r, i + 1
                );
            }
        }
    }

    /// A crashed sender (its content frames are lost — including every
    /// range it carries) does not cost a single slot: the vouch quorum
    /// plus refetch recovers exactly what legacy RC delivers.
    #[test]
    fn dedup_matches_legacy_under_carrier_drop(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
        faulty in 0usize..4,
    ) {
        let fault = Fault::DropContent(faulty);
        let (legacy, _) = run(legacy_cfg(chunk), seed, fault, n_msgs);
        let (dedup, _) = run(dedup_cfg(chunk), seed, fault, n_msgs);
        prop_assert_eq!(&dedup, &legacy);
        for slots in &dedup {
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(
                    slot.clone(),
                    Some(Blob::of(i as u64 + 1)),
                    "slot {} must survive a crashed carrier", i + 1
                );
            }
        }
    }

    /// A Byzantine carrier shipping tampered content cannot corrupt or
    /// stall delivery: the tampered copy is rejected (signature or vouch
    /// root mismatch) and the honest content is refetched.
    #[test]
    fn dedup_matches_legacy_under_byzantine_carrier(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
        faulty in 0usize..4,
    ) {
        let fault = Fault::TamperContent(faulty);
        let (legacy, _) = run(legacy_cfg(chunk), seed, fault, n_msgs);
        let (dedup, _) = run(dedup_cfg(chunk), seed, fault, n_msgs);
        prop_assert_eq!(&dedup, &legacy);
        for slots in &dedup {
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(
                    slot.clone(),
                    Some(Blob::of(i as u64 + 1)),
                    "slot {} must not be corrupted by a tampered carrier", i + 1
                );
            }
        }
    }

    /// Determinism: the same seed produces the identical delivery AND the
    /// identical ready-announcement schedule twice in a row — including
    /// runs that exercise the refetch fallback (dropped carrier).
    #[test]
    fn dedup_double_run_is_deterministic(
        seed in 0u64..10_000,
        n_msgs in 2u64..24,
        chunk in 2usize..9,
    ) {
        let fault = Fault::DropContent(0);
        let (d1, log1) = run(dedup_cfg(chunk), seed, fault, n_msgs);
        let (d2, log2) = run(dedup_cfg(chunk), seed, fault, n_msgs);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(log1, log2);
    }
}
