//! End-to-end IRMC tests: both variants driven through a miniature
//! network pump, with Byzantine senders, lagging receivers, and random
//! schedules checking the paper's IRMC-Correctness and IRMC-Liveness
//! properties (§A.5).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spider_crypto::{Digest, Digestible, Keyring};
use spider_irmc::{
    Action, ChannelMsg, IrmcConfig, ReceiveResult, ReceiverEndpoint, SenderEndpoint, Variant,
};
use spider_types::{Position, SimTime, WireSize};
use std::collections::VecDeque;

#[derive(Debug, Clone, PartialEq)]
struct Blob(Vec<u8>);

impl Blob {
    fn of(tag: u64) -> Self {
        Blob(tag.to_be_bytes().to_vec())
    }
}

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        64 + self.0.len()
    }
}

impl Digestible for Blob {
    fn digest(&self) -> Digest {
        Digest::of_bytes(&self.0)
    }
}

enum Wire {
    ToReceiver { from: usize, to: usize, msg: ChannelMsg<Blob> },
    ToSender { from: usize, to: usize, msg: spider_irmc::ReceiverMsg },
    PeerSender { from: usize, to: usize, msg: ChannelMsg<Blob> },
}

/// A channel plus a message pump with optional random reordering.
struct Net {
    senders: Vec<SenderEndpoint<Blob>>,
    receivers: Vec<ReceiverEndpoint<Blob>>,
    wire: VecDeque<Wire>,
    rng: SmallRng,
    shuffle: bool,
    /// Ready events observed per receiver: (sc, position).
    ready: Vec<Vec<(u64, Position)>>,
    /// Pending SC supervision timers: (receiver, token).
    timers: Vec<(usize, u64)>,
    /// Standing fault rule: suppress certificates on this sender->receiver
    /// link (a faulty collector).
    drop_cert_link: Option<(usize, usize)>,
    now: SimTime,
}

impl Net {
    fn new(cfg: IrmcConfig, seed: u64, shuffle: bool) -> Self {
        let ring = Keyring::new(99);
        Net {
            senders: (0..cfg.n_senders)
                .map(|i| SenderEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            receivers: (0..cfg.n_receivers)
                .map(|i| ReceiverEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            wire: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            shuffle,
            ready: vec![Vec::new(); cfg.n_receivers],
            timers: Vec::new(),
            drop_cert_link: None,
            now: SimTime::ZERO,
        }
    }

    fn absorb_sender(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToReceiver { to, msg } => {
                    let faulty_link = self.drop_cert_link == Some((from, to))
                        && matches!(
                            msg,
                            ChannelMsg::Certificate { .. } | ChannelMsg::RangeCertificate { .. }
                        );
                    if !faulty_link {
                        self.wire.push_back(Wire::ToReceiver { from, to, msg })
                    }
                }
                Action::ToPeerSender { to, msg } => {
                    self.wire.push_back(Wire::PeerSender { from, to, msg })
                }
                _ => {}
            }
        }
    }

    fn absorb_receiver(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    self.wire.push_back(Wire::ToSender { from, to, msg })
                }
                Action::Ready { sc, p } => self.ready[from].push((sc, p)),
                Action::SetTimer { token, .. } => self.timers.push((from, token)),
                _ => {}
            }
        }
    }

    fn send_all(&mut self, sc: u64, p: Position, m: &Blob) {
        for i in 0..self.senders.len() {
            let mut out = Vec::new();
            self.senders[i].send_batch(sc, p, vec![m.clone()], &mut out);
            self.absorb_sender(i, out);
        }
    }

    /// All senders submit the same contiguous run via `send_many`.
    fn send_many_all(&mut self, sc: u64, first: Position, msgs: &[Blob]) {
        for i in 0..self.senders.len() {
            let mut out = Vec::new();
            self.senders[i].send_batch(sc, first, msgs.to_vec(), &mut out);
            self.absorb_sender(i, out);
        }
    }

    /// Delivers queued traffic; returns number of messages pumped.
    fn pump(&mut self) -> usize {
        let mut n = 0;
        while !self.wire.is_empty() {
            let idx = if self.shuffle { self.rng.gen_range(0..self.wire.len()) } else { 0 };
            let item = self.wire.remove(idx).expect("index in range");
            n += 1;
            match item {
                Wire::ToReceiver { from, to, msg } => {
                    let mut out = Vec::new();
                    let _ = self.receivers[to].on_sender_message(self.now, from, msg, &mut out);
                    self.absorb_receiver(to, out);
                }
                Wire::ToSender { from, to, msg } => {
                    let mut out = Vec::new();
                    let _ = self.senders[to].on_receiver_message(from, msg, &mut out);
                    self.absorb_sender(to, out);
                }
                Wire::PeerSender { from, to, msg } => {
                    let mut out = Vec::new();
                    let _ = self.senders[to].on_peer_message(from, msg, &mut out);
                    self.absorb_sender(to, out);
                }
            }
            assert!(n < 1_000_000, "message storm");
        }
        n
    }

    fn tick_senders(&mut self) {
        for i in 0..self.senders.len() {
            let mut out = Vec::new();
            self.senders[i].tick(self.now, &mut out);
            self.absorb_sender(i, out);
        }
    }
}

fn cfg(variant: Variant, capacity: u64) -> IrmcConfig {
    IrmcConfig::new(variant, 4, 1, 3, 1, capacity).with_cost(spider_crypto::CostModel::zero())
}

fn range_cfg(variant: Variant, capacity: u64, max_range: usize) -> IrmcConfig {
    cfg(variant, capacity).with_range(max_range, SimTime::ZERO)
}

#[test]
fn rc_channel_delivers_end_to_end() {
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 8), 1, false);
    let m = Blob::of(7);
    net.send_all(0, Position(1), &m);
    net.pump();
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(m.clone()));
    }
}

#[test]
fn sc_channel_delivers_end_to_end() {
    let mut net = Net::new(cfg(Variant::SenderCollect, 8), 1, false);
    let m = Blob::of(7);
    net.send_all(0, Position(1), &m);
    net.pump();
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(m.clone()));
    }
}

#[test]
fn capacity_limits_in_flight_positions_until_receivers_advance() {
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 2), 1, false);
    // Send positions 1..=4 from all senders; only 1 and 2 fit the window.
    for p in 1..=4u64 {
        net.send_all(0, Position(p), &Blob::of(p));
    }
    net.pump();
    assert_eq!(
        net.receivers[0].try_receive(0, Position(3)),
        ReceiveResult::Pending,
        "position 3 is above the window"
    );
    // Receivers consume 1 and 2 and move their windows to 3.
    for i in 0..3 {
        let mut out = Vec::new();
        net.receivers[i].move_window(0, Position(3), &mut out);
        net.absorb_receiver(i, out);
    }
    net.pump(); // Moves reach senders; blocked sends flush back.
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(0, Position(3)).into_payload(), Some(Blob::of(3)));
        assert_eq!(r.try_receive(0, Position(4)).into_payload(), Some(Blob::of(4)));
    }
}

#[test]
fn lagging_receiver_gets_too_old_after_peer_moves() {
    // Receivers 0 and 1 advance to position 11; receiver 2 stays. Senders'
    // windows move (fr + 1 = 2 confirmations), so old slots are gone. A
    // fresh message at position 11 still reaches receiver 2 (stored above
    // its window start is fine), but position 5 can never deliver there
    // once its own window moves via sender Moves.
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 4), 1, false);
    net.send_all(0, Position(1), &Blob::of(1));
    net.pump();
    for i in 0..2 {
        let mut out = Vec::new();
        net.receivers[i].move_window(0, Position(11), &mut out);
        net.absorb_receiver(i, out);
    }
    net.pump();
    // Senders' windows are now [11, 14]: sending position 5 reports stale.
    let mut out = Vec::new();
    let st = net.senders[0].send_batch(0, Position(5), vec![Blob::of(5)], &mut out);
    assert_eq!(st, spider_irmc::SendStatus::TooOld(Position(11)));
}

#[test]
fn byzantine_minority_cannot_force_delivery() {
    // fs = 1: a single faulty sender submits garbage for a position no
    // correct sender uses. It must never deliver.
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 8), 1, false);
    let evil = Blob::of(666);
    {
        let mut out = Vec::new();
        net.senders[3].send_batch(0, Position(2), vec![evil.clone()], &mut out);
        net.absorb_sender(3, out);
    }
    net.pump();
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(0, Position(2)), ReceiveResult::Pending);
    }
}

#[test]
fn equivocating_sender_cannot_split_receivers() {
    // Correct senders 0..3 send A; faulty sender 3 sends B. Every receiver
    // delivers A (B has at most weight 1 < fs + 1).
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 8), 1, true);
    let a = Blob::of(1);
    let b = Blob::of(2);
    for i in 0..3 {
        let mut out = Vec::new();
        net.senders[i].send_batch(0, Position(1), vec![a.clone()], &mut out);
        net.absorb_sender(i, out);
    }
    let mut out = Vec::new();
    net.senders[3].send_batch(0, Position(1), vec![b], &mut out);
    net.absorb_sender(3, out);
    net.pump();
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(a.clone()));
    }
}

#[test]
fn sc_faulty_collector_is_replaced_and_content_flows() {
    let c = cfg(Variant::SenderCollect, 8);
    let mut net = Net::new(c, 1, false);
    let m = Blob::of(9);
    // Sender 0 (receiver 0's default collector) is faulty: it assembles
    // certificates but never ships them to receiver 0.
    net.drop_cert_link = Some((0, 0));
    net.send_all(0, Position(1), &m);
    net.pump();
    // Everyone else has the message; receiver 0 does not.
    assert_eq!(net.receivers[0].try_receive(0, Position(1)), ReceiveResult::Pending);
    assert_eq!(net.receivers[1].try_receive(0, Position(1)).into_payload(), Some(m.clone()));

    // Progress announcements tell receiver 0 that fs+1 senders have the
    // certificate; its supervision timer arms.
    net.tick_senders();
    net.pump();
    let timer = net.timers.iter().find(|(r, _)| *r == 0).copied();
    let (r0, token) = timer.expect("receiver 0 armed its collector timer");
    // Timer fires: receiver 0 switches collectors; the Select makes the
    // new collector re-ship its bundle.
    let mut out = Vec::new();
    let _ = net.receivers[r0].on_timer(token, SimTime::from_millis(500), &mut out);
    net.absorb_receiver(r0, out);
    net.pump();
    assert_eq!(
        net.receivers[0].try_receive(0, Position(1)).into_payload(),
        Some(m),
        "collector switch restores delivery"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// IRMC-Correctness I + Liveness I under random delivery schedules,
    /// for both variants: content sent by all correct senders is delivered
    /// to every receiver; nothing else is ever delivered.
    #[test]
    fn random_schedule_delivery(seed in 0u64..10_000, variant_sc in any::<bool>(), n_msgs in 1u64..20) {
        let variant = if variant_sc { Variant::SenderCollect } else { Variant::ReceiverCollect };
        let mut net = Net::new(cfg(variant, 64), seed, true);
        for p in 1..=n_msgs {
            net.send_all(0, Position(p), &Blob::of(p));
        }
        net.pump();
        for r in &mut net.receivers {
            for p in 1..=n_msgs {
                prop_assert_eq!(r.try_receive(0, Position(p)).into_payload(), Some(Blob::of(p))
                );
            }
        }
    }

    /// IRMC-Correctness II: windows only move when a correct participant
    /// allowed it. With a single faulty sender spamming Move requests, no
    /// receiver window moves.
    #[test]
    fn faulty_sender_moves_alone_never_shift_windows(seed in 0u64..10_000, target in 2u64..100) {
        let mut net = Net::new(cfg(Variant::ReceiverCollect, 8), seed, true);
        let mut out = Vec::new();
        net.senders[2].move_window(0, Position(target), &mut out);
        net.absorb_sender(2, out);
        net.pump();
        for r in &net.receivers {
            prop_assert_eq!(r.window(0).start(), Position(1));
        }
    }

    /// Sender-requested window shifts do take effect once fs + 1 senders
    /// ask (IRMC-Liveness III).
    #[test]
    fn quorum_sender_moves_shift_windows(seed in 0u64..10_000, target in 2u64..100) {
        let mut net = Net::new(cfg(Variant::ReceiverCollect, 8), seed, true);
        for i in 0..2 {
            let mut out = Vec::new();
            net.senders[i].move_window(0, Position(target), &mut out);
            net.absorb_sender(i, out);
        }
        net.pump();
        for r in &net.receivers {
            prop_assert_eq!(r.window(0).start(), Position(target));
        }
    }
}

#[test]
fn single_byzantine_receiver_cannot_advance_sender_windows() {
    // IRMC-Correctness II, sender side: a sender's window follows the
    // fr+1-highest receiver request, so one lying receiver (fr = 1)
    // cannot make senders discard undelivered messages.
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 4), 21, false);
    let mut out = Vec::new();
    // Receiver 2 claims everyone may discard up to position 1000.
    net.receivers[2].move_window(0, Position(1000), &mut out);
    net.absorb_receiver(2, out);
    net.pump();
    for s in &net.senders {
        assert_eq!(
            s.window(0).start(),
            Position(1),
            "a single receiver must not move sender windows"
        );
    }
    // Content sent afterwards still reaches the honest receivers.
    let m = Blob::of(5);
    net.send_all(0, Position(1), &m);
    net.pump();
    for r in net.receivers.iter_mut().take(2) {
        assert_eq!(r.try_receive(0, Position(1)).into_payload(), Some(m.clone()));
    }
}

#[test]
fn capacity_one_channel_is_live_with_stop_and_wait() {
    // The minimum legal capacity degenerates to stop-and-wait: each
    // position only flows after every receiver consumed the previous one.
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 1), 22, false);
    for p in 1..=5u64 {
        net.send_all(0, Position(p), &Blob::of(p));
        net.pump();
        for i in 0..3 {
            let got = net.receivers[i].try_receive(0, Position(p));
            assert_eq!(got.into_payload(), Some(Blob::of(p)), "position {p}");
            let mut out = Vec::new();
            net.receivers[i].move_window(0, Position(p + 1), &mut out);
            net.absorb_receiver(i, out);
        }
        net.pump();
    }
}

#[test]
fn subchannels_are_independent_queues() {
    // Blocking subchannel 1 at its capacity must not affect subchannel 2
    // (the request channel runs one subchannel per client, §3.2).
    let mut net = Net::new(cfg(Variant::ReceiverCollect, 2), 23, false);
    // Fill subchannel 1 beyond capacity: positions 3.. block.
    for p in 1..=4u64 {
        net.send_all(1, Position(p), &Blob::of(p));
    }
    net.pump();
    assert_eq!(net.receivers[0].try_receive(1, Position(3)), ReceiveResult::Pending);
    // Subchannel 2 is unaffected.
    net.send_all(2, Position(1), &Blob::of(100));
    net.pump();
    for r in &mut net.receivers {
        assert_eq!(r.try_receive(2, Position(1)).into_payload(), Some(Blob::of(100)));
    }
}

// ----------------------------------------------------------------------
// Multi-slot range certification (one signature per contiguous range)
// ----------------------------------------------------------------------

#[test]
fn sc_range_faulty_collector_is_replaced_and_content_flows() {
    // Range analogue of the single-slot supervision test: the collector
    // ships the early content (§A.9 overlap) but never the shares-only
    // certificate. The content alone must not deliver; the collector
    // switch restores delivery.
    let mut net = Net::new(range_cfg(Variant::SenderCollect, 16, 8), 1, false);
    net.drop_cert_link = Some((0, 0));
    let msgs: Vec<Blob> = (1..=4u64).map(Blob::of).collect();
    net.send_many_all(0, Position(1), &msgs);
    net.pump();
    for p in 1..=4u64 {
        assert_eq!(
            net.receivers[0].try_receive(0, Position(p)),
            ReceiveResult::Pending,
            "early content without a certificate must never deliver (slot {p})"
        );
        assert_eq!(
            net.receivers[1].try_receive(0, Position(p)).into_payload(),
            Some(Blob::of(p)),
            "other receivers certified normally (slot {p})"
        );
    }
    // Progress announcements arm receiver 0's supervision timer; firing it
    // switches collectors and the new collector re-ships content + cert.
    net.tick_senders();
    net.pump();
    let (r0, token) = net
        .timers
        .iter()
        .find(|(r, _)| *r == 0)
        .copied()
        .expect("receiver 0 armed its collector timer");
    let mut out = Vec::new();
    let _ = net.receivers[r0].on_timer(token, SimTime::from_millis(500), &mut out);
    net.absorb_receiver(r0, out);
    net.pump();
    for p in 1..=4u64 {
        assert_eq!(
            net.receivers[0].try_receive(0, Position(p)).into_payload(),
            Some(Blob::of(p)),
            "collector switch restores range delivery (slot {p})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Range analogue of `random_schedule_delivery`: contiguous runs
    /// submitted via `send_many` deliver every slot to every receiver
    /// under random schedules, for both variants and arbitrary chunking.
    #[test]
    fn random_schedule_range_delivery(
        seed in 0u64..10_000,
        variant_sc in any::<bool>(),
        n_msgs in 2u64..40,
        chunk in 2usize..9,
    ) {
        let variant = if variant_sc { Variant::SenderCollect } else { Variant::ReceiverCollect };
        let mut net = Net::new(range_cfg(variant, 64, chunk), seed, true);
        let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
        net.send_many_all(0, Position(1), &msgs);
        net.pump();
        for r in &mut net.receivers {
            for p in 1..=n_msgs {
                prop_assert_eq!(r.try_receive(0, Position(p)).into_payload(), Some(Blob::of(p))
                );
            }
        }
    }

    /// No slot ever delivers without signature coverage of its digest:
    /// tampering one member of every in-flight range invalidates the
    /// Merkle root, so the WHOLE range is rejected on every receiver —
    /// including the untampered member slots.
    #[test]
    fn tampered_range_member_rejects_whole_range(
        seed in 0u64..10_000,
        n_msgs in 2u64..20,
        tamper in 0u64..20,
    ) {
        let tamper_idx = (tamper % n_msgs) as usize;
        let mut net = Net::new(range_cfg(Variant::ReceiverCollect, 64, 64), seed, true);
        let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
        net.send_many_all(0, Position(1), &msgs);
        // Corrupt the tampered member in every in-flight copy (the
        // signatures still cover the original content).
        for item in net.wire.iter_mut() {
            if let Wire::ToReceiver { msg: ChannelMsg::SendRange { msgs, .. }, .. } = item {
                let mut tampered = (**msgs).clone();
                tampered[tamper_idx] = Blob::of(666);
                *msgs = std::sync::Arc::new(tampered);
            }
        }
        net.pump();
        for r in &mut net.receivers {
            for p in 1..=n_msgs {
                prop_assert_eq!(
                    r.try_receive(0, Position(p)),
                    ReceiveResult::Pending,
                    "slot {} must not deliver from a tampered range", p
                );
            }
        }
    }

    /// SC ranges with certificates withheld (gap between claimed progress
    /// and delivered certificates) never deliver from content alone, and
    /// window moves still only happen with quorum backing.
    #[test]
    fn sc_withheld_certificates_never_deliver_early(
        seed in 0u64..10_000,
        n_msgs in 2u64..16,
    ) {
        let mut net = Net::new(range_cfg(Variant::SenderCollect, 64, 64), seed, true);
        // Every collector withholds certificates from its receiver — only
        // early content and shares flow.
        net.drop_cert_link = Some((0, 0));
        let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
        net.send_many_all(0, Position(1), &msgs);
        net.pump();
        for p in 1..=n_msgs {
            prop_assert_eq!(
                net.receivers[0].try_receive(0, Position(p)),
                ReceiveResult::Pending,
                "content-before-shares must not deliver slot {}", p
            );
        }
    }
}
