//! Partition-and-heal properties of the IRMC-RC channel: a network cut
//! that swallows in-flight casts mid-range must never wedge the channel.
//! After the heal, the senders' stalled-window re-cast (plus the dedup
//! refetch machinery) delivers exactly the slot sequence an unfaulted
//! run delivers — and the re-cast terminates once receivers re-announce
//! their windows, so the channel quiesces again.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spider_crypto::{Digest, Digestible, Keyring};
use spider_irmc::{
    Action, ChannelMode, ChannelMsg, IrmcConfig, ReceiverEndpoint, SenderEndpoint, Variant,
    RC_RECAST_TICKS,
};
use spider_types::{Position, SimTime, WireSize};
use std::collections::VecDeque;

#[derive(Debug, Clone, PartialEq)]
struct Blob(Vec<u8>);

impl Blob {
    fn of(tag: u64) -> Self {
        Blob(tag.to_be_bytes().to_vec())
    }
}

impl WireSize for Blob {
    fn wire_size(&self) -> usize {
        64 + self.0.len()
    }
}

impl Digestible for Blob {
    fn digest(&self) -> Digest {
        Digest::of_bytes(&self.0)
    }
}

/// Which traffic the partition eats (loss, not delay: frames crossing
/// the cut are gone for good, exactly what a healed WAN cut leaves
/// behind).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cut {
    None,
    /// Every frame between the sender and receiver groups is lost, in
    /// both directions (total blackout of the channel).
    Total,
    /// Only frames *from* this sender are lost — severing a dedup
    /// primary carrier from the receivers while its vouchers get
    /// through.
    FromSender(usize),
}

struct Net {
    senders: Vec<SenderEndpoint<Blob>>,
    receivers: Vec<ReceiverEndpoint<Blob>>,
    wire: VecDeque<(bool, usize, usize, WireMsg)>,
    rng: SmallRng,
    cut: Cut,
    /// Armed supervision timers: (receiver, token).
    timers: Vec<(usize, u64)>,
    /// Ready announcements per receiver, in arrival order.
    ready_log: Vec<Vec<(u64, Position)>>,
}

enum WireMsg {
    Chan(ChannelMsg<Blob>),
    Recv(spider_irmc::ReceiverMsg),
}

/// One scenario outcome: per-receiver delivered slot sequences plus the
/// per-receiver ready announcements, in arrival order.
type RunOutcome = (Vec<Vec<Option<Blob>>>, Vec<Vec<(u64, Position)>>);

impl Net {
    fn new(cfg: IrmcConfig, seed: u64) -> Self {
        let ring = Keyring::new(7);
        Net {
            senders: (0..cfg.n_senders)
                .map(|i| SenderEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            receivers: (0..cfg.n_receivers)
                .map(|i| ReceiverEndpoint::new(cfg.clone(), i, ring.clone()))
                .collect(),
            wire: VecDeque::new(),
            rng: SmallRng::seed_from_u64(seed),
            cut: Cut::None,
            timers: Vec::new(),
            ready_log: vec![Vec::new(); cfg.n_receivers],
        }
    }

    fn absorb_sender(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            if let Action::ToReceiver { to, msg } = a {
                match self.cut {
                    Cut::Total => continue,
                    Cut::FromSender(f) if f == from => continue,
                    _ => {}
                }
                self.wire.push_back((true, from, to, WireMsg::Chan(msg)));
            }
        }
    }

    fn absorb_receiver(&mut self, from: usize, actions: Vec<Action<Blob>>) {
        for a in actions {
            match a {
                Action::ToSender { to, msg } => {
                    if self.cut == Cut::Total {
                        continue;
                    }
                    self.wire.push_back((false, from, to, WireMsg::Recv(msg)))
                }
                Action::Ready { sc, p } => self.ready_log[from].push((sc, p)),
                Action::SetTimer { token, .. } => self.timers.push((from, token)),
                _ => {}
            }
        }
    }

    fn send_batch_all(&mut self, sc: u64, first: Position, msgs: &[Blob]) {
        for i in 0..self.senders.len() {
            let mut out = Vec::new();
            self.senders[i].send_batch(sc, first, msgs.to_vec(), &mut out);
            self.absorb_sender(i, out);
        }
    }

    fn pump(&mut self) {
        let mut n = 0u32;
        while !self.wire.is_empty() {
            let idx = self.rng.gen_range(0..self.wire.len());
            let (to_receiver, from, to, msg) = self.wire.remove(idx).expect("index in range");
            n += 1;
            match (to_receiver, msg) {
                (true, WireMsg::Chan(m)) => {
                    let mut out = Vec::new();
                    let _ = self.receivers[to].on_sender_message(SimTime::ZERO, from, m, &mut out);
                    self.absorb_receiver(to, out);
                }
                (false, WireMsg::Recv(m)) => {
                    let mut out = Vec::new();
                    let _ = self.senders[to].on_receiver_message(from, m, &mut out);
                    self.absorb_sender(to, out);
                }
                _ => unreachable!("wire direction matches payload kind"),
            }
            assert!(n < 1_000_000, "message storm");
        }
    }

    /// Fires every armed supervision timer once, then pumps the refetch
    /// traffic it generated.
    fn fire_timers(&mut self) {
        let due = std::mem::take(&mut self.timers);
        for (r, token) in due {
            let mut out = Vec::new();
            let _ = self.receivers[r].on_timer(token, SimTime::from_millis(500), &mut out);
            self.absorb_receiver(r, out);
        }
        self.pump();
    }

    /// Runs `rounds` of the actors' periodic sender tick, pumping after
    /// each round — enough rounds cross the stalled-window threshold and
    /// trigger the re-cast.
    fn tick_senders(&mut self, rounds: usize) {
        for _ in 0..rounds {
            for i in 0..self.senders.len() {
                let mut out = Vec::new();
                self.senders[i].tick(SimTime::ZERO, &mut out);
                self.absorb_sender(i, out);
            }
            self.pump();
        }
    }

    /// The delivered slot sequence of one receiver over `1..=n`.
    fn delivered(&mut self, r: usize, sc: u64, n: u64) -> Vec<Option<Blob>> {
        (1..=n).map(|p| self.receivers[r].try_receive(sc, Position(p)).into_payload()).collect()
    }
}

fn legacy_cfg(chunk: usize) -> IrmcConfig {
    IrmcConfig::new(Variant::ReceiverCollect, 4, 1, 3, 1, 64)
        .with_cost(spider_crypto::CostModel::zero())
        .with_range(chunk, SimTime::ZERO)
}

fn dedup_cfg(chunk: usize) -> IrmcConfig {
    legacy_cfg(chunk).with_mode(ChannelMode::ReliableCast { dedup: true })
}

/// Runs one partition-and-heal scenario: the first half of the stream
/// goes through cleanly, the cut eats the second half mid-range, the
/// heal lets the stalled-window re-cast (plus up to three supervision
/// rounds) repair the damage. Returns each receiver's delivered slot
/// sequence plus its ready log.
fn run_partition(cfg: IrmcConfig, seed: u64, cut: Cut, n_msgs: u64) -> RunOutcome {
    let mut net = Net::new(cfg, seed);
    let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
    let half = (n_msgs / 2).max(1) as usize;
    net.send_batch_all(0, Position(1), &msgs[..half]);
    net.pump();
    net.fire_timers();
    // The partition forms; everything sent across it from now on is lost.
    net.cut = cut;
    net.send_batch_all(0, Position(half as u64 + 1), &msgs[half..]);
    net.pump();
    net.fire_timers();
    // Heal, then let the periodic tick cross the recast threshold.
    net.cut = Cut::None;
    net.tick_senders(RC_RECAST_TICKS as usize + 1);
    for _ in 0..3 {
        if net.timers.is_empty() {
            break;
        }
        net.fire_timers();
    }
    let delivered = (0..3).map(|r| net.delivered(r, 0, n_msgs)).collect();
    (delivered, net.ready_log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A total blackout mid-range wedges nothing: after the heal the
    /// re-cast delivers the byte-identical slot sequence of an unfaulted
    /// run, for both the legacy and the dedup RC fan-in.
    #[test]
    fn total_blackout_heals_to_unfaulted_sequence(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
    ) {
        for cfg in [legacy_cfg(chunk), dedup_cfg(chunk)] {
            let (clean, _) = run_partition(cfg.clone(), seed, Cut::None, n_msgs);
            let (healed, _) = run_partition(cfg, seed, Cut::Total, n_msgs);
            prop_assert_eq!(&healed, &clean);
            for (r, slots) in healed.iter().enumerate() {
                for (i, slot) in slots.iter().enumerate() {
                    prop_assert_eq!(
                        slot.clone(),
                        Some(Blob::of(i as u64 + 1)),
                        "receiver {} slot {} must deliver after the heal", r, i + 1
                    );
                }
            }
        }
    }

    /// Severing a dedup primary carrier from the receivers while the
    /// vouchers still get through costs nothing even *without* a heal:
    /// the vouch quorum arms the supervision timer and the content is
    /// refetched from a voucher's retained copy.
    #[test]
    fn dedup_carrier_severed_from_vouchers_still_delivers(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
        severed in 0usize..4,
    ) {
        let mut net = Net::new(dedup_cfg(chunk), seed);
        let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
        net.cut = Cut::FromSender(severed);
        net.send_batch_all(0, Position(1), &msgs);
        net.pump();
        for _ in 0..3 {
            if net.timers.is_empty() {
                break;
            }
            net.fire_timers();
        }
        for r in 0..3 {
            let slots = net.delivered(r, 0, n_msgs);
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(
                    slot.clone(),
                    Some(Blob::of(i as u64 + 1)),
                    "receiver {} slot {} must deliver around the severed sender", r, i + 1
                );
            }
        }
    }

    /// Convergence: when the receivers delivered everything and moved
    /// their windows but the partition ate the `Move`s, the re-cast does
    /// not loop forever — the below-window duplicates make the receivers
    /// re-announce their window starts, the senders garbage-collect, and
    /// the channel quiesces.
    #[test]
    fn recast_converges_after_receivers_moved_on(
        seed in 0u64..10_000,
        n_msgs in 2u64..40,
        chunk in 2usize..9,
    ) {
        let mut net = Net::new(dedup_cfg(chunk), seed);
        let msgs: Vec<Blob> = (1..=n_msgs).map(Blob::of).collect();
        net.send_batch_all(0, Position(1), &msgs);
        net.pump();
        net.fire_timers();
        // Receivers consume and move their windows — but the cut eats
        // every `Move`, so the senders still believe nothing happened.
        net.cut = Cut::Total;
        for r in 0..3 {
            let mut out = Vec::new();
            net.receivers[r].move_window(0, Position(n_msgs + 1), &mut out);
            net.absorb_receiver(r, out);
        }
        net.pump();
        prop_assert!(
            net.senders.iter().all(|s| s.has_unacked()),
            "with the Moves lost, every sender still holds retained content"
        );
        net.cut = Cut::None;
        net.tick_senders(RC_RECAST_TICKS as usize + 1);
        prop_assert!(
            net.senders.iter().all(|s| !s.has_unacked()),
            "the re-announced windows let the senders garbage-collect"
        );
    }

    /// Determinism: the same seed replays the same partition-and-heal
    /// scenario to the identical delivery AND ready-announcement
    /// schedule — the disaster suite's replayability rests on this.
    #[test]
    fn partition_heal_double_run_is_deterministic(
        seed in 0u64..10_000,
        n_msgs in 2u64..24,
        chunk in 2usize..9,
    ) {
        let (d1, log1) = run_partition(dedup_cfg(chunk), seed, Cut::Total, n_msgs);
        let (d2, log2) = run_partition(dedup_cfg(chunk), seed, Cut::Total, n_msgs);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(log1, log2);
    }
}
