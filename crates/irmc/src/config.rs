//! Channel configuration.

use spider_crypto::{CostModel, KeyId};
use spider_types::SimTime;

/// Which IRMC implementation a channel uses (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Variant {
    /// IRMC-RC: every sender ships its signed `Send` to every receiver;
    /// receivers collect `fs + 1` matching copies (Fig 18).
    ReceiverCollect,
    /// IRMC-SC: senders exchange signature shares locally; a collector
    /// ships one `Certificate` per receiver (Figs 19–20).
    SenderCollect,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::ReceiverCollect => write!(f, "IRMC-RC"),
            Variant::SenderCollect => write!(f, "IRMC-SC"),
        }
    }
}

/// Static parameters of one IRMC.
#[derive(Debug, Clone)]
pub struct IrmcConfig {
    /// Implementation variant.
    pub variant: Variant,
    /// Number of sender endpoints.
    pub n_senders: usize,
    /// Byzantine senders to tolerate (`fs`): delivery needs `fs + 1`
    /// matching submissions.
    pub fs: usize,
    /// Number of receiver endpoints.
    pub n_receivers: usize,
    /// Byzantine receivers to tolerate (`fr`): sender windows follow the
    /// `fr + 1`-highest receiver request.
    pub fr: usize,
    /// Per-subchannel capacity (max positions concurrently in transit).
    pub capacity: u64,
    /// CPU cost model.
    pub cost: CostModel,
    /// IRMC-SC: how often senders announce certificate progress.
    pub progress_interval: SimTime,
    /// IRMC-SC: how long a receiver waits for a lagging collector before
    /// switching to another sender.
    pub collector_timeout: SimTime,
    /// Maximum slots per range certificate
    /// ([`crate::SenderEndpoint::send_many`] chunks longer submissions).
    /// 1 disables range certification entirely (always the legacy
    /// per-slot wire messages).
    pub max_range: usize,
    /// Optional linger for [`crate::SenderEndpoint::send_buffered`]:
    /// contiguous single-slot sends accumulate into a pending range for at
    /// most this long (mirrors consensus `batch_delay`). Zero disables
    /// buffering — plain `send` never lingers either way.
    pub range_linger: SimTime,
    /// IRMC-SC: ship range content to receivers as soon as it is
    /// submitted, overlapping the intra-region share exchange with WAN
    /// shipping (§A.9). When false, content ships together with the
    /// certificate (ship-after-bundle).
    pub sc_overlap: bool,
    /// Signing identity of each sender endpoint. Defaults to
    /// `KeyId(1000 + i)`; deployments with multiple channels override this
    /// with the replicas' node identities via [`IrmcConfig::with_keys`].
    pub sender_keys: Vec<KeyId>,
    /// Signing identity of each receiver endpoint (default
    /// `KeyId(2000 + j)`).
    pub receiver_keys: Vec<KeyId>,
}

impl IrmcConfig {
    /// Creates a configuration with default cost model and SC timing.
    ///
    /// # Panics
    ///
    /// Panics unless `n_senders > fs`, `n_receivers > fr`, and
    /// `capacity >= 1`.
    pub fn new(
        variant: Variant,
        n_senders: usize,
        fs: usize,
        n_receivers: usize,
        fr: usize,
        capacity: u64,
    ) -> Self {
        assert!(n_senders > fs, "need more senders than faults");
        assert!(n_receivers > fr, "need more receivers than faults");
        assert!(capacity >= 1, "capacity must be at least 1");
        IrmcConfig {
            variant,
            n_senders,
            fs,
            n_receivers,
            fr,
            capacity,
            cost: CostModel::default(),
            progress_interval: SimTime::from_millis(20),
            collector_timeout: SimTime::from_millis(500),
            max_range: 32,
            range_linger: SimTime::ZERO,
            sc_overlap: true,
            sender_keys: (0..n_senders).map(|i| KeyId(1000 + i as u32)).collect(),
            receiver_keys: (0..n_receivers).map(|j| KeyId(2000 + j as u32)).collect(),
        }
    }

    /// Replaces the endpoint identities (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the configured group sizes.
    #[must_use]
    pub fn with_keys(mut self, sender_keys: Vec<KeyId>, receiver_keys: Vec<KeyId>) -> Self {
        assert_eq!(sender_keys.len(), self.n_senders);
        assert_eq!(receiver_keys.len(), self.n_receivers);
        self.sender_keys = sender_keys;
        self.receiver_keys = receiver_keys;
        self
    }

    /// Replaces the cost model (builder-style).
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the per-subchannel capacity (builder-style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        assert!(capacity >= 1);
        self.capacity = capacity;
        self
    }

    /// Replaces the range-certification knobs (builder-style): maximum
    /// slots per range certificate and the single-send linger
    /// (see [`IrmcConfig::max_range`] / [`IrmcConfig::range_linger`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_range` is zero.
    #[must_use]
    pub fn with_range(mut self, max_range: usize, range_linger: SimTime) -> Self {
        assert!(max_range >= 1, "max_range must be at least 1");
        self.max_range = max_range;
        self.range_linger = range_linger;
        self
    }

    /// Enables or disables the §A.9 content/share-exchange overlap for
    /// IRMC-SC (builder-style).
    #[must_use]
    pub fn with_sc_overlap(mut self, overlap: bool) -> Self {
        self.sc_overlap = overlap;
        self
    }

    /// Replaces the SC collector supervision timing (builder-style).
    #[must_use]
    pub fn with_sc_timing(
        mut self,
        progress_interval: SimTime,
        collector_timeout: SimTime,
    ) -> Self {
        self.progress_interval = progress_interval;
        self.collector_timeout = collector_timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_builds() {
        let c = IrmcConfig::new(Variant::ReceiverCollect, 3, 1, 4, 1, 2);
        assert_eq!(c.n_senders, 3);
        assert_eq!(c.capacity, 2);
    }

    #[test]
    #[should_panic(expected = "more senders than faults")]
    fn too_few_senders_rejected() {
        let _ = IrmcConfig::new(Variant::ReceiverCollect, 1, 1, 3, 1, 2);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Variant::ReceiverCollect.to_string(), "IRMC-RC");
        assert_eq!(Variant::SenderCollect.to_string(), "IRMC-SC");
    }
}
